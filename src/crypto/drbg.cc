#include "crypto/drbg.h"

#include <cstring>

namespace mope::crypto {

void CtrDrbg::Refill() {
  Block ctr{};
  for (int i = 0; i < 8; ++i) {
    ctr[15 - i] = static_cast<uint8_t>(counter_ >> (8 * i));
  }
  ++counter_;
  buffer_ = aes_.EncryptBlock(ctr);
  buffered_words_ = 2;
}

uint64_t CtrDrbg::NextWord() {
  if (buffered_words_ == 0) Refill();
  const int idx = 2 - buffered_words_;
  --buffered_words_;
  uint64_t w = 0;
  std::memcpy(&w, buffer_.data() + 8 * idx, 8);
  return w;
}

}  // namespace mope::crypto
