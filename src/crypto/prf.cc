#include "crypto/prf.h"

#include <cstring>

namespace mope::crypto {

Block Prf::Eval(const uint8_t* data, size_t len) const {
  Block state{};  // zero IV
  // First block: 8-byte big-endian length, 8 bytes of message (zero-padded).
  Block frame{};
  const uint64_t len64 = static_cast<uint64_t>(len);
  for (int i = 0; i < 8; ++i) {
    frame[i] = static_cast<uint8_t>(len64 >> (56 - 8 * i));
  }
  size_t pos = 0;  // next message byte to consume
  size_t frame_off = 8;
  while (true) {
    while (frame_off < 16 && pos < len) frame[frame_off++] = data[pos++];
    // Zero-pad the tail of the final frame (frame was zero-initialized only
    // once, so clear explicitly on reuse).
    while (frame_off < 16) frame[frame_off++] = 0;
    for (int i = 0; i < 16; ++i) state[i] ^= frame[i];
    state = aes_.EncryptBlock(state);
    if (pos >= len) break;
    frame_off = 0;
  }
  return state;
}

TagBuilder& TagBuilder::AppendU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (56 - 8 * i)));
  }
  return *this;
}

TagBuilder& TagBuilder::AppendBytes(const uint8_t* data, size_t len) {
  bytes_.insert(bytes_.end(), data, data + len);
  return *this;
}

}  // namespace mope::crypto
