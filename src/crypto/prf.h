#ifndef MOPE_CRYPTO_PRF_H_
#define MOPE_CRYPTO_PRF_H_

/// \file prf.h
/// Variable-input-length PRF built from AES-128.
///
/// Construction: length-prepended CBC-MAC. The input is framed as
/// (8-byte big-endian length || message || zero padding to a block
/// boundary); prepending the length makes the framed message space
/// prefix-free, under which CBC-MAC is a secure PRF for a PRP like AES.
///
/// The OPE scheme uses this PRF to derive the per-recursion-node coin
/// streams ("GetCoins" in Boldyreva et al.): the tag encodes the node
/// (domain interval, range interval, pivot), the PRF maps it to 16 bytes,
/// and those bytes seed a CTR DRBG (see drbg.h).

#include <cstdint>
#include <vector>

#include "crypto/aes.h"

namespace mope::crypto {

class Prf {
 public:
  explicit Prf(const Key128& key) : aes_(key) {}

  /// PRF output for an arbitrary byte string.
  Block Eval(const uint8_t* data, size_t len) const;

  Block Eval(const std::vector<uint8_t>& data) const {
    return Eval(data.data(), data.size());
  }

 private:
  Aes128 aes_;
};

/// Incremental builder for PRF tags: appends integers in a fixed-width
/// big-endian encoding so that structurally different tags never collide.
class TagBuilder {
 public:
  /// Starts a tag with a single-byte domain-separation label.
  explicit TagBuilder(uint8_t label) { bytes_.push_back(label); }

  TagBuilder& AppendU64(uint64_t v);
  TagBuilder& AppendBytes(const uint8_t* data, size_t len);

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace mope::crypto

#endif  // MOPE_CRYPTO_PRF_H_
