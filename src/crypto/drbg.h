#ifndef MOPE_CRYPTO_DRBG_H_
#define MOPE_CRYPTO_DRBG_H_

/// \file drbg.h
/// Deterministic random bit generator: AES-128 in counter mode.
///
/// Given a 16-byte seed (used as the AES key), the DRBG emits the keystream
/// AES_seed(0), AES_seed(1), ... as uniform 64-bit words. It implements the
/// library-wide BitSource interface so the hypergeometric sampler and the
/// distribution samplers can run off either true experiment randomness (Rng)
/// or PRF-derived encryption coins (this class) without code changes.

#include <cstdint>

#include "common/random.h"
#include "crypto/aes.h"

namespace mope::crypto {

class CtrDrbg final : public mope::BitSource {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit CtrDrbg(const Key128& seed) : aes_(seed) {}

  uint64_t NextWord() override;

 private:
  void Refill();

  Aes128 aes_;
  uint64_t counter_ = 0;
  Block buffer_{};
  int buffered_words_ = 0;  // how many 8-byte words remain in buffer_
};

}  // namespace mope::crypto

#endif  // MOPE_CRYPTO_DRBG_H_
