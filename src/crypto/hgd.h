#ifndef MOPE_CRYPTO_HGD_H_
#define MOPE_CRYPTO_HGD_H_

/// \file hgd.h
/// Exact hypergeometric sampling, the combinatorial heart of the BCLO OPE
/// scheme.
///
/// OPE's lazy-sampling recursion needs, at each ciphertext-space split, a
/// draw X ~ HG(total=N, success=M, draws=n): "how many of the M plaintexts
/// mapped into the first n of the N ciphertext slots". We sample exactly by
/// inversion, anchored at the distribution's mode and sweeping outward with
/// the pmf ratio recurrence, so the expected work is O(stddev) instead of
/// O(support) and the result is bit-determined by the BitSource stream.

#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace mope::crypto {

/// Samples X ~ Hypergeometric(total, success, draws): among `total` balls of
/// which `success` are black, draw `draws` without replacement and count the
/// black ones. Preconditions: success <= total, draws <= total.
/// The sample consumes exactly one UniformDouble from `bits`.
uint64_t SampleHypergeometric(uint64_t total, uint64_t success, uint64_t draws,
                              mope::BitSource* bits);

/// Production-path sampler used by OpeScheme: a Status-returning wrapper
/// around SampleHypergeometric. Parameter violations return InvalidArgument
/// instead of aborting the process, and a coin stream that runs dry
/// mid-sample returns Internal ("coin exhaustion"), so Encrypt/Decrypt
/// propagate the failure to their caller rather than emitting a ciphertext
/// derived from a dead all-zero stream.
Result<uint64_t> HgdSample(uint64_t total, uint64_t success, uint64_t draws,
                           mope::BoundedBitSource* bits);

/// Reference implementation: plain inversion sweeping linearly from the low
/// end of the support. Identical output distribution, O(support) expected
/// work instead of O(stddev) — kept for the mean-anchoring ablation
/// (DESIGN.md §4) and as a cross-check in tests.
uint64_t SampleHypergeometricLinear(uint64_t total, uint64_t success,
                                    uint64_t draws, mope::BitSource* bits);

}  // namespace mope::crypto

#endif  // MOPE_CRYPTO_HGD_H_
