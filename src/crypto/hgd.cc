#include "crypto/hgd.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/math_util.h"

namespace mope::crypto {

namespace {

/// pmf ratio p(k+1) / p(k) for HG(total, success, draws).
inline double RatioUp(uint64_t total, uint64_t success, uint64_t draws,
                      uint64_t k) {
  const double num = static_cast<double>(success - k) *
                     static_cast<double>(draws - k);
  const double den = static_cast<double>(k + 1) *
                     static_cast<double>(total - success - draws + k + 1);
  return num / den;
}

}  // namespace

uint64_t SampleHypergeometric(uint64_t total, uint64_t success, uint64_t draws,
                              mope::BitSource* bits) {
  MOPE_CHECK(success <= total && draws <= total, "HGD parameters out of range");

  // Support: lo <= X <= hi.
  const uint64_t fail = total - success;
  const uint64_t lo = (draws > fail) ? draws - fail : 0;
  const uint64_t hi = std::min(draws, success);
  if (lo == hi) {
    // Degenerate (e.g. success == 0 or draws == 0 or draws == total).
    // Still consume one double so coin usage is parameter-independent.
    bits->UniformDouble();
    return lo;
  }

  const double u = bits->UniformDouble();

  // Anchor at the mode: floor((draws+1)(success+1) / (total+2)).
  uint64_t mode = static_cast<uint64_t>(
      (static_cast<double>(draws) + 1.0) * (static_cast<double>(success) + 1.0) /
      (static_cast<double>(total) + 2.0));
  mode = std::clamp(mode, lo, hi);

  const double log_pmode =
      mope::LogHypergeometricPmf(total, success, draws, mode);
  const double pmode = std::exp(log_pmode);

  // Alternating outward sweep: mode, mode+1, mode-1, mode+2, mode-2, ...
  // Accumulate probability mass until it exceeds u * (total mass). Because we
  // visit bins in (approximately) decreasing-probability order, the expected
  // number of visited bins is O(stddev).
  double cum = pmode;
  double p_up = pmode;    // pmf at the current upper frontier
  double p_down = pmode;  // pmf at the current lower frontier
  uint64_t up = mode;
  uint64_t down = mode;

  if (u * 1.0 <= cum) return mode;

  while (true) {
    bool advanced = false;
    if (up < hi) {
      p_up *= RatioUp(total, success, draws, up);
      ++up;
      cum += p_up;
      advanced = true;
      if (u <= cum) return up;
    }
    if (down > lo) {
      // p(k-1) = p(k) / ratio_up(k-1).
      p_down /= RatioUp(total, success, draws, down - 1);
      --down;
      cum += p_down;
      advanced = true;
      if (u <= cum) return down;
    }
    if (!advanced) {
      // Exhausted the support; numeric round-off left cum slightly below u.
      // Return the tail bin on the heavier side.
      return (u > 0.5) ? hi : lo;
    }
  }
}

Result<uint64_t> HgdSample(uint64_t total, uint64_t success, uint64_t draws,
                           mope::BoundedBitSource* bits) {
  if (success > total || draws > total) {
    return Status::InvalidArgument(
        "HGD parameters out of range: total=" + std::to_string(total) +
        " success=" + std::to_string(success) +
        " draws=" + std::to_string(draws));
  }
  const uint64_t x = SampleHypergeometric(total, success, draws, bits);
  if (bits->exhausted()) {
    return Status::Internal("HGD coin stream exhausted mid-sample");
  }
  return x;
}

uint64_t SampleHypergeometricLinear(uint64_t total, uint64_t success,
                                    uint64_t draws, mope::BitSource* bits) {
  MOPE_CHECK(success <= total && draws <= total, "HGD parameters out of range");
  const uint64_t fail = total - success;
  const uint64_t lo = (draws > fail) ? draws - fail : 0;
  const uint64_t hi = std::min(draws, success);
  if (lo == hi) {
    bits->UniformDouble();
    return lo;
  }
  const double u = bits->UniformDouble();
  double p = std::exp(mope::LogHypergeometricPmf(total, success, draws, lo));
  double cum = p;
  uint64_t k = lo;
  while (u > cum && k < hi) {
    p *= RatioUp(total, success, draws, k);
    ++k;
    cum += p;
  }
  return k;
}

}  // namespace mope::crypto
