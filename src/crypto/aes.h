#ifndef MOPE_CRYPTO_AES_H_
#define MOPE_CRYPTO_AES_H_

/// \file aes.h
/// AES-128 block cipher (FIPS-197), both directions.
///
/// Implemented from scratch for this offline reproduction. The OPE scheme of
/// Boldyreva et al. only needs the forward direction (a PRF built from AES
/// in CBC-MAC / CTR modes — see prf.h, drbg.h); the inverse cipher exists
/// for the deterministic-encryption layer of the mutable-OPE baseline
/// (ope/mutable_ope.h).
///
/// This is a straightforward S-box implementation: constant-time properties
/// are NOT claimed; the threat model of the paper is an honest-but-curious
/// *server*, not a local side-channel attacker.

#include <array>
#include <cstdint>
#include <cstring>

namespace mope::crypto {

/// A 128-bit block.
using Block = std::array<uint8_t, 16>;

/// A 128-bit key.
using Key128 = std::array<uint8_t, 16>;

/// AES-128 with a fixed key; the key schedule is expanded at construction.
class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  /// Encrypts one 16-byte block: out = AES-128_K(in). in == out is allowed.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Convenience overload on Block values.
  Block EncryptBlock(const Block& in) const {
    Block out;
    EncryptBlock(in.data(), out.data());
    return out;
  }

  /// Decrypts one 16-byte block (inverse cipher). in == out is allowed.
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  Block DecryptBlock(const Block& in) const {
    Block out;
    DecryptBlock(in.data(), out.data());
    return out;
  }

 private:
  static constexpr int kRounds = 10;
  // 11 round keys x 16 bytes.
  std::array<uint8_t, 16 * (kRounds + 1)> round_keys_;
};

}  // namespace mope::crypto

#endif  // MOPE_CRYPTO_AES_H_
