#ifndef MOPE_OBS_TIMESERIES_H_
#define MOPE_OBS_TIMESERIES_H_

/// \file timeseries.h
/// In-process metric history: a fixed-memory-budget ring-buffer sampler.
///
/// Everything the registry exposes is a point-in-time snapshot, but the
/// Section 5 attacks this repo reproduces are *temporal* processes — the
/// largest-gap offset estimate converges and the chi-square statistic drifts
/// over a stream of queries — so the operator-facing question is a trend,
/// not a sample. The TimeSeriesSampler answers it without any external TSDB:
/// it periodically snapshots a MetricsRegistry (TypedSnapshot) into one ring
/// buffer of (timestamp, value) points per metric, under a hard memory
/// budget:
///
///     memory <= max_series * window_capacity * sizeof(SeriesPoint)
///               + name storage
///
/// New metrics past `max_series` are dropped (and accounted in the
/// `obs.timeseries.dropped_series` counter), never grown into: a hostile or
/// buggy metric producer cannot turn the sampler into a leak.
///
/// Time comes from an injectable obs::Clock, so tests drive SampleOnce()
/// with a ManualClock and get byte-stable series; production calls Start()
/// to spawn a background thread that samples every `sample_period_ns`.
///
/// Queries return the most recent `window` points per matching series plus
/// windowed rollups (min/max/mean; for counters also a reset-aware delta and
/// a rate per second). This backs the HTTP expositor's
/// `GET /vars?metric=<prefix>&window=<n>` endpoint and the `\history`
/// command in mope_shell — the shell side feeds wire-fetched StatsReply
/// snapshots in through Ingest() instead of sampling a local registry.
///
/// Locking: the sampler's mutex ranks at lock_rank::kTimeSeriesSampler (72),
/// above the trace mutex and below the alert engine (73) — SampleOnce()
/// pushes each fresh snapshot into an attached AlertEngine while holding its
/// own lock, and the engine logs (kLogSink, 75) and reads the registry (80),
/// so the whole chain 72 -> 73 -> 75 -> 80 is strictly increasing.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::obs {

class AlertEngine;

struct TimeSeriesOptions {
  /// Cadence of the background sampler (and the spacing tests emulate).
  uint64_t sample_period_ns = 1'000'000'000;  // 1s
  /// Ring capacity per series: the N most recent samples are kept.
  size_t window_capacity = 128;
  /// Hard cap on distinct series; later registrations are dropped.
  size_t max_series = 4096;
};

/// One retained sample.
struct SeriesPoint {
  uint64_t ts_ns = 0;
  uint64_t value = 0;
};

/// Windowed rollups over the points a query returned. For kGauge series the
/// min/max/mean are computed over the signed interpretation; the fields here
/// carry the same bit-cast convention as the registry (cast back via
/// int64_t). delta/rate_per_sec are only meaningful for kCounter series and
/// are reset-aware: a counter that moved backwards (process restart)
/// restarts the delta from the post-reset value.
struct SeriesRollup {
  size_t samples = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t first_ts_ns = 0;
  uint64_t last_ts_ns = 0;
  uint64_t delta = 0;
  double rate_per_sec = 0.0;
};

/// One queried series: the retained points (oldest first) plus rollups.
struct SeriesView {
  std::string name;
  MetricKind kind = MetricKind::kGauge;
  std::vector<SeriesPoint> points;
  SeriesRollup rollup;
};

class TimeSeriesSampler {
 public:
  /// `registry` and `clock` must outlive the sampler; clock nullptr selects
  /// SystemClock(). The sampler registers its own accounting
  /// (obs.timeseries.samples / .series / .dropped_series) in `registry`.
  TimeSeriesSampler(MetricsRegistry* registry, TimeSeriesOptions options,
                    Clock* clock = nullptr);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Takes one snapshot of the registry now. The background thread calls
  /// this on its period; tests call it directly under a ManualClock.
  void SampleOnce() MOPE_EXCLUDES(mutex_);

  /// Feeds one externally obtained sample (mope_shell ingesting a wire
  /// StatsReply). Subject to the same series cap and ring eviction.
  void Ingest(uint64_t ts_ns, const std::string& name, MetricKind kind,
              uint64_t value) MOPE_EXCLUDES(mutex_);

  /// Spawns the background sampling thread (idempotent). Requires a real
  /// clock to be useful; tests normally skip Start() and drive SampleOnce().
  void Start();
  /// Stops and joins the background thread (idempotent; destructor calls it).
  void Stop();

  /// Pushes every fresh snapshot into `engine` (may be nullptr to detach).
  /// The engine must outlive the sampler or be detached first.
  void SetAlertEngine(AlertEngine* engine) MOPE_EXCLUDES(mutex_);

  /// The most recent `window` points of every series whose name starts with
  /// `prefix` (empty prefix: all series). Errors:
  ///   InvalidArgument — window == 0 or window > window_capacity,
  ///   NotFound       — no series matches the prefix.
  Result<std::vector<SeriesView>> Query(const std::string& prefix,
                                        size_t window) const
      MOPE_EXCLUDES(mutex_);

  /// Query() rendered as one JSON object (the /vars payload):
  /// {"window":n,"series":[{"name":...,"kind":...,"points":[[ts,v],...],
  ///  "rollup":{...}}]}.
  Result<std::string> RenderJson(const std::string& prefix,
                                 size_t window) const MOPE_EXCLUDES(mutex_);

  // --- Introspection -------------------------------------------------------
  size_t series_count() const MOPE_EXCLUDES(mutex_);
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }
  size_t max_window() const { return options_.window_capacity; }
  uint64_t sample_period_ns() const { return options_.sample_period_ns; }

 private:
  /// Fixed-capacity ring of the most recent points.
  struct Ring {
    MetricKind kind = MetricKind::kGauge;
    std::vector<SeriesPoint> points;  // capacity window_capacity once full
    size_t next = 0;                  // slot the next point overwrites
    size_t count = 0;                 // min(points ever, capacity)
  };

  void IngestLocked(uint64_t ts_ns, const std::string& name, MetricKind kind,
                    uint64_t value) MOPE_REQUIRES(mutex_);
  /// Oldest-first copy of the last `window` points of `ring`.
  std::vector<SeriesPoint> TailLocked(const Ring& ring, size_t window) const
      MOPE_REQUIRES(mutex_);
  void RunLoop();

  MetricsRegistry* const registry_;
  const TimeSeriesOptions options_;
  Clock* const clock_;

  mutable Mutex mutex_{lock_rank::kTimeSeriesSampler};
  std::map<std::string, Ring> series_ MOPE_GUARDED_BY(mutex_);
  AlertEngine* alert_engine_ MOPE_GUARDED_BY(mutex_) = nullptr;

  std::atomic<uint64_t> samples_taken_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::thread thread_;

  // Accounting handles (atomic targets; safe without the sampler mutex).
  Counter* samples_counter_;
  Counter* dropped_series_;
  Gauge* series_gauge_;
};

}  // namespace mope::obs

#endif  // MOPE_OBS_TIMESERIES_H_
