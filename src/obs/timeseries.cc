#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/alerts.h"

namespace mope::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string DoubleField(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string ValueField(MetricKind kind, uint64_t v) {
  char buf[24];
  if (kind == MetricKind::kGauge) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  }
  return buf;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry,
                                     TimeSeriesOptions options, Clock* clock)
    : registry_(registry),
      options_(options),
      clock_(clock != nullptr ? clock : SystemClock()),
      samples_counter_(registry->GetCounter("obs.timeseries.samples")),
      dropped_series_(registry->GetCounter("obs.timeseries.dropped_series")),
      series_gauge_(registry->GetGauge("obs.timeseries.series")) {}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::SampleOnce() {
  // Snapshot first (registry mutex, rank 80), ingest after: the two locks
  // are never held together, and the snapshot cost stays off our mutex.
  const uint64_t ts_ns = clock_->NowNanos();
  const std::vector<TypedSample> typed = registry_->TypedSnapshot();
  {
    const MutexLock lock(&mutex_);
    for (const TypedSample& sample : typed) {
      IngestLocked(ts_ns, sample.name, sample.kind, sample.value);
    }
    series_gauge_->Set(static_cast<int64_t>(series_.size()));
    // Push the fresh snapshot into the alert engine while still holding our
    // mutex (72 -> 73 is a legal acquisition): detach via SetAlertEngine is
    // then race-free.
    if (alert_engine_ != nullptr) alert_engine_->Observe(ts_ns, typed);
  }
  samples_counter_->Increment();
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
}

void TimeSeriesSampler::Ingest(uint64_t ts_ns, const std::string& name,
                               MetricKind kind, uint64_t value) {
  const MutexLock lock(&mutex_);
  IngestLocked(ts_ns, name, kind, value);
  series_gauge_->Set(static_cast<int64_t>(series_.size()));
}

void TimeSeriesSampler::IngestLocked(uint64_t ts_ns, const std::string& name,
                                     MetricKind kind, uint64_t value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      // The budget is a hard cap: a runaway metric producer costs one
      // counter bump per sample, never memory.
      dropped_series_->Increment();
      return;
    }
    it = series_.emplace(name, Ring{}).first;
    it->second.kind = kind;
    it->second.points.reserve(
        std::min<size_t>(options_.window_capacity, 16));
  }
  Ring& ring = it->second;
  if (ring.count < options_.window_capacity) {
    ring.points.push_back({ts_ns, value});
    ++ring.count;
    ring.next = ring.points.size() % options_.window_capacity;
  } else {
    ring.points[ring.next] = {ts_ns, value};
    ring.next = (ring.next + 1) % options_.window_capacity;
  }
}

void TimeSeriesSampler::Start() {
  if (started_.exchange(true)) return;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { RunLoop(); });
}

void TimeSeriesSampler::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_relaxed);
}

void TimeSeriesSampler::RunLoop() {
  // Poll the stop flag at a short cadence instead of sleeping a full period:
  // Stop() must not wait out a multi-second sample interval.
  uint64_t next_due_ns = clock_->NowNanos();
  while (!stopping_.load(std::memory_order_relaxed)) {
    const uint64_t now = clock_->NowNanos();
    if (now >= next_due_ns) {
      SampleOnce();
      next_due_ns = now + options_.sample_period_ns;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void TimeSeriesSampler::SetAlertEngine(AlertEngine* engine) {
  const MutexLock lock(&mutex_);
  alert_engine_ = engine;
}

size_t TimeSeriesSampler::series_count() const {
  const MutexLock lock(&mutex_);
  return series_.size();
}

std::vector<SeriesPoint> TimeSeriesSampler::TailLocked(const Ring& ring,
                                                       size_t window) const {
  const size_t cap = options_.window_capacity;
  const size_t n = std::min(window, ring.count);
  const size_t start = ring.count == cap ? ring.next : 0;
  std::vector<SeriesPoint> out;
  out.reserve(n);
  for (size_t i = ring.count - n; i < ring.count; ++i) {
    out.push_back(ring.points[(start + i) % cap]);
  }
  return out;
}

namespace {

SeriesRollup Rollup(MetricKind kind, const std::vector<SeriesPoint>& points) {
  SeriesRollup r;
  r.samples = points.size();
  if (points.empty()) return r;
  r.first_ts_ns = points.front().ts_ns;
  r.last_ts_ns = points.back().ts_ns;
  if (kind == MetricKind::kGauge) {
    // Gauges are signed levels bit-cast into u64; min/max/mean over the
    // signed interpretation, results bit-cast back.
    int64_t min = static_cast<int64_t>(points[0].value);
    int64_t max = min;
    double sum = 0.0;
    for (const SeriesPoint& p : points) {
      const int64_t v = static_cast<int64_t>(p.value);
      min = std::min(min, v);
      max = std::max(max, v);
      sum += static_cast<double>(v);
    }
    r.min = static_cast<uint64_t>(min);
    r.max = static_cast<uint64_t>(max);
    r.mean = sum / static_cast<double>(points.size());
  } else {
    uint64_t min = points[0].value;
    uint64_t max = min;
    double sum = 0.0;
    for (const SeriesPoint& p : points) {
      min = std::min(min, p.value);
      max = std::max(max, p.value);
      sum += static_cast<double>(p.value);
    }
    r.min = min;
    r.max = max;
    r.mean = sum / static_cast<double>(points.size());
  }
  if (kind == MetricKind::kCounter) {
    // Reset-aware delta: a counter that moved backwards restarted (process
    // or registry reset); the post-reset value is its own contribution.
    uint64_t delta = 0;
    for (size_t i = 1; i < points.size(); ++i) {
      const uint64_t prev = points[i - 1].value;
      const uint64_t cur = points[i].value;
      delta += cur >= prev ? cur - prev : cur;
    }
    r.delta = delta;
    const uint64_t span_ns = r.last_ts_ns - r.first_ts_ns;
    if (span_ns > 0) {
      r.rate_per_sec =
          static_cast<double>(delta) / (static_cast<double>(span_ns) / 1e9);
    }
  }
  return r;
}

}  // namespace

Result<std::vector<SeriesView>> TimeSeriesSampler::Query(
    const std::string& prefix, size_t window) const {
  if (window == 0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (window > options_.window_capacity) {
    return Status::InvalidArgument(
        "window exceeds capacity " +
        std::to_string(options_.window_capacity));
  }
  const MutexLock lock(&mutex_);
  std::vector<SeriesView> out;
  // std::map iteration is name-ordered, so a prefix is one contiguous run.
  for (auto it = series_.lower_bound(prefix); it != series_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    SeriesView view;
    view.name = it->first;
    view.kind = it->second.kind;
    view.points = TailLocked(it->second, window);
    view.rollup = Rollup(view.kind, view.points);
    out.push_back(std::move(view));
  }
  if (out.empty()) {
    return Status::NotFound("no series matches prefix '" + prefix + "'");
  }
  return out;
}

Result<std::string> TimeSeriesSampler::RenderJson(const std::string& prefix,
                                                  size_t window) const {
  MOPE_ASSIGN_OR_RETURN(std::vector<SeriesView> views, Query(prefix, window));
  std::string out = "{\"window\":" + std::to_string(window) + ",\"series\":[";
  bool first = true;
  for (const SeriesView& view : views) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(view.name) + "\",\"kind\":\"";
    out += MetricKindName(view.kind);
    out += "\",\"points\":[";
    bool first_point = true;
    for (const SeriesPoint& p : view.points) {
      if (!first_point) out += ",";
      first_point = false;
      out += "[" + std::to_string(p.ts_ns) + "," +
             ValueField(view.kind, p.value) + "]";
    }
    out += "],\"rollup\":{\"samples\":" + std::to_string(view.rollup.samples);
    out += ",\"min\":" + ValueField(view.kind, view.rollup.min);
    out += ",\"max\":" + ValueField(view.kind, view.rollup.max);
    out += ",\"mean\":" + DoubleField(view.rollup.mean);
    out += ",\"first_ts_ns\":" + std::to_string(view.rollup.first_ts_ns);
    out += ",\"last_ts_ns\":" + std::to_string(view.rollup.last_ts_ns);
    if (view.kind == MetricKind::kCounter) {
      out += ",\"delta\":" + std::to_string(view.rollup.delta);
      out += ",\"rate_per_sec\":" + DoubleField(view.rollup.rate_per_sec);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace mope::obs
