#ifndef MOPE_OBS_FLIGHT_RECORDER_H_
#define MOPE_OBS_FLIGHT_RECORDER_H_

/// \file flight_recorder.h
/// Crash flight recorder: the last N observability events, kept in lock-free
/// rings and persisted as a black-box file a postmortem can read.
///
/// The recorder holds a fixed set of entry rings (one per thread slot; a
/// thread claims a slot on its first Record and keeps it). Recording is
/// lock-free and allocation-free — every entry field is an atomic written
/// relaxed, sequenced by a per-entry seqlock-style generation — so the hooks
/// in Trace::StartSpan/EndSpan and Logger::Emit may record while holding the
/// trace (70) or log-sink (75) mutexes without ordering concerns, and a
/// recording thread can never block another.
///
/// Two paths get the rings onto disk:
///
///   1. Continuous persistence. Persist()/PersistIfDirty() serialize the
///      rings (sorted by global sequence number) plus the last metrics
///      snapshot and write them through storage::Env::WriteFileAtomic. The
///      wire dispatcher calls PersistIfDirty() on request boundaries, so a
///      kill -9 — which no handler can observe — still leaves a black box
///      whose last recorded event is the last completed dispatch.
///   2. Fatal-signal dump. For catchable fatal signals (SIGSEGV, SIGABRT,
///      SIGBUS, SIGILL, SIGFPE) the daemon's handler calls
///      FatalSignalDump(), the only API that is async-signal-safe: it
///      formats entries with a hand-rolled integer writer into fixed
///      buffers and appends them through a *pre-opened* AppendFile
///      (PosixAppendFile::Append is a raw ::write loop) to `<path>.fatal`.
///      No allocation, no printf, no locks — linter rule R13 enforces that
///      fatal handlers call nothing but this API.
///
/// The black-box format is line-oriented text:
///
///     mope-blackbox v1
///     event seq=12 ts_ns=512000 kind=span_begin name=server.dispatch trace=7
///     ...
///     metrics
///     <Prometheus text rendering of the registry>
///
/// and `<path>.fatal` carries `fatal signo=N`, unsorted event lines (the
/// handler cannot afford a sort barrier being interrupted — the reader
/// sorts), and `end`. FormatDump() parses either file back into sorted,
/// human-readable text plus `blackbox.last_*` summary lines; mope_serverd
/// exposes it as `--dump-blackbox FILE`.
///
/// The recorder never links the storage library: it uses storage::Env purely
/// through the virtual interface a caller hands it (mope_storage links
/// mope_obs, so the reverse edge would be a cycle).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/env.h"

namespace mope::obs {

class FlightRecorder {
 public:
  enum class EventKind : uint8_t {
    kSpanBegin = 0,
    kSpanEnd = 1,
    kLog = 2,
    kEvent = 3,  ///< explicit marks (e.g. the dispatcher's request boundary)
  };
  static const char* EventKindName(EventKind kind);

  struct Options {
    /// Entries per thread-slot ring (rounded up to a power of two).
    size_t ring_entries = 256;
    /// Thread slots. Extra threads hash onto existing slots (the rings are
    /// multi-writer-safe; sharing only costs contention).
    size_t max_threads = 16;
    /// Black-box path; the fatal dump appends to `<path>.fatal`.
    std::string path;
  };

  /// `env` must outlive the recorder and is used via virtual dispatch only.
  /// `registry` (may be nullptr) contributes the metrics section of the
  /// black box and receives the `obs.flightrecorder.events` counter.
  FlightRecorder(storage::Env* env, Options options, Clock* clock = nullptr,
                 MetricsRegistry* registry = nullptr);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- Global installation -------------------------------------------------
  /// Installs `recorder` as the process-wide recorder the trace/log hooks
  /// feed (nullptr uninstalls). The caller keeps ownership and must
  /// uninstall before destruction.
  static void Install(FlightRecorder* recorder);
  static FlightRecorder* Installed();

  // --- Recording (lock-free, allocation-free) ------------------------------
  /// Records one event. `name` is truncated to kNameCapacity-1 bytes.
  void Record(EventKind kind, const char* name, uint64_t trace_id);

  // --- Persistence ---------------------------------------------------------
  /// Serializes the rings (seq-sorted) + metrics snapshot and atomically
  /// replaces the black-box file. Takes the recorder mutex (rank 71).
  Status Persist() MOPE_EXCLUDES(mutex_);
  /// Persist(), skipped cheaply when nothing was recorded since the last
  /// successful Persist().
  Status PersistIfDirty() MOPE_EXCLUDES(mutex_);

  /// Opens the `<path>.fatal` append handle ahead of time so the signal
  /// handler never has to. Call once after construction (not signal-safe).
  Status PrepareFatalDump() MOPE_EXCLUDES(mutex_);
  /// Async-signal-safe dump of every live entry to the pre-opened
  /// `<path>.fatal` handle. The ONLY recorder API legal inside a fatal
  /// signal handler (linter rule R13). No-op unless PrepareFatalDump()
  /// succeeded; reentrancy-guarded.
  void FatalSignalDump(int signo);

  // --- Reader --------------------------------------------------------------
  /// Reads a black box written by Persist() — and, when present, its
  /// `.fatal` sibling — and renders seq-sorted human-readable text ending
  /// with summary lines:
  ///     blackbox.events=<n>
  ///     blackbox.last_seq=<n>
  ///     blackbox.last_trace_id=<id>
  static Result<std::string> FormatDump(storage::Env* env,
                                        const std::string& path);

  // --- Introspection -------------------------------------------------------
  uint64_t events_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return options_.path; }

  /// Entry name capacity (including the terminator).
  static constexpr size_t kNameCapacity = 48;

 private:
  /// One ring entry. Fields are individually atomic (relaxed) and sequenced
  /// by `seq`: the writer zeroes seq, writes the fields, then publishes seq
  /// with release; readers snapshot under two acquire loads of seq and
  /// discard torn entries. seq == 0 means "never written".
  struct Entry {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<char> name[kNameCapacity] = {};
  };

  struct Slot {
    std::atomic<uint64_t> next{0};  ///< claim index; entry = next & mask
  };

  /// A consistent copy of one entry, for persistence.
  struct EntryCopy {
    uint64_t seq;
    uint64_t ts_ns;
    uint64_t trace_id;
    uint8_t kind;
    char name[kNameCapacity];
  };

  size_t SlotIndexForThisThread();
  /// Snapshots every live entry (unsorted).
  std::vector<EntryCopy> CollectEntries() const;
  /// True and `*out` filled iff the entry read back consistent and live.
  bool SnapshotEntry(const Entry& entry, EntryCopy* out) const;

  storage::Env* const env_;
  const Options options_;
  Clock* const clock_;
  MetricsRegistry* const registry_;
  const size_t ring_mask_;  ///< ring_entries rounded to pow2, minus one

  std::unique_ptr<Entry[]> entries_;  ///< max_threads * (ring_mask_ + 1)
  std::unique_ptr<Slot[]> slots_;

  std::atomic<uint64_t> seq_{0};  ///< global publication order; 1-based
  std::atomic<uint64_t> last_persisted_seq_{0};

  /// Serializes Persist() against itself (rank 71; below log sink and
  /// registry, both of which a persist pass may read). It guards the
  /// persist *critical section*, not member state: every member is an
  /// atomic that Record() must keep writing lock-free mid-persist.
  mutable Mutex mutex_{  // invariant-ok: guards a section, all state atomic
      lock_rank::kFlightRecorder};

  // Fatal-dump state: pre-opened append handle plus a reentrancy latch.
  // The unique_ptr is set once by PrepareFatalDump() (before any handler
  // can run) and only read afterwards.
  std::unique_ptr<storage::AppendFile> fatal_file_;
  std::atomic<bool> fatal_dumped_{false};

  Counter* events_counter_;  ///< nullptr when no registry was given
};

}  // namespace mope::obs

#endif  // MOPE_OBS_FLIGHT_RECORDER_H_
