#include "obs/registry.h"

#include <algorithm>
#include <cstdio>

namespace mope::obs {

namespace {

/// Prometheus names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our internal names are
/// dotted; everything else already conforms.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kDerived:
      return "derived";
  }
  return "unknown";
}

int ExpHistogram::BucketIndex(uint64_t sample) {
  // Bucket i holds samples in (2^(i-1), 2^i]; sample 0 and 1 land in bucket 0.
  if (sample <= 1) return 0;
  int bit = 63 - __builtin_clzll(sample);
  // Exact powers of two belong to their own bucket, everything else rounds up.
  const int idx = ((sample & (sample - 1)) == 0) ? bit : bit + 1;
  return idx > kMaxPow2 ? kMaxPow2 + 1 : idx;
}

uint64_t ExpHistogram::ApproxQuantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += BucketCount(i);
    if (seen > target || seen == total) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

uint64_t ExpHistogram::QuantileInterpolated(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double seen = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = BucketCount(i);
    if (n == 0) continue;
    if (seen + static_cast<double>(n) >= target) {
      const uint64_t lo = i == 0 ? 0 : BucketBound(i - 1);
      if (i > kMaxPow2) return lo;  // overflow bucket: no upper bound
      const uint64_t hi = BucketBound(i);
      const double frac =
          n == 0 ? 0.0 : (target - seen) / static_cast<double>(n);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += static_cast<double>(n);
  }
  return BucketBound(kNumBuckets - 1);
}

void ExpHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

mope::Histogram ExpHistogram::ToHistogram() const {
  mope::Histogram h(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = BucketCount(i);
    if (n > 0) h.Add(static_cast<uint64_t>(i), n);
  }
  return h;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

ExpHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ExpHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Snapshot()
    const {
  const MutexLock lock(&mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size() + gauges_.size() + 4 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, static_cast<uint64_t>(gauge->Value()));
  }
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name + ".count", hist->Count());
    out.emplace_back(name + ".sum", hist->Sum());
    // Quantiles are emitted even for a never-observed histogram (as 0), so
    // temporal consumers see a continuous series from the first scrape.
    out.emplace_back(name + ".p50", hist->QuantileInterpolated(0.50));
    out.emplace_back(name + ".p95", hist->QuantileInterpolated(0.95));
    out.emplace_back(name + ".p99", hist->QuantileInterpolated(0.99));
    for (int i = 0; i < ExpHistogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) continue;
      const std::string bound =
          i > ExpHistogram::kMaxPow2
              ? "inf"
              : std::to_string(ExpHistogram::BucketBound(i));
      out.emplace_back(name + ".le." + bound, n);
    }
  }
  // The maps are ordered, but the three families interleave: fix one order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TypedSample> MetricsRegistry::TypedSnapshot() const {
  const MutexLock lock(&mutex_);
  std::vector<TypedSample> out;
  out.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, MetricKind::kCounter, counter->Value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, MetricKind::kGauge,
                   static_cast<uint64_t>(gauge->Value())});
  }
  for (const auto& [name, hist] : histograms_) {
    out.push_back({name + ".count", MetricKind::kCounter, hist->Count()});
    out.push_back({name + ".sum", MetricKind::kCounter, hist->Sum()});
    out.push_back(
        {name + ".p50", MetricKind::kDerived, hist->QuantileInterpolated(0.50)});
    out.push_back(
        {name + ".p95", MetricKind::kDerived, hist->QuantileInterpolated(0.95)});
    out.push_back(
        {name + ".p99", MetricKind::kDerived, hist->QuantileInterpolated(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const TypedSample& a, const TypedSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::RenderText() const {
  const MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < ExpHistogram::kNumBuckets; ++i) {
      cumulative += hist->BucketCount(i);
      if (i > ExpHistogram::kMaxPow2) {
        out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
      } else if (hist->BucketCount(i) > 0 || i == ExpHistogram::kMaxPow2) {
        out += prom + "_bucket{le=\"" +
               std::to_string(ExpHistogram::BucketBound(i)) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
    }
    // Prometheus histogram convention: the full cumulative `_bucket` series
    // (ending at le="+Inf" == _count) first, then `_sum`, then `_count`.
    out += prom + "_sum " + std::to_string(hist->Sum()) + "\n";
    out += prom + "_count " + std::to_string(hist->Count()) + "\n";
    // Interpolated quantiles as companion gauges (a native histogram's
    // consumers would compute these server-side via histogram_quantile();
    // exporting them too costs three lines and saves every dashboard the
    // PromQL). Emitted even when the histogram has never observed a sample
    // (as 0): a scrape-side rate() or dashboard query over a fresh series
    // must not gap between the first scrape and the first observation.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p95", 0.95},
          {"_p99", 0.99}}) {
      out += "# TYPE " + prom + suffix + " gauge\n";
      out += prom + suffix + " " +
             std::to_string(hist->QuantileInterpolated(q)) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const MutexLock lock(&mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(hist->Count()) +
           ",\"sum\":" + std::to_string(hist->Sum()) +
           ",\"p50\":" + std::to_string(hist->QuantileInterpolated(0.50)) +
           ",\"p95\":" + std::to_string(hist->QuantileInterpolated(0.95)) +
           ",\"p99\":" + std::to_string(hist->QuantileInterpolated(0.99)) +
           ",\"buckets\":{";
    bool first_bucket = true;
    for (int i = 0; i < ExpHistogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      const std::string bound =
          i > ExpHistogram::kMaxPow2
              ? "inf"
              : std::to_string(ExpHistogram::BucketBound(i));
      out += "\"" + bound + "\":" + std::to_string(n);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  const MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry* Registry() {
  static MetricsRegistry* global = new MetricsRegistry();  // never destroyed
  return global;
}

}  // namespace mope::obs
