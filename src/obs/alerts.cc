#include "obs/alerts.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/log.h"

namespace mope::obs {

namespace {

bool IsMetricChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool IsMetricName(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!IsMetricChar(c)) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> SplitTokens(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

const char* ComparatorName(AlertComparator op) {
  switch (op) {
    case AlertComparator::kGt:
      return ">";
    case AlertComparator::kGe:
      return ">=";
    case AlertComparator::kLt:
      return "<";
    case AlertComparator::kLe:
      return "<=";
  }
  return "?";
}

bool Compare(AlertComparator op, double lhs, double rhs) {
  switch (op) {
    case AlertComparator::kGt:
      return lhs > rhs;
    case AlertComparator::kGe:
      return lhs >= rhs;
    case AlertComparator::kLt:
      return lhs < rhs;
    case AlertComparator::kLe:
      return lhs <= rhs;
  }
  return false;
}

std::string DoubleField(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Finds `name` in a name-sorted TypedSnapshot and converts it to double
/// under its kind (gauges read back as signed). Returns false when absent.
bool LookupSample(const std::vector<TypedSample>& samples,
                  const std::string& name, double* out,
                  MetricKind* kind_out) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const TypedSample& s, const std::string& n) { return s.name < n; });
  if (it == samples.end() || it->name != name) return false;
  *kind_out = it->kind;
  *out = it->kind == MetricKind::kGauge
             ? static_cast<double>(static_cast<int64_t>(it->value))
             : static_cast<double>(it->value);
  return true;
}

}  // namespace

Result<AlertRule> ParseAlertRule(std::string_view spec) {
  AlertRule rule;
  const size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("alert rule needs 'name: predicate', got '" +
                                   std::string(spec) + "'");
  }
  const std::string_view name = Trim(spec.substr(0, colon));
  if (!IsMetricName(name)) {
    return Status::InvalidArgument("bad alert rule name '" +
                                   std::string(name) + "'");
  }
  rule.name = std::string(name);

  const std::vector<std::string_view> tokens =
      SplitTokens(spec.substr(colon + 1));
  if (tokens.size() != 3 && tokens.size() != 5) {
    return Status::InvalidArgument(
        "alert rule predicate must be 'TERM OP RHS [for N]' in '" +
        std::string(spec) + "'");
  }

  // TERM: metric | rate(metric) | delta(metric).
  std::string_view term = tokens[0];
  if (term.size() > 6 && term.substr(0, 5) == "rate(" &&
      term.back() == ')') {
    rule.term = AlertTermKind::kRate;
    term = term.substr(5, term.size() - 6);
  } else if (term.size() > 7 && term.substr(0, 6) == "delta(" &&
             term.back() == ')') {
    rule.term = AlertTermKind::kDelta;
    term = term.substr(6, term.size() - 7);
  } else {
    rule.term = AlertTermKind::kValue;
  }
  if (!IsMetricName(term)) {
    return Status::InvalidArgument("bad metric name '" + std::string(term) +
                                   "' in alert rule");
  }
  rule.metric = std::string(term);

  const std::string_view op = tokens[1];
  if (op == ">") {
    rule.op = AlertComparator::kGt;
  } else if (op == ">=") {
    rule.op = AlertComparator::kGe;
  } else if (op == "<") {
    rule.op = AlertComparator::kLt;
  } else if (op == "<=") {
    rule.op = AlertComparator::kLe;
  } else {
    return Status::InvalidArgument("bad comparator '" + std::string(op) +
                                   "' in alert rule (>, >=, <, <=)");
  }

  // RHS: a number if strtod consumes the whole token, else a metric name.
  const std::string rhs(tokens[2]);
  char* end = nullptr;
  const double threshold = std::strtod(rhs.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != rhs.c_str()) {
    rule.rhs_is_metric = false;
    rule.threshold = threshold;
  } else if (IsMetricName(rhs)) {
    rule.rhs_is_metric = true;
    rule.rhs_metric = rhs;
  } else {
    return Status::InvalidArgument("bad threshold '" + rhs +
                                   "' in alert rule (number or metric)");
  }

  if (tokens.size() == 5) {
    if (tokens[3] != "for") {
      return Status::InvalidArgument("expected 'for N' at '" +
                                     std::string(tokens[3]) + "'");
    }
    const std::string n(tokens[4]);
    char* nend = nullptr;
    const unsigned long count = std::strtoul(n.c_str(), &nend, 10);
    if (nend == nullptr || *nend != '\0' || nend == n.c_str() || count == 0 ||
        count > 1000000) {
      return Status::InvalidArgument("bad 'for' count '" + n +
                                     "' in alert rule");
    }
    rule.for_samples = static_cast<uint32_t>(count);
  }
  return rule;
}

std::string FormatAlertRule(const AlertRule& rule) {
  std::string out = rule.name + ": ";
  switch (rule.term) {
    case AlertTermKind::kValue:
      out += rule.metric;
      break;
    case AlertTermKind::kRate:
      out += "rate(" + rule.metric + ")";
      break;
    case AlertTermKind::kDelta:
      out += "delta(" + rule.metric + ")";
      break;
  }
  out += " ";
  out += ComparatorName(rule.op);
  out += " ";
  out += rule.rhs_is_metric ? rule.rhs_metric : DoubleField(rule.threshold);
  if (rule.for_samples > 1) {
    out += " for " + std::to_string(rule.for_samples);
  }
  return out;
}

AlertEngine::AlertEngine(MetricsRegistry* registry, Clock* clock)
    : registry_(registry),
      clock_(clock != nullptr ? clock : SystemClock()),
      active_gauge_(registry->GetGauge("alerts.active")),
      transitions_counter_(registry->GetCounter("alerts.transitions")) {}

Status AlertEngine::AddRule(const AlertRule& rule) {
  if (rule.name.empty() || rule.metric.empty() || rule.for_samples == 0) {
    return Status::InvalidArgument("incomplete alert rule");
  }
  // The per-rule gauge lives in the registry (rank 80): create it before
  // taking our own mutex so lock acquisition stays strictly increasing for
  // readers that hold neither.
  Gauge* gauge = registry_->GetGauge("alerts.rule." + rule.name);
  const MutexLock lock(&mutex_);
  for (const Tracked& t : rules_) {
    if (t.rule.name == rule.name) {
      return Status::AlreadyExists("alert rule '" + rule.name +
                                   "' already defined");
    }
  }
  Tracked tracked;
  tracked.rule = rule;
  tracked.gauge = gauge;
  gauge->Set(0);
  rules_.push_back(std::move(tracked));
  return Status::OK();
}

Status AlertEngine::AddRuleSpec(std::string_view spec) {
  MOPE_ASSIGN_OR_RETURN(AlertRule rule, ParseAlertRule(spec));
  return AddRule(rule);
}

void AlertEngine::AddDefaultRules() {
  // The production rule set the issue calls for: attack-convergence trends
  // plus the storage health thresholds an operator would page on.
  static constexpr const char* kDefaults[] = {
      // The largest-gap margin widening across 3 consecutive samples means
      // the Section 5.1 offset estimate is actively converging.
      "gap_margin_converging: delta(leakage.gap.margin) > 0 for 3",
      // Chi-square statistic crossing its own critical value (both in
      // milli-units) — the uniformity test rejecting at the configured
      // significance level.
      "chi2_critical: leakage.uniformity.chi2_milli > "
      "leakage.uniformity.chi2_critical_milli",
      "dispatch_p99_slow: server.dispatch_ns.p99 > 100000000 for 3",
      "pool_miss_rate_high: rate(storage.pool.misses) > 10000",
      "wal_fsync_stall: storage.wal.fsync_ns.p99 > 1000000000",
  };
  for (const char* spec : kDefaults) {
    const Status added = AddRuleSpec(spec);
    if (!added.ok()) {
      // Unreachable for the literals above; surfaced for future edits.
      MOPE_LOG(kError, "alerts", "default_rule_rejected")
          .Arg("rule", spec)
          .Arg("status", added.ToString());
    }
  }
}

void AlertEngine::Observe(uint64_t ts_ns,
                          const std::vector<TypedSample>& samples) {
  if (ts_ns == 0) ts_ns = clock_->NowNanos();
  const MutexLock lock(&mutex_);
  for (Tracked& t : rules_) {
    EvaluateLocked(&t, ts_ns, samples);
  }
  int64_t firing = 0;
  for (const Tracked& t : rules_) {
    if (t.firing) ++firing;
  }
  active_gauge_->Set(firing);
}

void AlertEngine::EvaluateLocked(Tracked* t, uint64_t ts_ns,
                                 const std::vector<TypedSample>& samples) {
  const AlertRule& rule = t->rule;
  double cur = 0.0;
  MetricKind kind = MetricKind::kGauge;
  if (!LookupSample(samples, rule.metric, &cur, &kind)) {
    // Metric not registered yet: the rule waits, state untouched.
    t->evaluated = false;
    return;
  }

  double value = cur;
  if (rule.term != AlertTermKind::kValue) {
    if (!t->has_prev) {
      t->has_prev = true;
      t->prev_value = cur;
      t->prev_ts_ns = ts_ns;
      t->evaluated = false;
      return;
    }
    double delta = cur - t->prev_value;
    // Counters that moved backwards were reset; the post-reset value is the
    // whole contribution of this interval.
    if (kind == MetricKind::kCounter && delta < 0) delta = cur;
    const uint64_t dt_ns = ts_ns - t->prev_ts_ns;
    t->prev_value = cur;
    t->prev_ts_ns = ts_ns;
    if (rule.term == AlertTermKind::kRate) {
      if (dt_ns == 0) {
        t->evaluated = false;
        return;
      }
      value = delta / (static_cast<double>(dt_ns) / 1e9);
    } else {
      value = delta;
    }
  }

  double threshold = rule.threshold;
  if (rule.rhs_is_metric) {
    MetricKind rhs_kind = MetricKind::kGauge;
    if (!LookupSample(samples, rule.rhs_metric, &threshold, &rhs_kind)) {
      t->evaluated = false;
      return;
    }
  }

  t->evaluated = true;
  t->last_value = value;
  t->last_threshold = threshold;

  const bool breached = Compare(rule.op, value, threshold);
  if (breached) {
    if (t->breach_streak < rule.for_samples) ++t->breach_streak;
    if (!t->firing && t->breach_streak >= rule.for_samples) {
      t->firing = true;
      t->since_ts_ns = ts_ns;
      ++t->transitions;
      t->gauge->Set(1);
      transitions_counter_->Increment();
      MOPE_LOG(kWarn, "alerts", "alert")
          .Arg("rule", rule.name)
          .Arg("state", "firing")
          .Arg("metric", rule.metric)
          .Arg("value", value)
          .Arg("threshold", threshold)
          .Arg("streak", static_cast<uint64_t>(t->breach_streak));
    }
  } else {
    t->breach_streak = 0;
    if (t->firing) {
      t->firing = false;
      ++t->transitions;
      t->gauge->Set(0);
      transitions_counter_->Increment();
      MOPE_LOG(kInfo, "alerts", "alert")
          .Arg("rule", rule.name)
          .Arg("state", "resolved")
          .Arg("metric", rule.metric)
          .Arg("value", value)
          .Arg("threshold", threshold);
    }
  }
}

std::vector<AlertEngine::RuleState> AlertEngine::States() const {
  const MutexLock lock(&mutex_);
  std::vector<RuleState> out;
  out.reserve(rules_.size());
  for (const Tracked& t : rules_) {
    RuleState s;
    s.rule = t.rule;
    s.firing = t.firing;
    s.since_ts_ns = t.since_ts_ns;
    s.transitions = t.transitions;
    s.breach_streak = t.breach_streak;
    s.evaluated = t.evaluated;
    s.last_value = t.last_value;
    s.last_threshold = t.last_threshold;
    out.push_back(std::move(s));
  }
  return out;
}

std::string AlertEngine::RenderJson() const {
  const MutexLock lock(&mutex_);
  int64_t firing = 0;
  for (const Tracked& t : rules_) {
    if (t.firing) ++firing;
  }
  std::string out = "{\"firing\":" + std::to_string(firing) + ",\"rules\":[";
  bool first = true;
  for (const Tracked& t : rules_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(t.rule.name) + "\"";
    out += ",\"rule\":\"" + JsonEscape(FormatAlertRule(t.rule)) + "\"";
    out += ",\"firing\":";
    out += t.firing ? "true" : "false";
    out += ",\"since_ts_ns\":" + std::to_string(t.since_ts_ns);
    out += ",\"transitions\":" + std::to_string(t.transitions);
    out += ",\"breach_streak\":" + std::to_string(t.breach_streak);
    out += ",\"evaluated\":";
    out += t.evaluated ? "true" : "false";
    out += ",\"value\":" + DoubleField(t.last_value);
    out += ",\"threshold\":" + DoubleField(t.last_threshold);
    out += "}";
  }
  out += "]}";
  return out;
}

size_t AlertEngine::rule_count() const {
  const MutexLock lock(&mutex_);
  return rules_.size();
}

size_t AlertEngine::firing_count() const {
  const MutexLock lock(&mutex_);
  size_t n = 0;
  for (const Tracked& t : rules_) {
    if (t.firing) ++n;
  }
  return n;
}

}  // namespace mope::obs
