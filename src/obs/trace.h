#ifndef MOPE_OBS_TRACE_H_
#define MOPE_OBS_TRACE_H_

/// \file trace.h
/// Per-query trace spans: one user query becomes one span tree.
///
/// A Trace is created at a query entry point (EncryptedSqlSession::Execute,
/// or any caller that wants a profile), activated for the current thread,
/// and then every instrumented layer underneath — the SQL parser, the
/// fake-query sampling, MOPE encryption, each server round trip, the
/// decrypt/filter pass — contributes spans without any plumbing through
/// signatures: `ScopedSpan span("proxy.encrypt")` reads the thread-local
/// active trace and is a no-op (two branches, no allocation) when tracing is
/// off, which is what keeps the hot paths honest.
///
/// The trace also carries named counters (HGD draws, decrypt calls) that are
/// too fine-grained to be spans, and a 64-bit trace id that RemoteConnection
/// stamps into the wire frame header so a server can correlate its own
/// accounting with the client's span tree (see net/wire.h, version 2
/// frames).
///
/// Timing comes from an injectable Clock (obs/clock.h): production traces
/// use SystemClock(), tests use a ManualClock with auto-advance so span
/// trees are byte-stable. Ids are drawn from a process-wide counter — no
/// wall clock, no randomness.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace mope::obs {

/// One timed operation in a trace. `parent` is the index+1 of the enclosing
/// span (0 for roots), so the vector is the tree.
struct Span {
  std::string name;
  uint32_t parent = 0;       ///< 1-based index of parent span; 0 = root.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;       ///< 0 while the span is open.
};

class Trace {
 public:
  /// `clock` must outlive the trace; nullptr selects SystemClock().
  /// `forced_id` adopts an externally assigned trace id (a server picking up
  /// the id a client stamped into the wire frame header); 0 draws a fresh id
  /// from the process-wide counter.
  explicit Trace(std::string name, Clock* clock = nullptr,
                 uint64_t forced_id = 0);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& name() const { return name_; }

  /// Opens a span as a child of the innermost open span (so nesting follows
  /// call structure). Returns the 1-based span id for EndSpan.
  uint32_t StartSpan(std::string span_name);
  void EndSpan(uint32_t id);

  /// Bumps a per-trace named counter (for events too frequent to span).
  void IncrementCounter(const std::string& name, uint64_t n = 1);

  // --- Inspection (safe after, or concurrently with, recording) -----------
  std::vector<Span> spans() const;
  std::map<std::string, uint64_t> counters() const;

  /// Number of spans whose name is exactly `span_name`.
  size_t CountSpans(const std::string& span_name) const;

  /// True if every span's timestamps are monotone (start <= end, children
  /// within [start, end] of their parent, and siblings ordered by start).
  bool TimingsMonotone() const;

  /// Indented ASCII rendering of the tree with durations in microseconds,
  /// followed by the per-trace counters.
  std::string RenderTree() const;

 private:
  const std::string name_;
  Clock* const clock_;
  const uint64_t trace_id_;

  mutable Mutex mutex_{lock_rank::kTrace};
  std::vector<Span> spans_ MOPE_GUARDED_BY(mutex_);
  /// 1-based ids of open spans.
  std::vector<uint32_t> open_stack_ MOPE_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t> counters_ MOPE_GUARDED_BY(mutex_);
};

// --- Thread-local activation ---------------------------------------------

/// The trace active on this thread, or nullptr. Instrumented code calls
/// this (via ScopedSpan / BumpTraceCounter) instead of taking a Trace
/// parameter.
Trace* CurrentTrace();

/// Trace id of the active trace, 0 when tracing is off. This is what the
/// wire layer stamps into outgoing frame headers.
uint64_t CurrentTraceId();

/// Installs `trace` as the thread's active trace for the scope's lifetime
/// and restores the previous one (traces may nest) on destruction.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace* trace);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  Trace* previous_;
};

/// RAII span against the thread's active trace; free when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : trace_(CurrentTrace()) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(name);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  uint32_t id_ = 0;
};

/// Bumps a counter on the active trace; no-op when tracing is off.
inline void BumpTraceCounter(const char* name, uint64_t n = 1) {
  Trace* trace = CurrentTrace();
  if (trace != nullptr) trace->IncrementCounter(name, n);
}

}  // namespace mope::obs

#endif  // MOPE_OBS_TRACE_H_
