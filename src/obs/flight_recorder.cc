#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>

namespace mope::obs {

namespace {

std::atomic<FlightRecorder*> g_installed{nullptr};

// --- Async-signal-safe formatting ------------------------------------------
// The fatal dump path may interrupt arbitrary code, so it formats with these
// bounded, allocation-free writers instead of snprintf (not on the POSIX
// async-signal-safe list).

size_t AppendChar(char* buf, size_t pos, size_t cap, char c) {
  if (pos < cap) buf[pos++] = c;
  return pos;
}

size_t AppendStr(char* buf, size_t pos, size_t cap, const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

size_t AppendU64(char* buf, size_t pos, size_t cap, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Parses `key=<digits>` out of a black-box line; false when absent.
bool ParseU64Field(const std::string& line, const char* key, uint64_t* out) {
  const std::string needle = std::string(key) + "=";
  size_t pos = line.find(needle);
  while (pos != std::string::npos && pos != 0 && line[pos - 1] != ' ') {
    pos = line.find(needle, pos + 1);  // `trace=` must not match `xtrace=`
  }
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  uint64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

}  // namespace

const char* FlightRecorder::EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kLog:
      return "log";
    case EventKind::kEvent:
      return "event";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(storage::Env* env, Options options,
                               Clock* clock, MetricsRegistry* registry)
    : env_(env),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : SystemClock()),
      registry_(registry),
      ring_mask_(RoundUpPow2(std::max<size_t>(options_.ring_entries, 2)) - 1),
      entries_(new Entry[std::max<size_t>(options_.max_threads, 1) *
                         (ring_mask_ + 1)]),
      slots_(new Slot[std::max<size_t>(options_.max_threads, 1)]),
      events_counter_(registry != nullptr
                          ? registry->GetCounter("obs.flightrecorder.events")
                          : nullptr) {}

FlightRecorder::~FlightRecorder() {
  // Defensive: a recorder must not stay installed past its lifetime.
  FlightRecorder* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

void FlightRecorder::Install(FlightRecorder* recorder) {
  g_installed.store(recorder, std::memory_order_release);
}

FlightRecorder* FlightRecorder::Installed() {
  return g_installed.load(std::memory_order_acquire);
}

size_t FlightRecorder::SlotIndexForThisThread() {
  // Stateless slot choice: hash the thread id. Collisions merely share a
  // ring (the claim index is atomic, so multi-writer rings stay safe).
  const size_t n = std::max<size_t>(options_.max_threads, 1);
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % n;
}

void FlightRecorder::Record(EventKind kind, const char* name,
                            uint64_t trace_id) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const size_t slot = SlotIndexForThisThread();
  const uint64_t claim =
      slots_[slot].next.fetch_add(1, std::memory_order_relaxed);
  Entry& entry =
      entries_[slot * (ring_mask_ + 1) + (claim & ring_mask_)];
  // Seqlock write: invalidate, fill, publish. A concurrent reader that
  // catches the middle sees seq==0 or a seq mismatch and discards.
  entry.seq.store(0, std::memory_order_release);
  entry.ts_ns.store(clock_->NowNanos(), std::memory_order_relaxed);
  entry.trace_id.store(trace_id, std::memory_order_relaxed);
  entry.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  size_t i = 0;
  if (name != nullptr) {
    for (; name[i] != '\0' && i < kNameCapacity - 1; ++i) {
      entry.name[i].store(name[i], std::memory_order_relaxed);
    }
  }
  entry.name[i].store('\0', std::memory_order_relaxed);
  entry.seq.store(seq, std::memory_order_release);
  if (events_counter_ != nullptr) events_counter_->Increment();
}

bool FlightRecorder::SnapshotEntry(const Entry& entry, EntryCopy* out) const {
  const uint64_t seq_before = entry.seq.load(std::memory_order_acquire);
  if (seq_before == 0) return false;
  out->seq = seq_before;
  out->ts_ns = entry.ts_ns.load(std::memory_order_relaxed);
  out->trace_id = entry.trace_id.load(std::memory_order_relaxed);
  out->kind = entry.kind.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNameCapacity; ++i) {
    out->name[i] = entry.name[i].load(std::memory_order_relaxed);
  }
  out->name[kNameCapacity - 1] = '\0';
  const uint64_t seq_after = entry.seq.load(std::memory_order_acquire);
  return seq_after == seq_before;
}

std::vector<FlightRecorder::EntryCopy> FlightRecorder::CollectEntries()
    const {
  const size_t slots = std::max<size_t>(options_.max_threads, 1);
  const size_t per_slot = ring_mask_ + 1;
  std::vector<EntryCopy> out;
  out.reserve(slots * per_slot);
  for (size_t s = 0; s < slots; ++s) {
    for (size_t i = 0; i < per_slot; ++i) {
      EntryCopy copy;
      if (SnapshotEntry(entries_[s * per_slot + i], &copy)) {
        out.push_back(copy);
      }
    }
  }
  return out;
}

Status FlightRecorder::Persist() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("flight recorder has no black-box path");
  }
  const MutexLock lock(&mutex_);
  const uint64_t high_water = seq_.load(std::memory_order_acquire);
  std::vector<EntryCopy> entries = CollectEntries();
  std::sort(entries.begin(), entries.end(),
            [](const EntryCopy& a, const EntryCopy& b) {
              return a.seq < b.seq;
            });
  std::string text = "mope-blackbox v1\n";
  for (const EntryCopy& e : entries) {
    text += "event seq=" + std::to_string(e.seq);
    text += " ts_ns=" + std::to_string(e.ts_ns);
    text += " kind=";
    text += EventKindName(static_cast<EventKind>(e.kind));
    text += " name=";
    text += e.name;
    text += " trace=" + std::to_string(e.trace_id);
    text += "\n";
  }
  if (registry_ != nullptr) {
    text += "metrics\n";
    text += registry_->RenderText();
  }
  const Status written = env_->WriteFileAtomic(options_.path, text);
  if (!written.ok()) return written;
  last_persisted_seq_.store(high_water, std::memory_order_release);
  return Status::OK();
}

Status FlightRecorder::PersistIfDirty() {
  if (seq_.load(std::memory_order_acquire) ==
      last_persisted_seq_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  return Persist();
}

Status FlightRecorder::PrepareFatalDump() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("flight recorder has no black-box path");
  }
  MOPE_ASSIGN_OR_RETURN(
      fatal_file_, env_->OpenAppend(options_.path + ".fatal",
                                    /*truncate=*/true));
  return Status::OK();
}

void FlightRecorder::FatalSignalDump(int signo) {
  // Async-signal-safe from here down: atomic loads, bounded stack buffers,
  // and the pre-opened append handle (a raw ::write/::fsync underneath for
  // the POSIX env). No locks, no allocation, no stdio.
  if (fatal_file_ == nullptr) return;
  if (fatal_dumped_.exchange(true)) return;  // reentrancy/double-signal latch
  char buf[256];
  size_t n = 0;
  n = AppendStr(buf, n, sizeof(buf), "fatal signo=");
  n = AppendU64(buf, n, sizeof(buf), static_cast<uint64_t>(signo));
  n = AppendChar(buf, n, sizeof(buf), '\n');
  (void)fatal_file_->Append(std::string_view(buf, n));

  const size_t slots = std::max<size_t>(options_.max_threads, 1);
  const size_t per_slot = ring_mask_ + 1;
  for (size_t s = 0; s < slots; ++s) {
    for (size_t i = 0; i < per_slot; ++i) {
      EntryCopy copy;
      if (!SnapshotEntry(entries_[s * per_slot + i], &copy)) continue;
      n = 0;
      n = AppendStr(buf, n, sizeof(buf), "event seq=");
      n = AppendU64(buf, n, sizeof(buf), copy.seq);
      n = AppendStr(buf, n, sizeof(buf), " ts_ns=");
      n = AppendU64(buf, n, sizeof(buf), copy.ts_ns);
      n = AppendStr(buf, n, sizeof(buf), " kind=");
      n = AppendStr(buf, n, sizeof(buf),
                    EventKindName(static_cast<EventKind>(copy.kind)));
      n = AppendStr(buf, n, sizeof(buf), " name=");
      n = AppendStr(buf, n, sizeof(buf), copy.name);
      n = AppendStr(buf, n, sizeof(buf), " trace=");
      n = AppendU64(buf, n, sizeof(buf), copy.trace_id);
      n = AppendChar(buf, n, sizeof(buf), '\n');
      (void)fatal_file_->Append(std::string_view(buf, n));
    }
  }
  n = 0;
  n = AppendStr(buf, n, sizeof(buf), "end\n");
  (void)fatal_file_->Append(std::string_view(buf, n));
  (void)fatal_file_->Sync();
}

Result<std::string> FlightRecorder::FormatDump(storage::Env* env,
                                               const std::string& path) {
  MOPE_ASSIGN_OR_RETURN(const std::string main_text, env->ReadFile(path));

  struct ParsedEvent {
    uint64_t seq;
    std::string line;
  };
  std::vector<ParsedEvent> events;
  std::string metrics;
  bool in_metrics = false;
  uint64_t fatal_signo = 0;
  bool saw_fatal = false;

  const auto consume = [&](const std::string& text, bool fatal_section) {
    size_t start = 0;
    bool metrics_here = false;
    while (start <= text.size()) {
      const size_t nl = text.find('\n', start);
      const std::string line =
          text.substr(start, nl == std::string::npos ? std::string::npos
                                                     : nl - start);
      start = nl == std::string::npos ? text.size() + 1 : nl + 1;
      if (metrics_here) {
        if (!line.empty()) metrics += line + "\n";
        continue;
      }
      if (line.rfind("event seq=", 0) == 0) {
        uint64_t seq = 0;
        if (ParseU64Field(line, "seq", &seq)) events.push_back({seq, line});
      } else if (line == "metrics" && !fatal_section) {
        metrics_here = true;
        in_metrics = true;
      } else if (line.rfind("fatal signo=", 0) == 0) {
        saw_fatal = true;
        (void)ParseU64Field(line, "signo", &fatal_signo);
      }
    }
  };
  consume(main_text, /*fatal_section=*/false);

  const std::string fatal_path = path + ".fatal";
  if (env->FileExists(fatal_path)) {
    MOPE_ASSIGN_OR_RETURN(const std::string fatal_text,
                          env->ReadFile(fatal_path));
    consume(fatal_text, /*fatal_section=*/true);
  }

  // The continuous black box and a fatal dump overlap; order by seq and
  // keep one line per event.
  std::sort(events.begin(), events.end(),
            [](const ParsedEvent& a, const ParsedEvent& b) {
              return a.seq < b.seq;
            });
  events.erase(std::unique(events.begin(), events.end(),
                           [](const ParsedEvent& a, const ParsedEvent& b) {
                             return a.seq == b.seq;
                           }),
               events.end());

  std::string out = "blackbox " + path + "\n";
  if (saw_fatal) {
    out += "fatal signo=" + std::to_string(fatal_signo) + "\n";
  }
  for (const ParsedEvent& e : events) {
    out += e.line + "\n";
  }
  if (in_metrics) {
    out += "metrics\n" + metrics;
  }
  out += "blackbox.events=" + std::to_string(events.size()) + "\n";
  uint64_t last_seq = 0;
  uint64_t last_trace = 0;
  if (!events.empty()) {
    last_seq = events.back().seq;
    (void)ParseU64Field(events.back().line, "trace", &last_trace);
  }
  out += "blackbox.last_seq=" + std::to_string(last_seq) + "\n";
  out += "blackbox.last_trace_id=" + std::to_string(last_trace) + "\n";
  return out;
}

}  // namespace mope::obs
