#ifndef MOPE_OBS_ALERTS_H_
#define MOPE_OBS_ALERTS_H_

/// \file alerts.h
/// Declarative alert rules over sampled metric series.
///
/// The TimeSeriesSampler (obs/timeseries.h) pushes every fresh snapshot into
/// an AlertEngine, which evaluates a set of declarative rules and tracks
/// firing/resolved *edges* — the engine is edge-triggered: one structured
/// `event=alert` log line when a rule starts firing, one when it resolves,
/// and silence in between, so a stuck-breached rule cannot flood the log.
///
/// Rule grammar (one rule per string, e.g. the daemon's --alert-rule flag):
///
///     RULE   := NAME ':' TERM OP RHS ['for' N]
///     TERM   := METRIC | 'rate(' METRIC ')' | 'delta(' METRIC ')'
///     OP     := '>' | '>=' | '<' | '<='
///     RHS    := NUMBER | METRIC
///
///   - METRIC is a flattened registry name (histogram-derived series like
///     `server.dispatch_ns.p99` included).
///   - `rate(m)` is the per-second change between consecutive samples,
///     reset-aware for counters; `delta(m)` is the raw per-sample change
///     (signed for gauges). Both need two samples before they evaluate.
///   - A metric RHS compares two live series (e.g. the chi-square statistic
///     against its own critical value).
///   - `for N` requires N consecutive breached samples before the firing
///     edge (default 1); one clean sample resolves.
///
/// Examples:
///
///     gap_margin_converging: delta(leakage.gap.margin) > 0 for 3
///     chi2_critical: leakage.uniformity.chi2_milli >
///                    leakage.uniformity.chi2_critical_milli
///     dispatch_p99_slow: server.dispatch_ns.p99 > 100000000
///
/// The engine publishes its own state back into the registry — the
/// `alerts.active` gauge (rules currently firing), one `alerts.rule.<name>`
/// 0/1 gauge per rule, and the `alerts.transitions` edge counter — and
/// renders `GET /alertz` as JSON.
///
/// Locking: the engine's mutex ranks at lock_rank::kAlertEngine (73), above
/// the sampler (72) that calls Observe() under its own lock and below the
/// log sink (75) and registry (80) the engine talks to while evaluating.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::obs {

enum class AlertComparator : uint8_t { kGt, kGe, kLt, kLe };
enum class AlertTermKind : uint8_t { kValue, kRate, kDelta };

struct AlertRule {
  std::string name;
  AlertTermKind term = AlertTermKind::kValue;
  std::string metric;
  AlertComparator op = AlertComparator::kGt;
  /// When false, `threshold` holds the numeric RHS; when true, `rhs_metric`
  /// names the series whose current value is the threshold.
  bool rhs_is_metric = false;
  double threshold = 0.0;
  std::string rhs_metric;
  /// Consecutive breached samples required before the firing edge.
  uint32_t for_samples = 1;
};

/// Parses one rule in the grammar above. InvalidArgument with a pointer at
/// the offending token on malformed input.
Result<AlertRule> ParseAlertRule(std::string_view spec);

/// Round-trips a rule back into the grammar (normalized spacing).
std::string FormatAlertRule(const AlertRule& rule);

class AlertEngine {
 public:
  /// `registry` receives the alerts.* gauges and must outlive the engine;
  /// `clock` is only consulted when Observe is called without a timestamp
  /// source (nullptr selects SystemClock()).
  explicit AlertEngine(MetricsRegistry* registry, Clock* clock = nullptr);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Adds one rule. Duplicate rule names are rejected (AlreadyExists).
  Status AddRule(const AlertRule& rule) MOPE_EXCLUDES(mutex_);
  /// Parses `spec` and adds it.
  Status AddRuleSpec(std::string_view spec) MOPE_EXCLUDES(mutex_);

  /// The default production rule set: gap-attack convergence, chi-square
  /// criticality, dispatch p99, buffer-pool miss rate, WAL fsync stalls.
  void AddDefaultRules() MOPE_EXCLUDES(mutex_);

  /// Evaluates every rule against one fresh snapshot (the sampler calls
  /// this after each pass; `samples` is name-sorted TypedSnapshot output).
  /// Emits `event=alert` log lines on firing/resolved edges and refreshes
  /// the alerts.* gauges.
  void Observe(uint64_t ts_ns, const std::vector<TypedSample>& samples)
      MOPE_EXCLUDES(mutex_);

  /// Introspection snapshot of one rule's evaluation state.
  struct RuleState {
    AlertRule rule;
    bool firing = false;
    uint64_t since_ts_ns = 0;    ///< timestamp of the last firing edge
    uint64_t transitions = 0;    ///< firing + resolved edges so far
    uint32_t breach_streak = 0;  ///< consecutive breached samples
    bool evaluated = false;      ///< term had a value at the last Observe
    double last_value = 0.0;     ///< last evaluated term value
    double last_threshold = 0.0; ///< last RHS value
  };
  std::vector<RuleState> States() const MOPE_EXCLUDES(mutex_);

  /// The /alertz payload: {"firing":n,"rules":[{...}]}.
  std::string RenderJson() const MOPE_EXCLUDES(mutex_);

  size_t rule_count() const MOPE_EXCLUDES(mutex_);
  /// Rules currently firing.
  size_t firing_count() const MOPE_EXCLUDES(mutex_);

 private:
  struct Tracked {
    AlertRule rule;
    Gauge* gauge = nullptr;  ///< alerts.rule.<name>, 0/1
    bool firing = false;
    uint64_t since_ts_ns = 0;
    uint64_t transitions = 0;
    uint32_t breach_streak = 0;
    bool evaluated = false;
    double last_value = 0.0;
    double last_threshold = 0.0;
    // Previous raw sample of the rule's metric, for rate()/delta() terms.
    bool has_prev = false;
    double prev_value = 0.0;
    uint64_t prev_ts_ns = 0;
  };

  void EvaluateLocked(Tracked* t, uint64_t ts_ns,
                      const std::vector<TypedSample>& samples)
      MOPE_REQUIRES(mutex_);

  MetricsRegistry* const registry_;
  Clock* const clock_;

  mutable Mutex mutex_{lock_rank::kAlertEngine};
  std::vector<Tracked> rules_ MOPE_GUARDED_BY(mutex_);

  // Atomic targets; safe to refresh while holding our mutex.
  Gauge* active_gauge_;
  Counter* transitions_counter_;
};

}  // namespace mope::obs

#endif  // MOPE_OBS_ALERTS_H_
