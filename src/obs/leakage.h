#ifndef MOPE_OBS_LEAKAGE_H_
#define MOPE_OBS_LEAKAGE_H_

/// \file leakage.h
/// The live leakage auditor: the paper's Section 5 attack statistics,
/// maintained online over the stream of ciphertext range starts exactly as
/// the server observes them.
///
/// The MOPE security argument is operational: the secret offset stays
/// hidden only while the *perceived* query distribution (real + fake
/// queries) stays uniform (QueryU) or rho-periodic (QueryP). The offline
/// harnesses (src/attack/, bench_fig01-03) demonstrate what a patient
/// adversary recovers after the fact; this class runs the same statistics
/// incrementally so an operator can watch, on a live server, how close that
/// adversary is to winning:
///
///  * Largest-gap tracker (the Figure 1 attack). Distinct observed start
///    points live in an ordered set; a companion multiset of circular arcs
///    between consecutive points is updated on every new point, so the
///    largest and second-largest uncovered arcs — and the point just past
///    the largest arc, the gap attack's offset estimate — are maintained in
///    O(log n) per observation. A binomial-tail confidence (math_util
///    log-binomials) quantifies how unlikely the current coverage deficit
///    would be under a healthy uniform mix.
///  * Sliding-window chi-square uniformity over `buckets` value-space
///    buckets (reusing common/histogram's chi-square), so a *recently*
///    broken fake sampler is visible even after months of healthy history.
///    Expected bucket masses default to the observed support (each distinct
///    point weights its bucket), which self-calibrates to the uneven
///    ciphertext spacing OPE produces; a periodic deployment can supply
///    explicit expected masses instead.
///  * A `leakage.alert` gauge that latches the combined verdict.
///
/// Trust boundary (linter rule R8): this file and leakage.cc see only
/// ciphertext-space values and public parameters (domain size M, query
/// length k). They must never include src/ope/, src/proxy/ or src/sql/
/// headers — the auditor is, by construction, exactly as powerful as the
/// honest-but-curious server it runs inside.
///
/// All derived statistics are published as gauges in a MetricsRegistry, so
/// they ride the existing stats endpoint: `mope_serverd --audit` +
/// `mope_shell \leakage` read them over the wire with no new protocol.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"

namespace mope::obs {

struct LeakageAuditConfig {
  /// Size of the observed value space. For a server-side hook this is the
  /// ciphertext range N; offline replays may audit rank/shifted space
  /// directly with space == M. Required.
  uint64_t space = 0;

  /// Plaintext domain size M: the number of distinct start points a healthy
  /// mix eventually covers (a public parameter). Enables the binomial-tail
  /// coverage confidence; 0 disables that statistic (gap geometry and
  /// chi-square still run).
  uint64_t domain = 0;

  /// Buckets B for the uniformity chi-square (df = B - 1).
  uint64_t buckets = 64;

  /// Sliding-window length W for the chi-square statistic.
  uint64_t window = 4096;

  /// No alert (and no confidence) before this many observations.
  uint64_t min_observations = 512;

  /// Significance level for the chi-square critical value.
  double alpha = 0.01;

  /// Alert when the coverage confidence exceeds this.
  double confidence_alert = 0.999;

  /// Optional expected per-bucket probabilities for the chi-square (size
  /// must equal `buckets`; they are normalized). Empty selects the
  /// self-calibrating observed-support weighting. A rho-periodic deployment
  /// audits against its periodic target by supplying the bucketed target
  /// distribution here.
  std::vector<double> expected;

  /// Hard cap on tracked distinct points (memory bound on a hostile or
  /// misconfigured stream). Beyond it new points only feed the window
  /// statistic and the O(buckets) support weights, and `leakage.saturated`
  /// is raised.
  uint64_t max_points = 1 << 20;
};

/// Point-in-time view of every derived statistic (what the gauges publish).
struct LeakageVerdict {
  uint64_t observations = 0;  ///< Range starts observed (incl. repeats).
  uint64_t distinct = 0;      ///< Distinct start points seen.
  uint64_t largest_gap = 0;   ///< Longest never-observed circular arc.
  uint64_t second_gap = 0;    ///< Second-longest such arc.
  uint64_t gap_margin = 0;    ///< largest_gap - second_gap.
  /// The observed point one past the largest arc — the gap attack's offset
  /// estimate (in the audited value space; rank space: the offset itself,
  /// cipher space: Enc(0), i.e. it decrypts to plaintext 0).
  uint64_t offset_estimate = 0;
  /// 1 - P[a healthy uniform mix still shows this coverage deficit], via
  /// the binomial tail; 0 when `domain` is unset or coverage is complete.
  double confidence = 0.0;
  double chi2 = 0.0;           ///< Windowed chi-square vs expected.
  double chi2_critical = 0.0;  ///< Critical value at config.alpha.
  uint64_t window_fill = 0;    ///< Observations currently in the window.
  uint64_t out_of_space = 0;   ///< Starts >= space, skipped (see ObserveStart).
  bool alert = false;          ///< Combined verdict.
};

class LeakageAuditor {
 public:
  /// Validates the configuration. `registry` receives the leakage.* gauges
  /// and must outlive the auditor; nullptr publishes nowhere (pure
  /// in-memory use in tests and replays).
  static Result<std::unique_ptr<LeakageAuditor>> Create(
      const LeakageAuditConfig& config, MetricsRegistry* registry);

  /// Records one observed range start point. Starts >= config.space are
  /// counted under `leakage.out_of_space` and otherwise ignored — the value
  /// arrives straight off the wire, so a hostile or misconfigured client
  /// (e.g. an --audit-domain mismatch) must never abort the server.
  /// Thread-safe; O(log n) against the gap structure, O(1) for the window.
  void ObserveStart(uint64_t start) MOPE_EXCLUDES(mutex_);

  /// Recomputes the derived statistics and publishes them to the gauges.
  /// Called automatically every `kPublishEvery` observations; cheap enough
  /// (O(buckets)) to also call per batch.
  void Publish() MOPE_EXCLUDES(mutex_);

  /// Current statistics (also publishes, so gauges and verdict agree).
  LeakageVerdict Verdict() MOPE_EXCLUDES(mutex_);

  const LeakageAuditConfig& config() const { return config_; }

  /// Renders a human-readable verdict from a metrics snapshot (the sorted
  /// name/value pairs a stats endpoint serves) — this is what
  /// `mope_shell \leakage` prints, and it works identically whether the
  /// snapshot was read in-process or fetched over the wire. Returns a
  /// "auditor not enabled" message when no leakage.* entries are present.
  static std::string DescribeStats(
      const std::vector<std::pair<std::string, uint64_t>>& stats);

  /// Gauges are integers; fixed-point statistics are published in
  /// milli-units (chi2, confidence) under these names.
  static constexpr const char* kGaugeObservations = "leakage.observations";
  static constexpr const char* kGaugeDistinct = "leakage.distinct";
  static constexpr const char* kGaugeLargestGap = "leakage.gap.largest";
  static constexpr const char* kGaugeSecondGap = "leakage.gap.second";
  static constexpr const char* kGaugeGapMargin = "leakage.gap.margin";
  static constexpr const char* kGaugeOffsetEstimate =
      "leakage.gap.offset_estimate";
  static constexpr const char* kGaugeConfidenceMilli =
      "leakage.gap.confidence_milli";
  static constexpr const char* kGaugeChi2Milli =
      "leakage.uniformity.chi2_milli";
  static constexpr const char* kGaugeChi2CriticalMilli =
      "leakage.uniformity.chi2_critical_milli";
  static constexpr const char* kGaugeWindowFill = "leakage.uniformity.window";
  static constexpr const char* kGaugeAlert = "leakage.alert";
  static constexpr const char* kGaugeSaturated = "leakage.saturated";
  static constexpr const char* kGaugeOutOfSpace = "leakage.out_of_space";

 private:
  /// Publish cadence in observations (amortizes the O(buckets) recompute).
  static constexpr uint64_t kPublishEvery = 64;

  LeakageAuditor(const LeakageAuditConfig& config, MetricsRegistry* registry);

  /// Inserts a new distinct point into the gap structure.
  void InsertPointLocked(uint64_t x) MOPE_REQUIRES(mutex_);

  /// Derives the verdict from current state.
  LeakageVerdict ComputeLocked() const MOPE_REQUIRES(mutex_);

  void PublishLocked(const LeakageVerdict& v) MOPE_REQUIRES(mutex_);

  const LeakageAuditConfig config_;

  mutable Mutex mutex_{lock_rank::kLeakageAuditor};
  uint64_t observations_ MOPE_GUARDED_BY(mutex_) = 0;
  uint64_t out_of_space_ MOPE_GUARDED_BY(mutex_) = 0;
  bool saturated_ MOPE_GUARDED_BY(mutex_) = false;
  /// Last alert state logged, so alert transitions produce exactly one
  /// structured log line each way (edge-triggered, not level-triggered).
  bool alert_logged_ MOPE_GUARDED_BY(mutex_) = false;

  // --- Gap structure ------------------------------------------------------
  // Distinct observed points, plus all circular arcs between consecutive
  // points as (gap_length, successor_point) pairs. gap_length counts the
  // *never-observed* values strictly between two consecutive points, so it
  // matches attack::GapAttack::LongestGap on the same stream. A lone point
  // contributes one full-circle arc (space - 1, point).
  std::set<uint64_t> points_ MOPE_GUARDED_BY(mutex_);
  std::multiset<std::pair<uint64_t, uint64_t>> gaps_ MOPE_GUARDED_BY(mutex_);

  // --- Sliding window -----------------------------------------------------
  // Ring of bucket indices of the last `window` observations; counts live
  // in a common::Histogram so the chi-square reuses Histogram::ChiSquareVs.
  std::vector<uint32_t> ring_ MOPE_GUARDED_BY(mutex_);
  size_t ring_next_ MOPE_GUARDED_BY(mutex_) = 0;
  /// min(observations, window).
  uint64_t ring_count_ MOPE_GUARDED_BY(mutex_) = 0;
  Histogram window_hist_ MOPE_GUARDED_BY(mutex_);
  /// Distinct points per bucket (the self-calibrating expected masses).
  std::vector<uint64_t> support_ MOPE_GUARDED_BY(mutex_);

  // --- Published gauges (null when registry was null) ---------------------
  Gauge* g_observations_ = nullptr;
  Gauge* g_distinct_ = nullptr;
  Gauge* g_largest_ = nullptr;
  Gauge* g_second_ = nullptr;
  Gauge* g_margin_ = nullptr;
  Gauge* g_offset_ = nullptr;
  Gauge* g_confidence_ = nullptr;
  Gauge* g_chi2_ = nullptr;
  Gauge* g_chi2_critical_ = nullptr;
  Gauge* g_window_ = nullptr;
  Gauge* g_alert_ = nullptr;
  Gauge* g_saturated_ = nullptr;
  Gauge* g_out_of_space_ = nullptr;
};

}  // namespace mope::obs

#endif  // MOPE_OBS_LEAKAGE_H_
