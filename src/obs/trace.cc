#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"

namespace mope::obs {

namespace {

uint64_t NextTraceId() {
  // Process-wide, deterministic (no clock, no randomness): trace N of a run
  // is always trace N. Starts at 1 so 0 can mean "no trace" on the wire.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local Trace* t_current_trace = nullptr;

}  // namespace

Trace::Trace(std::string name, Clock* clock, uint64_t forced_id)
    : name_(std::move(name)),
      clock_(clock != nullptr ? clock : SystemClock()),
      trace_id_(forced_id != 0 ? forced_id : NextTraceId()) {}

uint32_t Trace::StartSpan(std::string span_name) {
  const uint64_t now = clock_->NowNanos();
  // Feed the crash flight recorder before taking the span lock; Record is
  // lock-free, so the ordering only matters for hygiene.
  if (FlightRecorder* recorder = FlightRecorder::Installed()) {
    recorder->Record(FlightRecorder::EventKind::kSpanBegin,
                     span_name.c_str(), trace_id_);
  }
  const MutexLock lock(&mutex_);
  Span span;
  span.name = std::move(span_name);
  span.parent = open_stack_.empty() ? 0 : open_stack_.back();
  span.start_ns = now;
  spans_.push_back(std::move(span));
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  open_stack_.push_back(id);
  return id;
}

void Trace::EndSpan(uint32_t id) {
  const uint64_t now = clock_->NowNanos();
  const MutexLock lock(&mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end_ns = now;
  if (FlightRecorder* recorder = FlightRecorder::Installed()) {
    // Lock-free record; legal while holding the trace mutex (rank 70).
    recorder->Record(FlightRecorder::EventKind::kSpanEnd,
                     spans_[id - 1].name.c_str(), trace_id_);
  }
  // Spans close LIFO in correct code; tolerate out-of-order ends by popping
  // through the target so the stack never wedges.
  while (!open_stack_.empty()) {
    const uint32_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == id) break;
  }
}

void Trace::IncrementCounter(const std::string& name, uint64_t n) {
  const MutexLock lock(&mutex_);
  counters_[name] += n;
}

std::vector<Span> Trace::spans() const {
  const MutexLock lock(&mutex_);
  return spans_;
}

std::map<std::string, uint64_t> Trace::counters() const {
  const MutexLock lock(&mutex_);
  return counters_;
}

size_t Trace::CountSpans(const std::string& span_name) const {
  const MutexLock lock(&mutex_);
  size_t n = 0;
  for (const Span& span : spans_) {
    if (span.name == span_name) ++n;
  }
  return n;
}

bool Trace::TimingsMonotone() const {
  const MutexLock lock(&mutex_);
  uint64_t last_sibling_start = 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (span.end_ns != 0 && span.end_ns < span.start_ns) return false;
    if (span.parent != 0) {
      const Span& parent = spans_[span.parent - 1];
      if (span.start_ns < parent.start_ns) return false;
      if (parent.end_ns != 0 && span.end_ns != 0 &&
          span.end_ns > parent.end_ns) {
        return false;
      }
    }
    // Spans are appended in start order by construction; verify anyway.
    if (span.start_ns < last_sibling_start &&
        i > 0 && span.parent == spans_[i - 1].parent) {
      return false;
    }
    last_sibling_start = span.start_ns;
  }
  return true;
}

std::string Trace::RenderTree() const {
  const MutexLock lock(&mutex_);
  std::string out =
      "trace " + std::to_string(trace_id_) + " \"" + name_ + "\"\n";
  // Depth of each span = depth(parent) + 1, computable in one pass because
  // parents always precede children.
  std::vector<int> depth(spans_.size(), 0);
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (span.parent != 0) depth[i] = depth[span.parent - 1] + 1;
    const uint64_t dur_ns =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    char line[160];
    std::snprintf(line, sizeof(line), "%*s%s  %.3fus\n", 2 * (depth[i] + 1),
                  "", span.name.c_str(), static_cast<double>(dur_ns) / 1000.0);
    out += line;
  }
  for (const auto& [name, value] : counters_) {
    out += "  #" + name + " = " + std::to_string(value) + "\n";
  }
  return out;
}

Trace* CurrentTrace() { return t_current_trace; }

uint64_t CurrentTraceId() {
  const Trace* trace = t_current_trace;
  return trace != nullptr ? trace->trace_id() : 0;
}

ScopedTraceActivation::ScopedTraceActivation(Trace* trace)
    : previous_(t_current_trace) {
  t_current_trace = trace;
}

ScopedTraceActivation::~ScopedTraceActivation() {
  t_current_trace = previous_;
}

}  // namespace mope::obs
