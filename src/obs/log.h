#ifndef MOPE_OBS_LOG_H_
#define MOPE_OBS_LOG_H_

/// \file log.h
/// Structured, leveled logging for the daemon and the library underneath it.
///
/// Every operational message in the tree goes through one Logger: a single
/// sink behind a ranked mutex (lock_rank::kLogSink) so startup messages,
/// worker-thread connection events, and storage recovery lines never
/// interleave mid-line; per-subsystem severity thresholds so an operator can
/// turn `net` up to debug without drowning in `storage`; a token-bucket rate
/// limiter so a misbehaving client cannot turn the log into a DoS vector;
/// and an injectable obs::Clock so tests assert exact output byte-for-byte.
///
/// Events are structured, not format strings. A LogEvent is a builder:
///
///     MOPE_LOG(kInfo, "storage", "recovered")
///         .Arg("tables", tables.size())
///         .Arg("crash_recovery", true);
///
/// renders (text sink) as one line:
///
///     ts_ns=12000 level=info subsystem=storage event=recovered
///         tables=3 crash_recovery=true
///
/// or, with the JSON-lines sink, one JSON object per line with the same
/// keys. If a trace is active on the calling thread (obs/trace.h) the event
/// automatically carries `trace=<id>`, which is what lets the slow-query log
/// line be joined against a Chrome-trace export.
///
/// The logger's sink rank (75) sits above every engine/storage/net mutex and
/// below only the metrics registry, so it is legal to log while holding the
/// dispatcher (40), auditor (50), pool (52), or WAL (54) locks — and the
/// logger itself may bump drop counters in a registry.
///
/// Linter rule R11 makes this the only place (outside usage-help text in
/// tools/) allowed to call fprintf-family output functions.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lower-case level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (case-sensitive). Returns true and
/// sets *out on success.
bool ParseLogLevel(std::string_view name, LogLevel* out);

enum class LogFormat {
  kText,  ///< ts_ns=... level=... subsystem=... event=... k=v... [trace=N]
  kJson,  ///< one JSON object per line, same keys
};

class LogEvent;

/// A leveled, rate-limited, multi-format logger with one serialized sink.
///
/// Thread-safe. Configuration setters are expected at startup (they take the
/// sink lock, so late reconfiguration is safe too, just unusual).
class Logger {
 public:
  /// A sink receives one fully rendered line (no trailing newline) per
  /// event. The logger serializes calls under its sink lock.
  using Sink = void (*)(void* user_data, const std::string& line);

  Logger();

  /// The process-wide logger. Leaked singleton: valid from first use to
  /// process exit, safe during static destruction.
  static Logger* Default();

  // --- Configuration ------------------------------------------------------

  /// Global severity floor (default kInfo).
  void SetMinLevel(LogLevel level) MOPE_EXCLUDES(mutex_);

  /// Per-subsystem override; wins over the global floor for that subsystem.
  void SetSubsystemLevel(const std::string& subsystem, LogLevel level)
      MOPE_EXCLUDES(mutex_);
  /// Removes every per-subsystem override.
  void ClearSubsystemLevels() MOPE_EXCLUDES(mutex_);

  void SetFormat(LogFormat format) MOPE_EXCLUDES(mutex_);

  /// Clock used for the ts_ns field and for refilling the rate limiter.
  /// nullptr restores SystemClock(). The clock must outlive the logger.
  void SetClock(Clock* clock) MOPE_EXCLUDES(mutex_);

  /// Replaces the output sink. nullptr restores the default stderr sink.
  /// `user_data` is passed through to every call.
  void SetSink(Sink sink, void* user_data) MOPE_EXCLUDES(mutex_);

  /// Token-bucket rate limit across all events: up to `burst` events
  /// instantly, refilled at `rate_per_sec`. rate_per_sec == 0 disables
  /// limiting (the default). Dropped events increment the `obs.log.dropped`
  /// counter in the registry passed to SetDropCounterRegistry (if any) and
  /// are counted in dropped_total().
  void SetRateLimit(double rate_per_sec, double burst) MOPE_EXCLUDES(mutex_);

  /// Registry that receives the `obs.log.dropped` counter. May be nullptr.
  void SetDropCounterRegistry(MetricsRegistry* registry) MOPE_EXCLUDES(mutex_);

  // --- Introspection ------------------------------------------------------

  /// True if an event at (level, subsystem) would be emitted (severity check
  /// only; the rate limiter is applied at emission time).
  bool ShouldLog(LogLevel level, std::string_view subsystem) const
      MOPE_EXCLUDES(mutex_);

  /// Events dropped by the rate limiter since construction.
  uint64_t dropped_total() const MOPE_EXCLUDES(mutex_);

  /// Events emitted to the sink since construction.
  uint64_t emitted_total() const MOPE_EXCLUDES(mutex_);

 private:
  friend class LogEvent;

  /// Renders and emits one event; called by LogEvent's destructor. The
  /// severity check already passed.
  void Emit(LogLevel level, const char* subsystem, const char* event,
            uint64_t trace_id,
            const std::vector<std::pair<std::string, std::string>>& fields,
            const std::vector<bool>& field_is_string) MOPE_EXCLUDES(mutex_);

  bool RateAdmitLocked(uint64_t now_ns) MOPE_REQUIRES(mutex_);

  mutable Mutex mutex_{lock_rank::kLogSink};
  LogLevel min_level_ MOPE_GUARDED_BY(mutex_) = LogLevel::kInfo;
  std::map<std::string, LogLevel, std::less<>> subsystem_levels_
      MOPE_GUARDED_BY(mutex_);
  LogFormat format_ MOPE_GUARDED_BY(mutex_) = LogFormat::kText;
  Clock* clock_ MOPE_GUARDED_BY(mutex_);
  Sink sink_ MOPE_GUARDED_BY(mutex_);
  void* sink_user_data_ MOPE_GUARDED_BY(mutex_) = nullptr;

  // Token bucket. tokens_ is allowed to go fractional; refill is computed
  // from the injected clock so tests drive it deterministically.
  double rate_per_sec_ MOPE_GUARDED_BY(mutex_) = 0.0;
  double burst_ MOPE_GUARDED_BY(mutex_) = 0.0;
  double tokens_ MOPE_GUARDED_BY(mutex_) = 0.0;
  uint64_t last_refill_ns_ MOPE_GUARDED_BY(mutex_) = 0;

  uint64_t dropped_total_ MOPE_GUARDED_BY(mutex_) = 0;
  uint64_t emitted_total_ MOPE_GUARDED_BY(mutex_) = 0;
  MetricsRegistry* drop_registry_ MOPE_GUARDED_BY(mutex_) = nullptr;
};

/// Builder for one structured event. Constructed by MOPE_LOG; the event is
/// rendered and emitted when the temporary dies at the end of the statement.
/// Captures the active trace id at construction.
///
/// If the severity check fails at construction the builder is inert: Arg()
/// calls are no-ops and nothing is emitted, so disabled log statements cost
/// two comparisons and no allocation for the arguments.
class LogEvent {
 public:
  LogEvent(Logger* logger, LogLevel level, const char* subsystem,
           const char* event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Arg(const char* key, const std::string& value);
  LogEvent& Arg(const char* key, const char* value);
  LogEvent& Arg(const char* key, std::string_view value);
  LogEvent& Arg(const char* key, bool value);
  LogEvent& Arg(const char* key, double value);
  LogEvent& Arg(const char* key, uint64_t value);
  LogEvent& Arg(const char* key, int64_t value);
  LogEvent& Arg(const char* key, uint32_t value) {
    return Arg(key, static_cast<uint64_t>(value));
  }
  LogEvent& Arg(const char* key, int value) {
    return Arg(key, static_cast<int64_t>(value));
  }

 private:
  Logger* logger_;  ///< nullptr when the event was filtered at construction.
  LogLevel level_;
  const char* subsystem_;
  const char* event_;
  uint64_t trace_id_;
  std::vector<std::pair<std::string, std::string>> fields_;
  /// Parallel to fields_: whether the value needs quoting in JSON output.
  std::vector<bool> field_is_string_;
};

}  // namespace mope::obs

/// Logs one structured event to the default logger:
///   MOPE_LOG(kInfo, "net", "listening").Arg("port", port);
/// Severity names are the LogLevel enumerators (kDebug/kInfo/kWarn/kError).
#define MOPE_LOG(severity, subsystem, event)                      \
  ::mope::obs::LogEvent(::mope::obs::Logger::Default(),           \
                        ::mope::obs::LogLevel::severity, (subsystem), (event))

#endif  // MOPE_OBS_LOG_H_
