#ifndef MOPE_OBS_REGISTRY_H_
#define MOPE_OBS_REGISTRY_H_

/// \file registry.h
/// The metrics registry: named counters, gauges and exponential-bucket
/// histograms, cheap enough for the hot paths they instrument.
///
/// Design rules:
///   - Lookup once, update forever: GetCounter/GetGauge/GetHistogram take a
///     registry lock and return a pointer that stays valid for the
///     registry's lifetime. Hot paths cache the pointer at construction and
///     pay exactly one relaxed atomic RMW per update — no lock, no string.
///   - Every metric is readable while being written (all storage is atomic),
///     so a live stats endpoint can serve a consistent-enough snapshot from
///     under a running server without stalling it.
///   - Two exposition formats: a Prometheus-style text rendering (dots in
///     metric names become underscores) and a JSON dump; plus Snapshot(),
///     the flat (name, value) list the wire-level StatsReply carries.
///
/// There is one process-global default registry (Registry()) for code with
/// no better home, but the interesting actors own their own: each
/// engine::DbServer carries the registry its stats endpoint serves, and each
/// proxy::MopeSystem carries the client-side registry — which is what lets
/// one test process host both sides of the wire without the counters
/// bleeding into each other.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/thread_annotations.h"

namespace mope::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (queue depths, open sessions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed exponential-bucket histogram over non-negative integer samples
/// (latencies in nanoseconds, recursion depths, frame sizes — the unit is
/// the caller's). Bucket i counts samples <= 2^i; one extra bucket counts
/// the overflow. Observation is one relaxed atomic add on the bucket plus
/// two for count/sum — constant-time, lock-free, allocation-free.
class ExpHistogram {
 public:
  /// Buckets cover 2^0 .. 2^kMaxPow2 with one overflow bucket on top.
  static constexpr int kMaxPow2 = 40;  // ~1.1e12: 18 minutes in ns
  static constexpr int kNumBuckets = kMaxPow2 + 2;

  void Observe(uint64_t sample) {
    buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket i (the overflow bucket has none and
  /// reports UINT64_MAX).
  static uint64_t BucketBound(int i) {
    return i > kMaxPow2 ? ~uint64_t{0} : (uint64_t{1} << i);
  }
  static int BucketIndex(uint64_t sample);

  /// Smallest bucket bound covering at least `q` (in [0,1]) of the mass;
  /// 0 when empty. A coarse quantile for dashboards, exact per bucket.
  uint64_t ApproxQuantile(double q) const;

  /// Quantile with linear interpolation inside the winning bucket (between
  /// its power-of-two lower and upper bounds). Still approximate — exact
  /// only at bucket boundaries — but monotone in q and far smoother than
  /// ApproxQuantile's bound snapping; this is what the p50/p95/p99 series
  /// in snapshots and expositions report. The overflow bucket has no upper
  /// bound and reports its lower bound.
  uint64_t QuantileInterpolated(double q) const;

  void Reset();

  /// Bridges into the repo's analysis type: a common::Histogram with one bin
  /// per bucket (bin i = count of bucket i), so the existing rendering and
  /// distribution tooling applies to latency data too.
  mope::Histogram ToHistogram() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// How a flattened sample behaves over time — what a consumer (the
/// time-series sampler, an alert rule) may assume about consecutive reads.
enum class MetricKind : uint8_t {
  kCounter,  ///< monotone non-decreasing; deltas/rates are meaningful
  kGauge,    ///< signed level, bit-cast to u64; compare as int64_t
  kDerived,  ///< recomputed each read (histogram count/sum/quantiles)
};

const char* MetricKindName(MetricKind kind);

/// One flattened sample with its behavioural kind attached. `.count`/`.sum`
/// of a histogram are kDerived-but-monotone; quantiles are kDerived levels.
struct TypedSample {
  std::string name;
  MetricKind kind;
  uint64_t value;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned pointer is stable for the registry's
  /// lifetime; callers on hot paths cache it.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ExpHistogram* GetHistogram(const std::string& name);

  /// Every metric flattened to (name, value) pairs in name order:
  /// counters as-is, gauges bit-cast to u64, histograms expanded to
  /// `<name>.count`, `<name>.sum` and `<name>.le.<bound>` per non-empty
  /// bucket. This is the wire payload of a StatsReply.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Snapshot variant for temporal consumers (the time-series sampler):
  /// same name order, but each sample carries its MetricKind and the
  /// per-bucket `.le.<bound>` series is skipped — a sampler wants the
  /// derived count/sum/p50/p95/p99, not 42 bucket series per histogram.
  /// Histogram `.count`/`.sum` report kCounter (they are monotone, so
  /// delta/rate handling applies); quantiles report kDerived (unsigned
  /// levels, recomputed each read).
  std::vector<TypedSample> TypedSnapshot() const;

  /// Prometheus-style text exposition ('.' -> '_' in names; histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`).
  std::string RenderText() const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count": c, "sum": s, "buckets": {bound: n}}}}.
  std::string RenderJson() const;

  /// Zeroes every metric (pointers stay valid). Test/bench convenience.
  void ResetAll();

 private:
  /// Guards the maps, never the metric values (those are atomic). Highest
  /// rank in the tree: the registry is a leaf every layer may call into.
  mutable Mutex mutex_{lock_rank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MOPE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MOPE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<ExpHistogram>> histograms_
      MOPE_GUARDED_BY(mutex_);
};

/// The process-global default registry, for instrumented code constructed
/// without an explicit registry (standalone schemes, ad-hoc tools).
MetricsRegistry* Registry();

}  // namespace mope::obs

#endif  // MOPE_OBS_REGISTRY_H_
