#ifndef MOPE_OBS_TRACE_EXPORT_H_
#define MOPE_OBS_TRACE_EXPORT_H_

/// \file trace_export.h
/// Chrome trace-event JSON export for Trace span trees, loadable in
/// chrome://tracing and Perfetto (ui.perfetto.dev).
///
/// The emitted document follows the Trace Event Format's "JSON object"
/// flavor: {"displayTimeUnit": "ms", "traceEvents": [...]} where every span
/// becomes one complete ("ph": "X") event with microsecond ts/dur, nesting
/// reconstructed by the viewer from timestamps on a single thread track, a
/// metadata ("ph": "M") event names the track after the trace, and each
/// per-trace counter becomes one counter ("ph": "C") event at the trace's
/// end so the viewer shows final totals.
///
/// Output is deterministic: events are emitted in span-vector order (which
/// is start order), keys in a fixed order, and nothing but the trace's own
/// clock readings enters the document — a ManualClock therefore produces
/// byte-identical files run to run (the golden-file test relies on it).

#include <string>

#include "obs/trace.h"

namespace mope::obs {

/// Renders `trace` as a Chrome trace-event JSON document. `pid`/`tid`
/// identify the process/thread track the events land on (the defaults put
/// everything on one track, which is right for a single query's tree).
std::string ExportChromeTrace(const Trace& trace, int pid = 1, int tid = 1);

}  // namespace mope::obs

#endif  // MOPE_OBS_TRACE_EXPORT_H_
