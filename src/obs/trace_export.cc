#include "obs/trace_export.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace mope::obs {

namespace {

/// JSON string escaping for the small charset that can appear in span and
/// counter names (they are C string literals in practice, but the format
/// must stay valid for anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExportChromeTrace(const Trace& trace, int pid, int tid) {
  const std::vector<Span> spans = trace.spans();
  const std::map<std::string, uint64_t> counters = trace.counters();

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Track metadata: name the (pid, tid) lane after the trace.
  out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
      << JsonEscape(trace.name()) << "\"}}";

  // Spans as complete events; ts/dur in integer microseconds (the format's
  // native unit). An open span (end_ns == 0) exports with dur 0 — visible
  // as an instant at its start rather than silently dropped.
  uint64_t last_end_us = 0;
  for (const Span& span : spans) {
    const uint64_t ts_us = span.start_ns / 1000;
    const uint64_t end_us = span.end_ns / 1000;
    const uint64_t dur_us = end_us > ts_us ? end_us - ts_us : 0;
    if (end_us > last_end_us) last_end_us = end_us;
    out << ",{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << JsonEscape(span.name) << "\",\"ts\":" << ts_us
        << ",\"dur\":" << dur_us << "}";
  }

  // Counters as one final sample each, so the viewer's counter track shows
  // the per-trace totals at the point the query finished.
  for (const auto& [name, value] : counters) {
    out << ",{\"ph\":\"C\",\"pid\":" << pid << ",\"name\":\""
        << JsonEscape(name) << "\",\"ts\":" << last_end_us
        << ",\"args\":{\"value\":" << value << "}}";
  }

  // The trace id rides along so an exported file can be joined against the
  // structured log line (`trace=<id>`) that pointed at it.
  out << "],\"otherData\":{\"trace_id\":\"" << trace.trace_id() << "\"}}";
  return out.str();
}

}  // namespace mope::obs
