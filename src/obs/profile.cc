#include "obs/profile.h"

namespace mope::obs {

void ProfileCollector::Add(const std::string& name, uint64_t n) {
  const MutexLock lock(&mutex_);
  entries_[name] += n;
}

void ProfileCollector::Set(const std::string& name, uint64_t value) {
  const MutexLock lock(&mutex_);
  entries_[name] = value;
}

std::map<std::string, uint64_t> ProfileCollector::entries() const {
  const MutexLock lock(&mutex_);
  return entries_;
}

uint64_t ProfileCollector::Value(const std::string& name) const {
  const MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second;
}

namespace {
thread_local ProfileCollector* g_current_collector = nullptr;
}  // namespace

ProfileCollector* CurrentProfileCollector() { return g_current_collector; }

ScopedProfileActivation::ScopedProfileActivation(ProfileCollector* collector)
    : previous_(g_current_collector) {
  g_current_collector = collector;
}

ScopedProfileActivation::~ScopedProfileActivation() {
  g_current_collector = previous_;
}

}  // namespace mope::obs
