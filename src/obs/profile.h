#ifndef MOPE_OBS_PROFILE_H_
#define MOPE_OBS_PROFILE_H_

/// \file profile.h
/// Per-query resource profiles: named uint64 entries collected across the
/// trust boundary.
///
/// A ProfileCollector is activated around one query (EXPLAIN ANALYZE in the
/// proxy's SQL session) the same way a Trace is: thread-locally, so the
/// layers underneath contribute without signature plumbing. The wire layer
/// checks CurrentProfileCollector() to decide whether to request a profile
/// extension on outgoing v2 frames, and merges the server's reply entries
/// (counter deltas the dispatcher snapshotted around the request) back into
/// the collector. The embedded path (DirectConnection) snapshots the same
/// counters around its direct calls, so a profile is field-identical whether
/// the server is in-process or across TCP.
///
/// Entries merge by name (values add), so multi-request queries — the
/// proxy's per-segment fetches — accumulate naturally.

#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"

namespace mope::obs {

class ProfileCollector {
 public:
  ProfileCollector() = default;

  /// Adds `n` to the named entry (creating it at zero).
  void Add(const std::string& name, uint64_t n);

  /// Overwrites the named entry (for ids and gauges, not deltas).
  void Set(const std::string& name, uint64_t value);

  /// Snapshot of all entries, name-ordered.
  std::map<std::string, uint64_t> entries() const;

  /// Value of one entry; 0 when absent.
  uint64_t Value(const std::string& name) const;

 private:
  mutable Mutex mutex_{lock_rank::kTrace};
  std::map<std::string, uint64_t> entries_ MOPE_GUARDED_BY(mutex_);
};

/// The collector active on this thread, or nullptr when profiling is off.
ProfileCollector* CurrentProfileCollector();

/// Installs `collector` as the thread's active profile sink for the scope's
/// lifetime and restores the previous one on destruction.
class ScopedProfileActivation {
 public:
  explicit ScopedProfileActivation(ProfileCollector* collector);
  ~ScopedProfileActivation();

  ScopedProfileActivation(const ScopedProfileActivation&) = delete;
  ScopedProfileActivation& operator=(const ScopedProfileActivation&) = delete;

 private:
  ProfileCollector* previous_;
};

/// Adds to the active collector; no-op (one branch) when profiling is off.
inline void BumpProfile(const char* name, uint64_t n) {
  ProfileCollector* collector = CurrentProfileCollector();
  if (collector != nullptr) collector->Add(name, n);
}

}  // namespace mope::obs

#endif  // MOPE_OBS_PROFILE_H_
