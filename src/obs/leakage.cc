#include "obs/leakage.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/math_util.h"
#include "obs/log.h"

namespace mope::obs {

namespace {

constexpr double kMilli = 1000.0;

int64_t ToMilli(double x) {
  return static_cast<int64_t>(std::llround(x * kMilli));
}

}  // namespace

Result<std::unique_ptr<LeakageAuditor>> LeakageAuditor::Create(
    const LeakageAuditConfig& config, MetricsRegistry* registry) {
  if (config.space < 2) {
    return Status::InvalidArgument("leakage audit: space must be >= 2");
  }
  if (config.buckets < 2 || config.buckets > config.space) {
    return Status::InvalidArgument(
        "leakage audit: buckets must be in [2, space]");
  }
  if (config.window < config.buckets) {
    return Status::InvalidArgument(
        "leakage audit: window must cover at least one sample per bucket");
  }
  if (config.alpha <= 0.0 || config.alpha >= 1.0) {
    return Status::InvalidArgument("leakage audit: alpha must be in (0, 1)");
  }
  if (!config.expected.empty()) {
    if (config.expected.size() != config.buckets) {
      return Status::InvalidArgument(
          "leakage audit: expected size must equal buckets");
    }
    double sum = 0.0;
    for (double p : config.expected) {
      if (p < 0.0) {
        return Status::InvalidArgument(
            "leakage audit: expected probabilities must be non-negative");
      }
      sum += p;
    }
    if (sum <= 0.0) {
      return Status::InvalidArgument(
          "leakage audit: expected probabilities must not all be zero");
    }
  }
  if (config.max_points < 2) {
    return Status::InvalidArgument("leakage audit: max_points must be >= 2");
  }
  return std::unique_ptr<LeakageAuditor>(new LeakageAuditor(config, registry));
}

LeakageAuditor::LeakageAuditor(const LeakageAuditConfig& config,
                               MetricsRegistry* registry)
    : config_(config),
      ring_(config.window, 0),
      window_hist_(config.buckets),
      support_(config.buckets, 0) {
  if (registry != nullptr) {
    g_observations_ = registry->GetGauge(kGaugeObservations);
    g_distinct_ = registry->GetGauge(kGaugeDistinct);
    g_largest_ = registry->GetGauge(kGaugeLargestGap);
    g_second_ = registry->GetGauge(kGaugeSecondGap);
    g_margin_ = registry->GetGauge(kGaugeGapMargin);
    g_offset_ = registry->GetGauge(kGaugeOffsetEstimate);
    g_confidence_ = registry->GetGauge(kGaugeConfidenceMilli);
    g_chi2_ = registry->GetGauge(kGaugeChi2Milli);
    g_chi2_critical_ = registry->GetGauge(kGaugeChi2CriticalMilli);
    g_window_ = registry->GetGauge(kGaugeWindowFill);
    g_alert_ = registry->GetGauge(kGaugeAlert);
    g_saturated_ = registry->GetGauge(kGaugeSaturated);
    g_out_of_space_ = registry->GetGauge(kGaugeOutOfSpace);
  }
}

void LeakageAuditor::InsertPointLocked(uint64_t x) {
  // Splice x into the circular arc between its neighbours: remove the arc
  // (pred, succ) it lands in, insert (pred, x) and (x, succ). Arc lengths
  // count the never-observed values strictly between endpoints, and each arc
  // is keyed by its *successor* point — the first observed value past the
  // gap, which for the largest gap is the gap attack's offset estimate.
  if (points_.empty()) {
    points_.insert(x);
    gaps_.insert({config_.space - 1, x});
    return;
  }
  auto [it, inserted] = points_.insert(x);
  if (!inserted) return;

  auto succ_it = std::next(it);
  if (succ_it == points_.end()) succ_it = points_.begin();
  auto pred_it = (it == points_.begin()) ? std::prev(points_.end())
                                         : std::prev(it);
  const uint64_t pred = *pred_it;
  const uint64_t succ = *succ_it;

  // With one prior point pred == succ and the old arc is the full circle
  // (length space - 1), which the formula below yields directly.
  // Length of the old arc (pred, succ): values strictly between, circularly.
  const uint64_t old_len = (succ + config_.space - pred - 1) % config_.space;
  auto old_arc = gaps_.find({old_len, succ});
  MOPE_CHECK(old_arc != gaps_.end(), "leakage audit: gap structure corrupt");
  gaps_.erase(old_arc);
  const uint64_t left_len = (x + config_.space - pred - 1) % config_.space;
  const uint64_t right_len = (succ + config_.space - x - 1) % config_.space;
  gaps_.insert({left_len, x});
  gaps_.insert({right_len, succ});
}

void LeakageAuditor::ObserveStart(uint64_t start) {
  const MutexLock lock(&mutex_);
  if (start >= config_.space) {
    // Wire-controlled value outside the audited space (hostile frame, or a
    // client/server --audit-domain mismatch): count it and move on — a
    // remote peer must never be able to abort the server.
    ++out_of_space_;
    if (g_out_of_space_ != nullptr) {
      g_out_of_space_->Set(static_cast<int64_t>(out_of_space_));
    }
    return;
  }
  ++observations_;

  // 128-bit intermediate: start * buckets overflows u64 for wide ciphertext
  // spaces.
  const uint32_t bucket = static_cast<uint32_t>(
      static_cast<unsigned __int128>(start) * config_.buckets / config_.space);

  if (points_.size() < config_.max_points || points_.count(start) != 0) {
    const size_t before = points_.size();
    InsertPointLocked(start);
    if (points_.size() != before) {
      // New distinct point: extend the self-calibrating support weights.
      support_[bucket] += 1;
    }
  } else {
    saturated_ = true;
    // The point cap dropped a new distinct start, but it still enters the
    // window below — keep its bucket's support weight growing so no windowed
    // sample ever sits in a zero-expected bucket (which would pin the
    // chi-square at the infinite sentinel). Repeats of a dropped start
    // over-weight its bucket slightly; acceptable in the saturated regime.
    support_[bucket] += 1;
  }

  // Sliding window: evict the bucket id falling out, admit the new one.
  if (ring_count_ == config_.window) {
    window_hist_.Remove(ring_[ring_next_]);
  } else {
    ++ring_count_;
  }
  ring_[ring_next_] = bucket;
  ring_next_ = (ring_next_ + 1) % config_.window;
  window_hist_.Add(bucket);

  if (observations_ % kPublishEvery == 0) {
    PublishLocked(ComputeLocked());
  }
}

LeakageVerdict LeakageAuditor::ComputeLocked() const {
  LeakageVerdict v;
  v.observations = observations_;
  v.distinct = points_.size();
  v.window_fill = ring_count_;
  v.out_of_space = out_of_space_;

  if (!gaps_.empty()) {
    auto it = gaps_.rbegin();
    v.largest_gap = it->first;
    v.offset_estimate = it->second;
    if (gaps_.size() > 1) {
      ++it;
      v.second_gap = it->first;
    }
    v.gap_margin = v.largest_gap - v.second_gap;
  }

  // Binomial-tail coverage confidence. Under a healthy mix each of the M
  // plaintext start values is queried with probability ~1/M per observation,
  // so after n observations the count X_s of hits on any fixed start s is
  // Bin(n, 1/M) and P[X_s = 0] = exp(LogBinomialTail(n, 1/M, 0)). A union
  // bound over the (domain - distinct) still-unseen values gives
  //   P[coverage deficit >= current] <= (M - D) * P[X_s = 0],
  // and the confidence that the mix is NOT healthy is one minus that. The
  // attacker's certainty grows exactly as this tends to 1 (Section 5's
  // "expected queries to full coverage" in online form).
  if (config_.domain > 1 && observations_ >= config_.min_observations) {
    const uint64_t unseen =
        config_.domain > v.distinct ? config_.domain - v.distinct : 0;
    if (unseen > 0) {
      const double log_p0 = LogBinomialTail(
          observations_, 1.0 / static_cast<double>(config_.domain), 0);
      const double miss_prob = std::min(
          1.0, static_cast<double>(unseen) * std::exp(log_p0));
      v.confidence = 1.0 - miss_prob;
    }
  }

  // Windowed chi-square. Expected masses: explicit target if configured,
  // else the observed support (distinct points per bucket) — which matches
  // the uneven ciphertext spacing a correct OPE induces, so a healthy
  // uniform-over-starts mix scores ~df while a skewed sampler inflates it.
  std::vector<double> expected;
  if (!config_.expected.empty()) {
    expected = config_.expected;
  } else {
    expected.assign(support_.begin(), support_.end());
  }
  double mass = 0.0;
  for (double e : expected) mass += e;
  if (mass > 0.0 && ring_count_ >= config_.buckets) {
    for (double& e : expected) e /= mass;
    // Bins the support has never touched carry expected 0; ChiSquareVs
    // treats observed-there as infinite. With the self-calibrating weights
    // that cannot happen — every windowed sample grew its own bucket's
    // support, including post-saturation drops (see ObserveStart) — so the
    // sentinel below only fires for an explicit target, where observed mass
    // in a zero-probability bucket is a genuine alarm.
    v.chi2 = window_hist_.ChiSquareVs(expected);
    if (!std::isfinite(v.chi2)) {
      v.chi2 = 1e9;  // publishable sentinel for "observed mass where target is 0"
    }
    v.chi2_critical = ChiSquareCriticalValue(
        static_cast<double>(config_.buckets - 1), config_.alpha);
  }

  v.alert = observations_ >= config_.min_observations &&
            ((v.chi2_critical > 0.0 && v.chi2 > v.chi2_critical) ||
             (v.confidence > config_.confidence_alert));
  return v;
}

void LeakageAuditor::PublishLocked(const LeakageVerdict& v) {
  // Edge-triggered alert log: one line when the verdict flips, not one per
  // publish (rank-legal: kLeakageAuditor < kLogSink).
  if (v.alert != alert_logged_) {
    alert_logged_ = v.alert;
    if (v.alert) {
      MOPE_LOG(kWarn, "leakage", "alert_raised")
          .Arg("observations", v.observations)
          .Arg("distinct", v.distinct)
          .Arg("chi2_milli", static_cast<uint64_t>(ToMilli(
                                 std::min(v.chi2, 1e15))))
          .Arg("confidence_milli",
               static_cast<uint64_t>(ToMilli(v.confidence)))
          .Arg("offset_estimate", v.offset_estimate);
    } else {
      MOPE_LOG(kInfo, "leakage", "alert_cleared")
          .Arg("observations", v.observations);
    }
  }
  if (g_observations_ == nullptr) return;
  g_observations_->Set(static_cast<int64_t>(v.observations));
  g_distinct_->Set(static_cast<int64_t>(v.distinct));
  g_largest_->Set(static_cast<int64_t>(v.largest_gap));
  g_second_->Set(static_cast<int64_t>(v.second_gap));
  g_margin_->Set(static_cast<int64_t>(v.gap_margin));
  g_offset_->Set(static_cast<int64_t>(v.offset_estimate));
  g_confidence_->Set(ToMilli(v.confidence));
  g_chi2_->Set(ToMilli(std::min(v.chi2, 1e15)));
  g_chi2_critical_->Set(ToMilli(v.chi2_critical));
  g_window_->Set(static_cast<int64_t>(v.window_fill));
  g_alert_->Set(v.alert ? 1 : 0);
  g_saturated_->Set(saturated_ ? 1 : 0);
  g_out_of_space_->Set(static_cast<int64_t>(v.out_of_space));
}

void LeakageAuditor::Publish() {
  const MutexLock lock(&mutex_);
  PublishLocked(ComputeLocked());
}

LeakageVerdict LeakageAuditor::Verdict() {
  const MutexLock lock(&mutex_);
  LeakageVerdict v = ComputeLocked();
  PublishLocked(v);
  return v;
}

std::string LeakageAuditor::DescribeStats(
    const std::vector<std::pair<std::string, uint64_t>>& stats) {
  // The snapshot bit-casts gauges to u64; everything leakage.* publishes is
  // non-negative, so plain reads are safe.
  auto find = [&stats](const char* name, uint64_t* out) {
    for (const auto& [k, val] : stats) {
      if (k == name) {
        *out = val;
        return true;
      }
    }
    return false;
  };
  uint64_t observations = 0;
  if (!find(kGaugeObservations, &observations)) {
    return "leakage auditor not enabled on this server "
           "(start it with --audit or EnableLeakageAudit)\n";
  }
  uint64_t distinct = 0, largest = 0, second = 0, margin = 0, offset = 0;
  uint64_t confidence_milli = 0, chi2_milli = 0, chi2_crit_milli = 0;
  uint64_t window = 0, alert = 0, saturated = 0, out_of_space = 0;
  find(kGaugeDistinct, &distinct);
  find(kGaugeLargestGap, &largest);
  find(kGaugeSecondGap, &second);
  find(kGaugeGapMargin, &margin);
  find(kGaugeOffsetEstimate, &offset);
  find(kGaugeConfidenceMilli, &confidence_milli);
  find(kGaugeChi2Milli, &chi2_milli);
  find(kGaugeChi2CriticalMilli, &chi2_crit_milli);
  find(kGaugeWindowFill, &window);
  find(kGaugeAlert, &alert);
  find(kGaugeSaturated, &saturated);
  find(kGaugeOutOfSpace, &out_of_space);

  const double confidence = static_cast<double>(confidence_milli) / kMilli;
  const double chi2 = static_cast<double>(chi2_milli) / kMilli;
  const double chi2_crit = static_cast<double>(chi2_crit_milli) / kMilli;

  std::ostringstream out;
  out << "live leakage audit\n"
      << "  observations        " << observations << "  (distinct starts "
      << distinct << (saturated != 0 ? ", SATURATED" : "") << ")\n"
      << "  largest gap         " << largest << "  (second " << second
      << ", margin " << margin << ")\n"
      << "  offset estimate     " << offset
      << "  <- ciphertext one past the largest gap; decrypts to plaintext 0 "
         "if the attack has converged\n";
  if (out_of_space != 0) {
    out << "  out-of-space starts " << out_of_space
        << "  <- skipped; check the client/server audit domains agree\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  gap confidence      %.3f\n", confidence);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  window chi2         %.3f  (critical %.3f, window %llu)\n",
                chi2, chi2_crit,
                static_cast<unsigned long long>(window));
  out << buf;
  if (alert != 0) {
    out << "  verdict             ALERT: perceived query distribution is "
           "distinguishable from the target mix.\n"
        << "                      An adversary observing this stream can "
           "estimate the secret offset; rotate keys\n"
        << "                      and check the fake-query sampler "
           "(proxy mix.* gauges) before trusting MOPE secrecy.\n";
  } else {
    out << "  verdict             ok: no distinguishable deviation from the "
           "target mix at the configured significance.\n"
        << "                      (Absence of an alert bounds this monitor's "
           "power, not every adversary's.)\n";
  }
  return out.str();
}

}  // namespace mope::obs
