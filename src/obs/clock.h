#ifndef MOPE_OBS_CLOCK_H_
#define MOPE_OBS_CLOCK_H_

/// \file clock.h
/// The injectable clock behind every timing measurement in the tree.
///
/// The experiment code must stay bit-deterministic from its seed (linter
/// rule R2), yet the observability layer needs real durations in production.
/// The reconciliation is injection: everything that timestamps — trace
/// spans, latency histograms, bench stopwatches — reads time through this
/// interface. Production passes SystemClock() (monotonic, wall-backed);
/// tests pass a ManualClock whose time moves only when the test says so, so
/// span trees and latency buckets are exactly reproducible.
///
/// clock.cc is the only file in the repository allowed to touch
/// std::chrono::steady_clock / system_clock (linter rule R7).

#include <atomic>
#include <cstdint>

namespace mope::obs {

/// A monotonic nanosecond clock. Implementations must be thread-safe and
/// non-decreasing across calls observed by one thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary (per-clock) epoch. Monotone.
  virtual uint64_t NowNanos() const = 0;

  double NowMillis() const { return static_cast<double>(NowNanos()) / 1e6; }
};

/// The process-wide monotonic clock (std::chrono::steady_clock underneath).
/// Never owns state; the pointer is valid for the process lifetime.
Clock* SystemClock();

/// Deterministic clock for tests: time is a counter the test controls.
/// `auto_advance_ns` (optionally) moves time forward on every read, which
/// keeps timestamps strictly monotone through code under test without the
/// test having to interleave Advance calls.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_ns = 0, uint64_t auto_advance_ns = 0)
      : now_ns_(start_ns), auto_advance_ns_(auto_advance_ns) {}

  uint64_t NowNanos() const override {
    if (auto_advance_ns_ == 0) return now_ns_.load(std::memory_order_relaxed);
    return now_ns_.fetch_add(auto_advance_ns_, std::memory_order_relaxed) +
           auto_advance_ns_;
  }

  void AdvanceNanos(uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void AdvanceMillis(uint64_t delta_ms) { AdvanceNanos(delta_ms * 1000000); }

 private:
  mutable std::atomic<uint64_t> now_ns_;
  uint64_t auto_advance_ns_;
};

}  // namespace mope::obs

#endif  // MOPE_OBS_CLOCK_H_
