#include "obs/clock.h"

#include <chrono>

namespace mope::obs {

namespace {

/// The one sanctioned wall-clock touchpoint (linter rules R2/R7 exempt
/// src/obs/clock.* and nothing else).
class SteadyClock final : public Clock {
 public:
  uint64_t NowNanos() const override {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  }
};

}  // namespace

Clock* SystemClock() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace mope::obs
