#include "obs/log.h"

#include <cinttypes>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace mope::obs {

namespace {

/// Name of the registry counter bumped when the rate limiter drops an event.
constexpr char kDroppedCounterName[] = "obs.log.dropped";

void StderrSink(void* /*user_data*/, const std::string& line) {
  // The one legal raw-output call site for operational logging (linter rule
  // R11 exempts src/obs/log.*). One fputs per event: the line was rendered
  // fully under the sink lock, so concurrent events never interleave.
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

/// True if a text-format value can be emitted bare (no quoting needed).
bool TextValueIsBare(const std::string& v) {
  if (v.empty()) return false;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return false;
    }
  }
  return true;
}

void AppendQuoted(const std::string& v, std::string* out) {
  out->push_back('"');
  for (char c : v) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn") {
    *out = LogLevel::kWarn;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

Logger::Logger() : clock_(SystemClock()), sink_(&StderrSink) {}

Logger* Logger::Default() {
  static Logger* logger = new Logger();  // Leaked: outlives static dtors.
  return logger;
}

void Logger::SetMinLevel(LogLevel level) {
  const MutexLock lock(&mutex_);
  min_level_ = level;
}

void Logger::SetSubsystemLevel(const std::string& subsystem, LogLevel level) {
  const MutexLock lock(&mutex_);
  subsystem_levels_[subsystem] = level;
}

void Logger::ClearSubsystemLevels() {
  const MutexLock lock(&mutex_);
  subsystem_levels_.clear();
}

void Logger::SetFormat(LogFormat format) {
  const MutexLock lock(&mutex_);
  format_ = format;
}

void Logger::SetClock(Clock* clock) {
  const MutexLock lock(&mutex_);
  clock_ = clock != nullptr ? clock : SystemClock();
  last_refill_ns_ = 0;  // Re-anchor the bucket to the new timeline.
}

void Logger::SetSink(Sink sink, void* user_data) {
  const MutexLock lock(&mutex_);
  sink_ = sink != nullptr ? sink : &StderrSink;
  sink_user_data_ = sink != nullptr ? user_data : nullptr;
}

void Logger::SetRateLimit(double rate_per_sec, double burst) {
  const MutexLock lock(&mutex_);
  rate_per_sec_ = rate_per_sec;
  burst_ = burst;
  tokens_ = burst;
  last_refill_ns_ = 0;
}

void Logger::SetDropCounterRegistry(MetricsRegistry* registry) {
  const MutexLock lock(&mutex_);
  drop_registry_ = registry;
}

bool Logger::ShouldLog(LogLevel level, std::string_view subsystem) const {
  const MutexLock lock(&mutex_);
  const auto it = subsystem_levels_.find(subsystem);
  const LogLevel floor =
      it != subsystem_levels_.end() ? it->second : min_level_;
  return static_cast<int>(level) >= static_cast<int>(floor);
}

uint64_t Logger::dropped_total() const {
  const MutexLock lock(&mutex_);
  return dropped_total_;
}

uint64_t Logger::emitted_total() const {
  const MutexLock lock(&mutex_);
  return emitted_total_;
}

bool Logger::RateAdmitLocked(uint64_t now_ns) {
  if (rate_per_sec_ <= 0.0) return true;
  if (last_refill_ns_ == 0) {
    last_refill_ns_ = now_ns;
  } else if (now_ns > last_refill_ns_) {
    const double elapsed_s =
        static_cast<double>(now_ns - last_refill_ns_) / 1e9;
    tokens_ += elapsed_s * rate_per_sec_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_refill_ns_ = now_ns;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void Logger::Emit(
    LogLevel level, const char* subsystem, const char* event,
    uint64_t trace_id,
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::vector<bool>& field_is_string) {
  std::string line;
  line.reserve(96);

  Counter* drop_counter = nullptr;
  Sink sink;
  void* sink_user_data;
  {
    const MutexLock lock(&mutex_);
    const uint64_t now_ns = clock_->NowNanos();
    if (!RateAdmitLocked(now_ns)) {
      ++dropped_total_;
      if (drop_registry_ != nullptr) {
        // GetCounter takes the registry mutex (rank 80 > 75: legal here).
        drop_counter = drop_registry_->GetCounter(kDroppedCounterName);
      }
      if (drop_counter != nullptr) drop_counter->Increment();
      return;
    }
    ++emitted_total_;

    char num[32];
    if (format_ == LogFormat::kText) {
      line += "ts_ns=";
      std::snprintf(num, sizeof(num), "%" PRIu64, now_ns);
      line += num;
      line += " level=";
      line += LogLevelName(level);
      line += " subsystem=";
      line += subsystem;
      line += " event=";
      line += event;
      for (size_t i = 0; i < fields.size(); ++i) {
        line.push_back(' ');
        line += fields[i].first;
        line.push_back('=');
        if (!field_is_string[i] || TextValueIsBare(fields[i].second)) {
          line += fields[i].second;
        } else {
          AppendQuoted(fields[i].second, &line);
        }
      }
      if (trace_id != 0) {
        line += " trace=";
        std::snprintf(num, sizeof(num), "%" PRIu64, trace_id);
        line += num;
      }
    } else {
      line += "{\"ts_ns\":";
      std::snprintf(num, sizeof(num), "%" PRIu64, now_ns);
      line += num;
      line += ",\"level\":\"";
      line += LogLevelName(level);
      line += "\",\"subsystem\":";
      AppendQuoted(subsystem, &line);
      line += ",\"event\":";
      AppendQuoted(event, &line);
      for (size_t i = 0; i < fields.size(); ++i) {
        line.push_back(',');
        AppendQuoted(fields[i].first, &line);
        line.push_back(':');
        if (field_is_string[i]) {
          AppendQuoted(fields[i].second, &line);
        } else {
          line += fields[i].second;
        }
      }
      if (trace_id != 0) {
        line += ",\"trace\":";
        std::snprintf(num, sizeof(num), "%" PRIu64, trace_id);
        line += num;
      }
      line.push_back('}');
    }
    sink = sink_;
    sink_user_data = sink_user_data_;
    // Emit while still holding the sink lock: that IS the serialization
    // guarantee (satellite: startup/shutdown vs worker-thread output).
    sink(sink_user_data, line);
  }
  // Every emitted event also lands in the crash flight recorder's ring
  // (lock-free), so a postmortem black box replays the tail of the log.
  if (FlightRecorder* recorder = FlightRecorder::Installed()) {
    recorder->Record(FlightRecorder::EventKind::kLog, event, trace_id);
  }
}

LogEvent::LogEvent(Logger* logger, LogLevel level, const char* subsystem,
                   const char* event)
    : logger_(logger != nullptr && logger->ShouldLog(level, subsystem)
                  ? logger
                  : nullptr),
      level_(level),
      subsystem_(subsystem),
      event_(event),
      trace_id_(logger_ != nullptr ? CurrentTraceId() : 0) {}

LogEvent::~LogEvent() {
  if (logger_ == nullptr) return;
  logger_->Emit(level_, subsystem_, event_, trace_id_, fields_,
                field_is_string_);
}

LogEvent& LogEvent::Arg(const char* key, const std::string& value) {
  if (logger_ == nullptr) return *this;
  fields_.emplace_back(key, value);
  field_is_string_.push_back(true);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, const char* value) {
  if (logger_ == nullptr) return *this;
  fields_.emplace_back(key, value);
  field_is_string_.push_back(true);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, std::string_view value) {
  if (logger_ == nullptr) return *this;
  fields_.emplace_back(key, std::string(value));
  field_is_string_.push_back(true);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, bool value) {
  if (logger_ == nullptr) return *this;
  fields_.emplace_back(key, value ? "true" : "false");
  field_is_string_.push_back(false);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, double value) {
  if (logger_ == nullptr) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(key, buf);
  field_is_string_.push_back(false);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, uint64_t value) {
  if (logger_ == nullptr) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  fields_.emplace_back(key, buf);
  field_is_string_.push_back(false);
  return *this;
}

LogEvent& LogEvent::Arg(const char* key, int64_t value) {
  if (logger_ == nullptr) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  fields_.emplace_back(key, buf);
  field_is_string_.push_back(false);
  return *this;
}

}  // namespace mope::obs
