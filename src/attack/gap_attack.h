#ifndef MOPE_ATTACK_GAP_ATTACK_H_
#define MOPE_ATTACK_GAP_ATTACK_H_

/// \file gap_attack.h
/// The gap attack of Boldyreva et al. that motivates the whole paper
/// (Figure 1), plus the phase attack that bounds what QueryP leaks.
///
/// An honest-but-curious server watching naive MOPE range queries observes
/// start points whose *shifted* values mL + j (mod M) never fall in the
/// width-(k-1)-ish band just below j: valid queries never straddle the
/// domain wrap. After enough queries the largest uncovered circular arc
/// pins down the secret offset. (The adversary works in rank space: with
/// ciphertext order visible, observed ciphertext start points can be ranked
/// into shifted-domain positions.)
///
/// Against QueryP the perceived distribution is ρ-periodic; the best an
/// adversary can do is recover j mod ρ by maximum-likelihood matching of
/// the observed start histogram against the ρ cyclic shifts of the known
/// perceived distribution — exactly the log ρ least-significant bits the
/// Section 7.4 analysis says are forfeited.

#include <cstdint>

#include "common/histogram.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace mope::attack {

/// Accumulates observed (shifted-domain) query start points and estimates
/// the secret offset from the largest uncovered circular arc.
class GapAttack {
 public:
  explicit GapAttack(uint64_t domain) : observed_(domain) {}

  /// Records one observed query start (in shifted/rank space).
  void ObserveStart(uint64_t shifted_start) { observed_.Add(shifted_start); }

  const Histogram& observed() const { return observed_; }

  /// Offset estimate: one past the end of the longest circular run of
  /// never-observed start points. Fails when every point was observed
  /// (no gap to orient by).
  Result<uint64_t> EstimateOffset() const;

  /// Length of the longest uncovered circular arc (0 when fully covered).
  uint64_t LongestGap() const;

 private:
  Histogram observed_;
};

/// Maximum-likelihood phase recovery against QueryP: given the ρ-periodic
/// perceived distribution the proxy realizes (known to an adversary that
/// knows Q — Section 3.2) and the observed start histogram, returns the
/// phase φ in [0, ρ) maximizing the log-likelihood of the observations
/// under the perceived distribution cyclically shifted by φ. A correct
/// recovery means φ == j mod ρ.
Result<uint64_t> EstimatePhase(const Histogram& observed,
                               const dist::Distribution& perceived,
                               uint64_t period);

}  // namespace mope::attack

#endif  // MOPE_ATTACK_GAP_ATTACK_H_
