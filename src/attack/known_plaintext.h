#ifndef MOPE_ATTACK_KNOWN_PLAINTEXT_H_
#define MOPE_ATTACK_KNOWN_PLAINTEXT_H_

/// \file known_plaintext.h
/// The known plaintext-ciphertext pair attack the paper's Section 9 warns
/// about: MOPE's security gain over plain OPE rests on a ciphertext-only
/// adversary; a single exposed (m, c) pair re-orients the whole dataset.
///
/// Given the multiset of ciphertexts in the database and one exposed pair,
/// the adversary ranks c among the observed ciphertexts and — using the
/// ideal-object heuristic that a random OPF is close to linear — estimates
/// every other row's plaintext by scaling. When the exposed pair predates a
/// key rotation, the estimate collapses back to random guessing, which is
/// exactly what Proxy::RotateKey buys.

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mope::attack {

/// Estimates plaintexts from one exposed pair.
class KnownPlaintextAttack {
 public:
  /// `ciphertexts` is the encrypted column as observed at the server;
  /// `domain` is the (public) plaintext domain size, `range` the ciphertext
  /// space size.
  KnownPlaintextAttack(std::vector<uint64_t> ciphertexts, uint64_t domain,
                       uint64_t range);

  /// Incorporates an exposed (plaintext, ciphertext) pair.
  void Expose(uint64_t plaintext, uint64_t ciphertext);

  /// Best estimate of the plaintext behind `ciphertext`. Without an exposed
  /// pair this is the plain scaling estimate of the *shifted* value — i.e.
  /// it carries no information about the true location (MOPE's guarantee);
  /// with a pair, the offset is cancelled out.
  uint64_t EstimatePlaintext(uint64_t ciphertext) const;

  /// Fraction of `true_plaintexts[i]` (aligned with the ciphertext vector
  /// given at construction) estimated within +/- window (modular distance).
  double EvaluateAccuracy(const std::vector<uint64_t>& true_plaintexts,
                          uint64_t window) const;

 private:
  std::vector<uint64_t> ciphertexts_;
  uint64_t domain_;
  uint64_t range_;
  bool has_pair_ = false;
  uint64_t known_plain_ = 0;
  uint64_t known_cipher_ = 0;
};

}  // namespace mope::attack

#endif  // MOPE_ATTACK_KNOWN_PLAINTEXT_H_
