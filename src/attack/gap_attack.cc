#include "attack/gap_attack.h"

#include <cmath>
#include <limits>

namespace mope::attack {

namespace {

/// Finds the longest circular run of zero bins; returns {start, length},
/// length 0 when there is none.
std::pair<uint64_t, uint64_t> LongestZeroRun(const Histogram& h) {
  const uint64_t m = h.size();
  // Doubling pass handles wrap-around runs; a run is capped at m.
  uint64_t best_start = 0, best_len = 0;
  uint64_t run_start = 0, run_len = 0;
  for (uint64_t i = 0; i < 2 * m; ++i) {
    if (h.count(i % m) == 0) {
      if (run_len == 0) run_start = i;
      if (++run_len > best_len && run_start < m) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_len = 0;
    }
    if (best_len >= m) break;
  }
  if (best_len > m) best_len = m;
  return {best_start % m, best_len};
}

}  // namespace

uint64_t GapAttack::LongestGap() const {
  return LongestZeroRun(observed_).second;
}

Result<uint64_t> GapAttack::EstimateOffset() const {
  const auto [start, len] = LongestZeroRun(observed_);
  if (len == 0) {
    return Status::NotFound("no gap: every start point has been observed");
  }
  if (len >= observed_.size()) {
    return Status::InvalidArgument("no queries observed yet");
  }
  // The never-queried band ends just below the wrap point: the shifted
  // position of plaintext 0 is one past the gap.
  return (start + len) % observed_.size();
}

Result<uint64_t> EstimatePhase(const Histogram& observed,
                               const dist::Distribution& perceived,
                               uint64_t period) {
  const uint64_t m = observed.size();
  if (perceived.size() != m) {
    return Status::InvalidArgument("histogram/distribution size mismatch");
  }
  if (period == 0 || m % period != 0) {
    return Status::InvalidArgument("period must divide the domain");
  }
  if (observed.total() == 0) {
    return Status::InvalidArgument("no observations");
  }

  // The perceived distribution is ρ-periodic, so shifting it by φ only
  // depends on φ mod ρ: evaluate the log-likelihood of the observations for
  // each of the ρ candidate phases.
  double best_ll = -std::numeric_limits<double>::infinity();
  uint64_t best_phase = 0;
  for (uint64_t phase = 0; phase < period; ++phase) {
    double ll = 0.0;
    for (uint64_t i = 0; i < m; ++i) {
      const uint64_t c = observed.count(i);
      if (c == 0) continue;
      // Observation at shifted position i has probability
      // perceived((i - phase) mod m) when the true offset is == phase.
      const double p = perceived.prob((i + m - phase) % m);
      if (p <= 0.0) {
        ll = -std::numeric_limits<double>::infinity();
        break;
      }
      ll += static_cast<double>(c) * std::log(p);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best_phase = phase;
    }
  }
  return best_phase;
}

}  // namespace mope::attack
