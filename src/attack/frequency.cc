#include "attack/frequency.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

namespace mope::attack {

std::vector<FrequencyGuess> FrequencyMatch(
    const std::vector<uint64_t>& ciphertexts, const dist::Distribution& aux) {
  // Observed histogram over distinct ciphertexts.
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t c : ciphertexts) ++counts[c];

  // Distinct ciphertexts by descending frequency (ties: ascending value,
  // deterministic).
  std::vector<std::pair<uint64_t, uint64_t>> by_freq(counts.begin(),
                                                     counts.end());
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  // Auxiliary values by descending probability.
  std::vector<uint64_t> aux_rank(aux.size());
  std::iota(aux_rank.begin(), aux_rank.end(), 0);
  std::sort(aux_rank.begin(), aux_rank.end(), [&aux](uint64_t a, uint64_t b) {
    if (aux.prob(a) != aux.prob(b)) return aux.prob(a) > aux.prob(b);
    return a < b;
  });

  std::vector<FrequencyGuess> guesses;
  guesses.reserve(by_freq.size());
  for (size_t rank = 0; rank < by_freq.size(); ++rank) {
    FrequencyGuess guess;
    guess.ciphertext = by_freq[rank].first;
    guess.count = by_freq[rank].second;
    guess.guessed_plaintext =
        rank < aux_rank.size() ? aux_rank[rank] : aux_rank.back();
    guesses.push_back(guess);
  }
  std::sort(guesses.begin(), guesses.end(),
            [](const FrequencyGuess& a, const FrequencyGuess& b) {
              return a.ciphertext < b.ciphertext;
            });
  return guesses;
}

Result<uint64_t> CyclicFrequencyMatch(
    const std::vector<uint64_t>& ciphertexts, const dist::Distribution& aux) {
  const uint64_t m = aux.size();
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t c : ciphertexts) ++counts[c];
  if (counts.size() != m) {
    return Status::NotFound(
        "cyclic matching needs a dense column (every value present)");
  }
  // Observed relative frequencies in ciphertext (= shifted-plaintext) order.
  std::vector<double> observed;
  observed.reserve(m);
  const double total = static_cast<double>(ciphertexts.size());
  for (const auto& [cipher, count] : counts) {
    observed.push_back(static_cast<double>(count) / total);
  }
  // Best cyclic alignment: observed[i] ~ aux[(i - j) mod m].
  double best = std::numeric_limits<double>::infinity();
  uint64_t best_offset = 0;
  for (uint64_t j = 0; j < m; ++j) {
    double dist = 0.0;
    for (uint64_t i = 0; i < m; ++i) {
      const double d = observed[i] - aux.prob((i + m - j) % m);
      dist += d * d;
    }
    if (dist < best) {
      best = dist;
      best_offset = j;
    }
  }
  return best_offset;
}

double FrequencyMatchAccuracy(const std::vector<FrequencyGuess>& guesses,
                              const std::vector<uint64_t>& ciphertexts,
                              const std::vector<uint64_t>& truths) {
  MOPE_CHECK(ciphertexts.size() == truths.size(), "vectors must align");
  if (ciphertexts.empty()) return 0.0;
  std::map<uint64_t, uint64_t> guess_of;
  for (const FrequencyGuess& g : guesses) {
    guess_of[g.ciphertext] = g.guessed_plaintext;
  }
  uint64_t hits = 0;
  for (size_t i = 0; i < ciphertexts.size(); ++i) {
    const auto it = guess_of.find(ciphertexts[i]);
    if (it != guess_of.end() && it->second == truths[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ciphertexts.size());
}

}  // namespace mope::attack
