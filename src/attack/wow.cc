#include "attack/wow.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/gap_attack.h"
#include "common/interval.h"
#include "dist/completion.h"
#include "ope/ideal.h"

namespace mope::attack {

namespace {

/// Random n-subset of {0..domain-1} by sequential selection sampling.
std::vector<uint64_t> SampleDatabase(uint64_t domain, uint64_t n,
                                     mope::BitSource* rng) {
  std::vector<uint64_t> db;
  db.reserve(n);
  uint64_t needed = n;
  for (uint64_t v = 0; v < domain && needed > 0; ++v) {
    if (rng->UniformUint64(domain - v) < needed) {
      db.push_back(v);
      --needed;
    }
  }
  return db;
}

/// The scaling estimator: the shifted plaintext most likely to produce
/// ciphertext c under a random OPF is ~ c * M / N.
uint64_t ScaleToDomain(uint64_t cipher, uint64_t domain, uint64_t range) {
  const double est = static_cast<double>(cipher) * static_cast<double>(domain) /
                     static_cast<double>(range);
  uint64_t s = static_cast<uint64_t>(std::llround(est));
  if (s >= domain) s = domain - 1;
  return s;
}

}  // namespace

Result<WowResult> RunWowExperiment(const WowConfig& config, WowScheme scheme,
                                   const dist::Distribution* q_starts,
                                   mope::BitSource* rng) {
  const uint64_t m_count = config.domain;
  const uint64_t n_count = config.range;
  if (n_count < m_count || config.db_size < 2 || config.db_size > m_count) {
    return Status::InvalidArgument("invalid WOW configuration");
  }
  if (scheme == WowScheme::kMopeQueryP &&
      (config.period == 0 || m_count % config.period != 0)) {
    return Status::InvalidArgument("period must divide the domain");
  }
  if (config.k == 0 || config.k >= m_count) {
    return Status::InvalidArgument("k must be in [1, domain)");
  }

  dist::Distribution user_q =
      q_starts != nullptr ? *q_starts : dist::Distribution::Uniform(m_count);
  if (user_q.size() != m_count) {
    return Status::InvalidArgument("query distribution size mismatch");
  }

  // Perceived distribution for QueryP (what the adversary, knowing Q, can
  // precompute): P_rho in user-plaintext start space.
  dist::Distribution perceived = dist::Distribution::Uniform(m_count);
  if (scheme == WowScheme::kMopeQueryP) {
    MOPE_ASSIGN_OR_RETURN(dist::MixPlan plan,
                          dist::MakePeriodicPlan(user_q, config.period));
    perceived = plan.perceived;
  }

  uint64_t loc_wins = 0, dist_wins = 0, offset_hits = 0;

  for (uint64_t trial = 0; trial < config.trials; ++trial) {
    // --- Sample the ideal object and the database.
    const ope::RandomMopf mopf =
        ope::RandomMopf::Sample(m_count, n_count, rng);
    const uint64_t offset = (scheme == WowScheme::kOpe) ? 0 : mopf.offset();
    // For kOpe we play against the un-shifted OPF: emulate by treating the
    // shifted value as the plaintext itself.
    auto encrypt = [&](uint64_t m) {
      return (scheme == WowScheme::kOpe)
                 ? mopf.Encrypt((m + m_count - mopf.offset()) % m_count)
                 : mopf.Encrypt(m);
    };

    const std::vector<uint64_t> db =
        SampleDatabase(m_count, config.db_size, rng);
    const uint64_t m1 = db[rng->UniformUint64(db.size())];
    uint64_t m2 = m1;
    while (m2 == m1) m2 = db[rng->UniformUint64(db.size())];
    const uint64_t c1 = encrypt(m1);
    const uint64_t c2 = encrypt(m2);

    // --- Show the adversary q encrypted queries (modelled in rank space:
    // the adversary observes each query's shifted start point).
    GapAttack gap(m_count);
    Histogram observed(m_count);
    const bool observe_queries = (scheme != WowScheme::kOpe);
    if (observe_queries) {
      for (uint64_t i = 0; i < config.num_queries; ++i) {
        uint64_t shifted_start = 0;
        switch (scheme) {
          case WowScheme::kMopeNaive: {
            // Real user queries only: valid (non-wrapping) starts.
            uint64_t start = user_q.Sample(rng);
            while (start > m_count - config.k) start = user_q.Sample(rng);
            shifted_start = (start + offset) % m_count;
            break;
          }
          case WowScheme::kMopeQueryU:
            // Mixing makes the perceived start uniform over the whole
            // domain — independent of the offset.
            shifted_start = rng->UniformUint64(m_count);
            break;
          case WowScheme::kMopeQueryP:
            shifted_start = (perceived.Sample(rng) + offset) % m_count;
            break;
          case WowScheme::kOpe:
            break;
        }
        gap.ObserveStart(shifted_start);
        observed.Add(shifted_start);
      }
    }

    // --- Offset estimation.
    uint64_t offset_estimate = 0;
    switch (scheme) {
      case WowScheme::kOpe:
        offset_estimate = 0;
        break;
      case WowScheme::kMopeNaive: {
        auto est = gap.EstimateOffset();
        offset_estimate = est.ok() ? est.value() : rng->UniformUint64(m_count);
        break;
      }
      case WowScheme::kMopeQueryU: {
        // Uniform perceived distribution: the gap attack has nothing to
        // orient by; with q >> M log M every start has been seen and the
        // estimator refuses. Guess at random.
        auto est = gap.EstimateOffset();
        offset_estimate = est.ok() ? est.value() : rng->UniformUint64(m_count);
        break;
      }
      case WowScheme::kMopeQueryP: {
        MOPE_ASSIGN_OR_RETURN(uint64_t phase,
                              EstimatePhase(observed, perceived, config.period));
        // Low bits recovered; high bits unguessable.
        offset_estimate =
            phase + config.period *
                        rng->UniformUint64(m_count / config.period);
        break;
      }
    }
    if (observe_queries && offset_estimate == offset) ++offset_hits;

    // --- Location game: scale the ciphertext, un-shift, window around it.
    const uint64_t shifted_est = ScaleToDomain(c1, m_count, n_count);
    const uint64_t m_est =
        (shifted_est + m_count - offset_estimate % m_count) % m_count;
    const uint64_t x =
        (m_est + m_count - std::min(config.window / 2, m_count - 1)) % m_count;
    const ModularInterval window(
        x, std::min(config.window + 1, m_count), m_count);
    if (window.Contains(m1)) ++loc_wins;

    // --- Distance game: scale the ciphertext gap.
    const uint64_t cdist = (c1 > c2) ? c1 - c2 : c2 - c1;
    const uint64_t d_est = ScaleToDomain(cdist, m_count, n_count);
    const uint64_t true_dist = (m1 > m2) ? m1 - m2 : m2 - m1;
    const uint64_t dx =
        d_est > config.window / 2 ? d_est - config.window / 2 : 0;
    if (true_dist >= dx && true_dist <= dx + config.window) ++dist_wins;
  }

  WowResult result;
  result.location_advantage =
      static_cast<double>(loc_wins) / static_cast<double>(config.trials);
  result.distance_advantage =
      static_cast<double>(dist_wins) / static_cast<double>(config.trials);
  result.offset_recovery_rate =
      static_cast<double>(offset_hits) / static_cast<double>(config.trials);
  return result;
}

}  // namespace mope::attack
