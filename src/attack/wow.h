#ifndef MOPE_ATTACK_WOW_H_
#define MOPE_ATTACK_WOW_H_

/// \file wow.h
/// Empirical window one-wayness experiments: the WOW*-L / WOW*-D games of
/// Section 7.2 (Figure 17), run against the ideal objects (random OPF /
/// random MOPF — Lemma 1 reduces the real schemes to these up to PMOPF
/// advantage) under each query algorithm.
///
/// Each trial samples a fresh function and database, gives the adversary
/// the encrypted database, one (or two) challenge ciphertext(s) and a stream
/// of q encrypted queries, and asks for a window of width w containing the
/// challenge plaintext (location game) or the challenge pair's distance
/// (distance game). The measured success rates are compared in
/// EXPERIMENTS.md against the paper's bounds:
///   * plain OPE: location leaks — the scaling adversary wins ≈ always for
///     w >> sqrt(M);
///   * MOPE + naive queries: the gap attack reorients the space and the
///     scaling adversary wins again;
///   * MOPE + QueryU: location advantage <= w/M + o(1)  (Theorem 3);
///   * MOPE + QueryP[ρ]: location advantage <= ρw/M + o(1)  (Theorem 5);
///   * distance leaks ~ sqrt(M) for all OPE-family schemes (Theorem 4).

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace mope::attack {

/// Which scheme/query-algorithm pair the game is played against.
enum class WowScheme : uint8_t {
  kOpe,            ///< Plain OPE, no offset (queries reveal nothing extra).
  kMopeNaive,      ///< MOPE; queries forwarded without fakes (gap attack).
  kMopeQueryU,     ///< MOPE + QueryU: perceived query starts uniform.
  kMopeQueryP,     ///< MOPE + QueryP[period]: perceived starts ρ-periodic.
};

struct WowConfig {
  uint64_t domain = 1024;        ///< M.
  uint64_t range = 8192;         ///< N >= 8M per the theorems.
  uint64_t db_size = 32;         ///< n.
  uint64_t window = 16;          ///< w.
  uint64_t num_queries = 2000;   ///< q: encrypted queries shown per trial.
  uint64_t k = 8;                ///< Fixed query length.
  uint64_t period = 32;          ///< ρ for kMopeQueryP.
  uint64_t trials = 200;
};

struct WowResult {
  double location_advantage = 0.0;  ///< Empirical Pr[m in [x, x+w]].
  double distance_advantage = 0.0;  ///< Empirical Pr[|m1-m2| in [x, x+w]].
  /// Fraction of trials in which the offset estimator (gap/phase attack)
  /// recovered j exactly (location-relevant diagnostics; 0 for kOpe).
  double offset_recovery_rate = 0.0;
};

/// Runs both games for `config.trials` trials. `q_starts` is the user
/// query-start distribution (skewed distributions make the naive scheme's
/// gap attack fast and exercise QueryP's class structure); pass nullptr for
/// uniform user queries.
Result<WowResult> RunWowExperiment(const WowConfig& config, WowScheme scheme,
                                   const dist::Distribution* q_starts,
                                   mope::BitSource* rng);

}  // namespace mope::attack

#endif  // MOPE_ATTACK_WOW_H_
