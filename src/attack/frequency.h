#ifndef MOPE_ATTACK_FREQUENCY_H_
#define MOPE_ATTACK_FREQUENCY_H_

/// \file frequency.h
/// Frequency analysis against deterministic encryption.
///
/// MOPE (like all OPE-family schemes) is deterministic: equal plaintexts map
/// to equal ciphertexts, so the *multiset of frequencies* of a column
/// survives encryption. An adversary holding an auxiliary distribution for
/// the column (census tables, public datasets — the setting of
/// Naveed-Kamara-Wright-style inference attacks) can match ciphertexts to
/// plaintexts by frequency rank alone, without touching the encryption.
///
/// For MOPE the adversary can do better than rank matching: ciphertext
/// *order* is also visible, so matching the order-and-frequency profile
/// recovers the offset directly when frequencies are distinctive. This
/// module implements both estimators; the tests quantify when they succeed
/// (skewed, distinctive histograms) and when they fail (flat histograms) —
/// a leakage dimension the paper's WOW models deliberately exclude, included
/// here to document the scheme's practical limits.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dist/distribution.h"

namespace mope::attack {

/// Rank-matching frequency analysis: pairs the i-th most frequent
/// ciphertext with the i-th most likely auxiliary value. Returns, for each
/// distinct ciphertext (by ascending ciphertext), the guessed plaintext.
struct FrequencyGuess {
  uint64_t ciphertext = 0;
  uint64_t guessed_plaintext = 0;
  uint64_t count = 0;  ///< observed occurrences of the ciphertext
};

std::vector<FrequencyGuess> FrequencyMatch(
    const std::vector<uint64_t>& ciphertexts, const dist::Distribution& aux);

/// Order-aware variant against MOPE: the adversary knows ciphertext order,
/// so the observed frequency sequence (in ciphertext order) must be a
/// cyclic rotation of the auxiliary frequency sequence (in plaintext
/// order). Returns the most likely offset j by minimizing the L2 distance
/// over all rotations. Requires every domain value to appear at least once
/// (dense columns, e.g. dates); returns NotFound otherwise.
Result<uint64_t> CyclicFrequencyMatch(
    const std::vector<uint64_t>& ciphertexts, const dist::Distribution& aux);

/// Fraction of rows whose guessed plaintext is correct, given ground truth
/// aligned with `ciphertexts`.
double FrequencyMatchAccuracy(const std::vector<FrequencyGuess>& guesses,
                              const std::vector<uint64_t>& ciphertexts,
                              const std::vector<uint64_t>& truths);

}  // namespace mope::attack

#endif  // MOPE_ATTACK_FREQUENCY_H_
