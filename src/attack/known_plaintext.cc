#include "attack/known_plaintext.h"

#include <cmath>

namespace mope::attack {

KnownPlaintextAttack::KnownPlaintextAttack(std::vector<uint64_t> ciphertexts,
                                           uint64_t domain, uint64_t range)
    : ciphertexts_(std::move(ciphertexts)), domain_(domain), range_(range) {
  MOPE_CHECK(domain_ > 0 && range_ >= domain_, "invalid attack parameters");
}

void KnownPlaintextAttack::Expose(uint64_t plaintext, uint64_t ciphertext) {
  has_pair_ = true;
  known_plain_ = plaintext;
  known_cipher_ = ciphertext;
}

uint64_t KnownPlaintextAttack::EstimatePlaintext(uint64_t ciphertext) const {
  // Scaling estimate of the shifted plaintext behind a ciphertext: a random
  // OPF concentrates around the diagonal c ~ s * N / M.
  const auto shifted_of = [this](uint64_t c) {
    uint64_t s = static_cast<uint64_t>(std::llround(
        static_cast<double>(c) * static_cast<double>(domain_) /
        static_cast<double>(range_)));
    return s >= domain_ ? domain_ - 1 : s;
  };
  const uint64_t shifted = shifted_of(ciphertext);
  if (!has_pair_) {
    // No anchor: the shifted estimate is all we have; the modular offset
    // makes it independent of the true plaintext.
    return shifted;
  }
  // The exposed pair reveals the offset: j ~ shifted(known_c) - known_m.
  const uint64_t offset_estimate =
      (shifted_of(known_cipher_) + domain_ - known_plain_ % domain_) % domain_;
  return (shifted + domain_ - offset_estimate) % domain_;
}

double KnownPlaintextAttack::EvaluateAccuracy(
    const std::vector<uint64_t>& true_plaintexts, uint64_t window) const {
  MOPE_CHECK(true_plaintexts.size() == ciphertexts_.size(),
             "plaintext/ciphertext vectors must align");
  if (ciphertexts_.empty()) return 0.0;
  uint64_t hits = 0;
  for (size_t i = 0; i < ciphertexts_.size(); ++i) {
    const uint64_t est = EstimatePlaintext(ciphertexts_[i]);
    const uint64_t truth = true_plaintexts[i];
    const uint64_t diff = est >= truth ? est - truth : truth - est;
    const uint64_t modular = std::min(diff, domain_ - diff);
    if (modular <= window) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ciphertexts_.size());
}

}  // namespace mope::attack
