#ifndef MOPE_QUERY_COST_H_
#define MOPE_QUERY_COST_H_

/// \file cost.h
/// The two cost functions of Section 6, used by every Figure-5..12 bench:
///
///   Bandwidth(R, F) = (Σ_{q∈F} |q|  +  Σ_{q∈R} (|q| mod k)) / Σ_{q∈R} |q|
///   Requests(R, T, F) = (|T| + |F|) / |R|
///
/// where R is the set of user queries, T = ∪ τk(q) the transformed queries,
/// F the fake queries, and |q| the number of records a query returns.
/// Record counts are evaluated against the database's value histogram via
/// prefix sums, including wrap-around intervals for fake queries.

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/interval.h"
#include "common/status.h"
#include "query/query_types.h"

namespace mope::query {

/// O(1) record counting over (possibly wrapping) value intervals.
class RecordCounter {
 public:
  /// `counts_per_value[v]` = number of database records with value v.
  explicit RecordCounter(std::vector<uint64_t> counts_per_value);

  static RecordCounter FromHistogram(const Histogram& hist);

  uint64_t domain() const { return counts_.size(); }
  uint64_t total() const { return prefix_.back(); }

  /// Records with value in [first, last] (non-wrapping; first <= last).
  uint64_t CountBetween(uint64_t first, uint64_t last) const;

  /// Records with value in the (possibly wrapping) interval.
  uint64_t CountIn(const ModularInterval& interval) const;

 private:
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> prefix_;  // prefix_[i] = sum of counts_[0..i-1]
};

/// Accumulates the Section 6 tallies across a workload run.
class CostAccumulator {
 public:
  /// Costs are evaluated for fixed length k against the given record counts.
  CostAccumulator(const RecordCounter* counter, uint64_t k);

  /// Accounts one user query together with the batch a QueryAlgorithm
  /// produced for it.
  void AddBatch(const RangeQuery& q, const std::vector<FixedQuery>& batch);

  uint64_t real_queries() const { return real_queries_; }
  uint64_t transformed_queries() const { return transformed_queries_; }
  uint64_t fake_queries() const { return fake_queries_; }
  uint64_t real_records() const { return real_records_; }
  uint64_t fake_records() const { return fake_records_; }

  /// Σ_{q∈F}|q| + Σ_{q∈R}(|q| mod k) over Σ_{q∈R}|q|; 0 when no records.
  double Bandwidth() const;

  /// (|T| + |F|) / |R|; 0 when no real queries.
  double Requests() const;

 private:
  const RecordCounter* counter_;
  uint64_t k_;
  uint64_t real_queries_ = 0;
  uint64_t transformed_queries_ = 0;
  uint64_t fake_queries_ = 0;
  uint64_t real_records_ = 0;
  uint64_t real_records_mod_k_ = 0;
  uint64_t fake_records_ = 0;
};

}  // namespace mope::query

#endif  // MOPE_QUERY_COST_H_
