#ifndef MOPE_QUERY_QUERY_TYPES_H_
#define MOPE_QUERY_QUERY_TYPES_H_

/// \file query_types.h
/// Plaintext query representations and the fixed-length decomposition τk.

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "common/status.h"

namespace mope::query {

/// A user's (valid, non-wrapping) range query [first, last] on {0..M-1}.
struct RangeQuery {
  uint64_t first = 0;
  uint64_t last = 0;

  uint64_t length() const { return last - first + 1; }
  bool operator==(const RangeQuery&) const = default;
};

/// Origin of a fixed-length query inside a prepared batch.
enum class QueryKind : uint8_t {
  kReal,  ///< Part of the τk decomposition of a user query.
  kFake,  ///< Sampled from the completion distribution.
};

/// One length-k query, identified by its start point (Section 3.1: once all
/// queries share the fixed length k, the start point determines the query).
/// Fake queries may start anywhere in [0, M) and thus wrap around the domain;
/// real queries never wrap.
struct FixedQuery {
  uint64_t start = 0;
  QueryKind kind = QueryKind::kReal;

  bool operator==(const FixedQuery&) const = default;
};

/// The fixed-length decomposition τk(q) (Section 3.1): covers q with
/// consecutive length-k queries starting at q.first. When the final block
/// would run past the end of the domain it is shifted back to end exactly at
/// M-1, keeping every emitted query a valid non-wrapping range (the blocks
/// then overlap; the union still covers q).
///
/// Preconditions: q.first <= q.last < domain, 1 <= k <= domain.
std::vector<FixedQuery> Decompose(const RangeQuery& q, uint64_t k,
                                  uint64_t domain);

/// The modular interval a fixed-length-k query covers.
inline ModularInterval CoverageOf(const FixedQuery& fq, uint64_t k,
                                  uint64_t domain) {
  return ModularInterval(fq.start, k, domain);
}

}  // namespace mope::query

#endif  // MOPE_QUERY_QUERY_TYPES_H_
