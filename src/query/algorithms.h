#ifndef MOPE_QUERY_ALGORITHMS_H_
#define MOPE_QUERY_ALGORITHMS_H_

/// \file algorithms.h
/// The paper's query-execution algorithms.
///
/// A QueryAlgorithm turns each user range query into a *batch* of
/// fixed-length-k queries: the τk decomposition of the real query plus fake
/// queries sampled from a completion distribution, randomly permuted. The
/// number of fakes per real query is drawn directly from the geometric
/// distribution Geom(α) — the Section 5 optimization that collapses the
/// repeated Bernoulli trials of the in-paper pseudocode into one draw with
/// the identical distribution.
///
///  * UniformQueryAlgorithm  — QueryU  (Section 3.1), perceived dist U.
///  * PeriodicQueryAlgorithm — QueryP[ρ] (Section 3.2), perceived dist P_ρ.
///  * AdaptiveQueryAlgorithm — AdaptiveQueryU / AdaptiveQueryP (Section 4):
///    the distribution is learned online from a buffer of past queries; one
///    query is issued per step, and a "real" execution is a uniform draw
///    from the buffer (identical to a draw from the current estimate of Q).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dist/completion.h"
#include "dist/query_buffer.h"
#include "query/query_types.h"

namespace mope::query {

/// Common configuration for all algorithms.
struct QueryConfig {
  uint64_t domain = 0;  ///< M.
  uint64_t k = 1;       ///< Fixed query length (1 <= k <= M).
};

/// Abstract interface: one user query in, one permuted batch out.
class QueryAlgorithm {
 public:
  virtual ~QueryAlgorithm() = default;

  /// Processes a user query: returns the decomposed real queries and the
  /// fake queries, permuted. `rng` drives the coin flips, fake sampling and
  /// the permutation.
  virtual Result<std::vector<FixedQuery>> Process(const RangeQuery& q,
                                                  mope::BitSource* rng) = 0;

  /// The static mixing plan driving this algorithm, when one exists: the
  /// non-adaptive algorithms always carry one; the adaptive algorithm only
  /// once its cross-over policy froze the estimate. Null otherwise. The
  /// proxy's mix-health gauges compare the realized fake rate and sampled
  /// start distribution against this plan's alpha and perceived target.
  virtual const dist::MixPlan* mix_plan() const { return nullptr; }

  const QueryConfig& config() const { return config_; }

 protected:
  explicit QueryAlgorithm(const QueryConfig& config) : config_(config) {}

  QueryConfig config_;
};

/// QueryU: perceived query distribution uniform over all M start points
/// (including wrap-around starts). Expected fakes per transformed real
/// query: µ_Q·M - 1.
class UniformQueryAlgorithm final : public QueryAlgorithm {
 public:
  /// `q_starts` is the known distribution of transformed-query start points.
  static Result<std::unique_ptr<UniformQueryAlgorithm>> Create(
      const QueryConfig& config, const dist::Distribution& q_starts);

  Result<std::vector<FixedQuery>> Process(const RangeQuery& q,
                                          mope::BitSource* rng) override;

  const dist::MixPlan& plan() const { return plan_; }
  const dist::MixPlan* mix_plan() const override { return &plan_; }

 private:
  UniformQueryAlgorithm(const QueryConfig& config, dist::MixPlan plan)
      : QueryAlgorithm(config), plan_(std::move(plan)) {}

  dist::MixPlan plan_;
};

/// QueryP[ρ]: perceived query distribution ρ-periodic. Expected fakes per
/// transformed real query: η_Q·M - 1 <= M/ρ - 1. Leaks the log ρ
/// least-significant bits of the offset; ρ tunes security vs. efficiency.
class PeriodicQueryAlgorithm final : public QueryAlgorithm {
 public:
  static Result<std::unique_ptr<PeriodicQueryAlgorithm>> Create(
      const QueryConfig& config, const dist::Distribution& q_starts,
      uint64_t period);

  Result<std::vector<FixedQuery>> Process(const RangeQuery& q,
                                          mope::BitSource* rng) override;

  uint64_t period() const { return period_; }
  const dist::MixPlan& plan() const { return plan_; }
  const dist::MixPlan* mix_plan() const override { return &plan_; }

 private:
  PeriodicQueryAlgorithm(const QueryConfig& config, uint64_t period,
                         dist::MixPlan plan)
      : QueryAlgorithm(config), period_(period), plan_(std::move(plan)) {}

  uint64_t period_;
  dist::MixPlan plan_;
};

/// AdaptiveQueryU / AdaptiveQueryP (Section 4). Configure with period == 0
/// for the uniform target, or a divisor of M for the ρ-periodic target.
///
/// For each transformed piece of an incoming query, the algorithm adds the
/// piece to the buffer, then repeatedly recomputes (µ, Q̄) — or (η, Q̄ρ) —
/// from the buffer and flips the α-coin: tails executes a completion-sampled
/// fake; heads executes the real piece and moves on. Because the piece was
/// itself drawn from the user's distribution and the buffer *is* the current
/// estimate of that distribution, executing the piece on heads is
/// distributed identically to executing a uniform draw from the buffer —
/// the property the Section 7 security argument needs — while converging to
/// the non-adaptive algorithm's E[fakes] = µ_Q·M - 1 per piece (Figure 16).
/// Cross-over policy: when to declare the distribution "learned" and switch
/// to the static algorithm (the open question at the end of Section 4).
/// The estimate is snapshotted every `check_interval` observed pieces; when
/// the total-variation distance between consecutive snapshots drops below
/// `tv_threshold` (and at least `min_observations` pieces were seen), the
/// current mixing plan is frozen and buffer maintenance stops.
struct CrossOverPolicy {
  double tv_threshold = 0.0;  ///< 0 disables freezing (pure Section 4 mode).
  uint64_t min_observations = 256;
  uint64_t check_interval = 128;

  bool enabled() const { return tv_threshold > 0.0; }
};

class AdaptiveQueryAlgorithm final : public QueryAlgorithm {
 public:
  static Result<std::unique_ptr<AdaptiveQueryAlgorithm>> Create(
      const QueryConfig& config, uint64_t period,
      const CrossOverPolicy& policy = CrossOverPolicy{});

  /// Feeds the query's pieces into the buffer and executes each of them
  /// (plus its preceding fakes); returns all issued queries in order.
  Result<std::vector<FixedQuery>> Process(const RangeQuery& q,
                                          mope::BitSource* rng) override;

  /// The learned query-start buffer (the current estimate of Q).
  const dist::QueryBuffer& buffer() const { return buffer_; }

  /// True once the cross-over policy froze the plan.
  bool frozen() const { return frozen_plan_.has_value(); }

  /// Before the freeze the plan is still being learned per piece, so there
  /// is no static expectation to audit against.
  const dist::MixPlan* mix_plan() const override {
    return frozen_plan_ ? &*frozen_plan_ : nullptr;
  }

 private:
  AdaptiveQueryAlgorithm(const QueryConfig& config, uint64_t period,
                         const CrossOverPolicy& policy)
      : QueryAlgorithm(config), period_(period), policy_(policy),
        buffer_(config.domain) {}

  /// Evaluates the cross-over policy after a new observation.
  Status MaybeFreeze();

  uint64_t period_;  // 0 => uniform target
  CrossOverPolicy policy_;
  dist::QueryBuffer buffer_;
  std::optional<dist::Distribution> snapshot_;
  std::optional<dist::MixPlan> frozen_plan_;
};

}  // namespace mope::query

#endif  // MOPE_QUERY_ALGORITHMS_H_
