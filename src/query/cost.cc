#include "query/cost.h"

namespace mope::query {

RecordCounter::RecordCounter(std::vector<uint64_t> counts_per_value)
    : counts_(std::move(counts_per_value)) {
  MOPE_CHECK(!counts_.empty(), "record counter needs a non-empty domain");
  prefix_.resize(counts_.size() + 1, 0);
  for (size_t i = 0; i < counts_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + counts_[i];
  }
}

RecordCounter RecordCounter::FromHistogram(const Histogram& hist) {
  std::vector<uint64_t> counts(hist.size());
  for (uint64_t i = 0; i < hist.size(); ++i) counts[i] = hist.count(i);
  return RecordCounter(std::move(counts));
}

uint64_t RecordCounter::CountBetween(uint64_t first, uint64_t last) const {
  MOPE_CHECK(first <= last && last < counts_.size(), "invalid count interval");
  return prefix_[last + 1] - prefix_[first];
}

uint64_t RecordCounter::CountIn(const ModularInterval& interval) const {
  MOPE_CHECK(interval.domain() == counts_.size(),
             "interval domain does not match the record counter");
  std::array<Segment, 2> segments;
  const int n = interval.ToSegments(&segments);
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += CountBetween(segments[i].lo, segments[i].hi);
  }
  return total;
}

CostAccumulator::CostAccumulator(const RecordCounter* counter, uint64_t k)
    : counter_(counter), k_(k) {
  MOPE_CHECK(counter != nullptr, "cost accumulator needs a record counter");
  MOPE_CHECK(k >= 1, "cost accumulator needs k >= 1");
}

void CostAccumulator::AddBatch(const RangeQuery& q,
                               const std::vector<FixedQuery>& batch) {
  const uint64_t answer = counter_->CountBetween(q.first, q.last);
  ++real_queries_;
  real_records_ += answer;
  real_records_mod_k_ += answer % k_;
  for (const FixedQuery& fq : batch) {
    if (fq.kind == QueryKind::kReal) {
      ++transformed_queries_;
    } else {
      ++fake_queries_;
      fake_records_ +=
          counter_->CountIn(CoverageOf(fq, k_, counter_->domain()));
    }
  }
}

double CostAccumulator::Bandwidth() const {
  if (real_records_ == 0) return 0.0;
  return static_cast<double>(fake_records_ + real_records_mod_k_) /
         static_cast<double>(real_records_);
}

double CostAccumulator::Requests() const {
  if (real_queries_ == 0) return 0.0;
  return static_cast<double>(transformed_queries_ + fake_queries_) /
         static_cast<double>(real_queries_);
}

}  // namespace mope::query
