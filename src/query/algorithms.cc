#include "query/algorithms.h"

#include <algorithm>

namespace mope::query {

namespace {

Status ValidateConfig(const QueryConfig& config) {
  if (config.domain == 0) {
    return Status::InvalidArgument("query domain must be positive");
  }
  if (config.k == 0 || config.k > config.domain) {
    return Status::InvalidArgument("fixed length k must be in [1, domain]");
  }
  return Status::OK();
}

Status ValidateQuery(const RangeQuery& q, const QueryConfig& config) {
  if (q.first > q.last || q.last >= config.domain) {
    return Status::InvalidArgument("range query endpoints invalid");
  }
  return Status::OK();
}

void ShuffleBatch(std::vector<FixedQuery>* batch, mope::BitSource* rng) {
  for (size_t i = batch->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng->UniformUint64(i));
    std::swap((*batch)[i - 1], (*batch)[j]);
  }
}

/// Emits the τk pieces of q plus Geom(α) completion-sampled fakes per piece,
/// permuted — shared by QueryU and QueryP, which differ only in their plan.
Result<std::vector<FixedQuery>> MixAndPermute(const RangeQuery& q,
                                              const QueryConfig& config,
                                              const dist::MixPlan& plan,
                                              mope::BitSource* rng) {
  std::vector<FixedQuery> batch = Decompose(q, config.k, config.domain);
  const size_t reals = batch.size();
  for (size_t i = 0; i < reals; ++i) {
    const uint64_t fakes = (plan.alpha >= 1.0) ? 0 : rng->Geometric(plan.alpha);
    for (uint64_t f = 0; f < fakes; ++f) {
      batch.push_back(FixedQuery{plan.completion.Sample(rng), QueryKind::kFake});
    }
  }
  ShuffleBatch(&batch, rng);
  return batch;
}

}  // namespace

Result<std::unique_ptr<UniformQueryAlgorithm>> UniformQueryAlgorithm::Create(
    const QueryConfig& config, const dist::Distribution& q_starts) {
  MOPE_RETURN_NOT_OK(ValidateConfig(config));
  if (q_starts.size() != config.domain) {
    return Status::InvalidArgument(
        "query-start distribution size must equal the domain");
  }
  MOPE_ASSIGN_OR_RETURN(dist::MixPlan plan, dist::MakeUniformPlan(q_starts));
  return std::unique_ptr<UniformQueryAlgorithm>(
      new UniformQueryAlgorithm(config, std::move(plan)));
}

Result<std::vector<FixedQuery>> UniformQueryAlgorithm::Process(
    const RangeQuery& q, mope::BitSource* rng) {
  MOPE_RETURN_NOT_OK(ValidateQuery(q, config_));
  return MixAndPermute(q, config_, plan_, rng);
}

Result<std::unique_ptr<PeriodicQueryAlgorithm>> PeriodicQueryAlgorithm::Create(
    const QueryConfig& config, const dist::Distribution& q_starts,
    uint64_t period) {
  MOPE_RETURN_NOT_OK(ValidateConfig(config));
  if (q_starts.size() != config.domain) {
    return Status::InvalidArgument(
        "query-start distribution size must equal the domain");
  }
  MOPE_ASSIGN_OR_RETURN(dist::MixPlan plan,
                        dist::MakePeriodicPlan(q_starts, period));
  return std::unique_ptr<PeriodicQueryAlgorithm>(
      new PeriodicQueryAlgorithm(config, period, std::move(plan)));
}

Result<std::vector<FixedQuery>> PeriodicQueryAlgorithm::Process(
    const RangeQuery& q, mope::BitSource* rng) {
  MOPE_RETURN_NOT_OK(ValidateQuery(q, config_));
  return MixAndPermute(q, config_, plan_, rng);
}

Result<std::unique_ptr<AdaptiveQueryAlgorithm>> AdaptiveQueryAlgorithm::Create(
    const QueryConfig& config, uint64_t period, const CrossOverPolicy& policy) {
  MOPE_RETURN_NOT_OK(ValidateConfig(config));
  if (period != 0 && config.domain % period != 0) {
    return Status::InvalidArgument("period must divide the domain (or be 0)");
  }
  if (policy.enabled() && policy.check_interval == 0) {
    return Status::InvalidArgument("cross-over check interval must be > 0");
  }
  return std::unique_ptr<AdaptiveQueryAlgorithm>(
      new AdaptiveQueryAlgorithm(config, period, policy));
}

Status AdaptiveQueryAlgorithm::MaybeFreeze() {
  if (!policy_.enabled() || frozen_plan_.has_value()) return Status::OK();
  if (buffer_.size() < policy_.min_observations) return Status::OK();
  if (buffer_.size() % policy_.check_interval != 0) return Status::OK();

  MOPE_ASSIGN_OR_RETURN(dist::Distribution estimate, buffer_.Estimate());
  if (snapshot_.has_value() &&
      estimate.TotalVariationDistance(*snapshot_) < policy_.tv_threshold) {
    // Learned: freeze the plan; from now on this behaves like the static
    // QueryU / QueryP initialized with the learned distribution.
    MOPE_ASSIGN_OR_RETURN(dist::MixPlan plan,
                          period_ == 0
                              ? dist::MakeUniformPlan(estimate)
                              : dist::MakePeriodicPlan(estimate, period_));
    frozen_plan_ = std::move(plan);
  }
  snapshot_ = std::move(estimate);
  return Status::OK();
}

Result<std::vector<FixedQuery>> AdaptiveQueryAlgorithm::Process(
    const RangeQuery& q, mope::BitSource* rng) {
  MOPE_RETURN_NOT_OK(ValidateQuery(q, config_));
  std::vector<FixedQuery> issued;
  for (const FixedQuery& piece : Decompose(q, config_.k, config_.domain)) {
    const dist::MixPlan* plan = nullptr;
    dist::MixPlan fresh;
    if (frozen_plan_.has_value()) {
      plan = &*frozen_plan_;
    } else {
      buffer_.Add(piece.start);
      MOPE_RETURN_NOT_OK(MaybeFreeze());
      if (frozen_plan_.has_value()) {
        plan = &*frozen_plan_;
      } else {
        // The buffer only changes when a new piece arrives, so the plan is
        // constant across this piece's coin flips — compute it once and
        // draw the fake count from Geom(α) (Section 5 optimization).
        MOPE_ASSIGN_OR_RETURN(fresh, period_ == 0
                                         ? buffer_.UniformPlan()
                                         : buffer_.PeriodicPlan(period_));
        plan = &fresh;
      }
    }
    const uint64_t fakes =
        (plan->alpha >= 1.0) ? 0 : rng->Geometric(plan->alpha);
    for (uint64_t f = 0; f < fakes; ++f) {
      issued.push_back(
          FixedQuery{plan->completion.Sample(rng), QueryKind::kFake});
    }
    issued.push_back(piece);
  }
  return issued;
}

}  // namespace mope::query
