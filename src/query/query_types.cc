#include "query/query_types.h"

namespace mope::query {

std::vector<FixedQuery> Decompose(const RangeQuery& q, uint64_t k,
                                  uint64_t domain) {
  MOPE_CHECK(q.first <= q.last && q.last < domain, "invalid range query");
  MOPE_CHECK(k >= 1 && k <= domain, "fixed length k must be in [1, domain]");

  std::vector<FixedQuery> out;
  const uint64_t len = q.length();
  const uint64_t blocks = (len + k - 1) / k;
  out.reserve(blocks);
  for (uint64_t b = 0; b < blocks; ++b) {
    uint64_t start = q.first + b * k;
    // Keep the block inside the domain (the tail block of a query that ends
    // near M-1 is shifted back; it overlaps the previous block).
    if (start + k > domain) start = domain - k;
    out.push_back(FixedQuery{start, QueryKind::kReal});
  }
  return out;
}

}  // namespace mope::query
