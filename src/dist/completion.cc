#include "dist/completion.h"

#include <algorithm>
#include <string>
#include <vector>

namespace mope::dist {

namespace {

/// Treats mixing weights that are almost-one as exactly one: when the user's
/// distribution already equals the target, µM - 1 == 0 and the completion is
/// undefined (and unneeded).
constexpr double kAlphaOneEps = 1e-12;

}  // namespace

Result<MixPlan> MakeUniformPlan(const Distribution& q) {
  const uint64_t m = q.size();
  const double mu = q.max_prob();
  const double denom = mu * static_cast<double>(m) - 1.0;

  MixPlan plan;
  plan.perceived = Distribution::Uniform(m);
  if (denom <= kAlphaOneEps) {
    // Q is already uniform: always execute the real query.
    plan.alpha = 1.0;
    plan.completion = Distribution::Uniform(m);
    return plan;
  }
  plan.alpha = 1.0 / (mu * static_cast<double>(m));

  std::vector<double> weights(m);
  for (uint64_t i = 0; i < m; ++i) weights[i] = mu - q.prob(i);
  MOPE_ASSIGN_OR_RETURN(plan.completion,
                        Distribution::FromWeights(std::move(weights)));
  return plan;
}

Result<double> AverageClassMaximum(const Distribution& q, uint64_t period) {
  const uint64_t m = q.size();
  if (period == 0 || period > m) {
    return Status::InvalidArgument("period must be in [1, M]");
  }
  if (m % period != 0) {
    return Status::InvalidArgument("period " + std::to_string(period) +
                                   " must divide the domain size " +
                                   std::to_string(m));
  }
  std::vector<double> class_max(period, 0.0);
  for (uint64_t i = 0; i < m; ++i) {
    class_max[i % period] = std::max(class_max[i % period], q.prob(i));
  }
  double eta = 0.0;
  for (double v : class_max) eta += v;
  return eta / static_cast<double>(period);
}

Result<MixPlan> MakePeriodicPlan(const Distribution& q, uint64_t period) {
  const uint64_t m = q.size();
  MOPE_ASSIGN_OR_RETURN(double eta, AverageClassMaximum(q, period));

  // Class maxima η_j, reused for both the completion and the target P_ρ.
  std::vector<double> class_max(period, 0.0);
  for (uint64_t i = 0; i < m; ++i) {
    class_max[i % period] = std::max(class_max[i % period], q.prob(i));
  }

  // Target P_ρ(i) = η_{i mod ρ} / (η·M): periodic, sums to 1.
  std::vector<double> target(m);
  for (uint64_t i = 0; i < m; ++i) target[i] = class_max[i % period];
  MixPlan plan;
  MOPE_ASSIGN_OR_RETURN(plan.perceived,
                        Distribution::FromWeights(std::move(target)));

  const double denom = eta * static_cast<double>(m) - 1.0;
  if (denom <= kAlphaOneEps) {
    // Q is already ρ-periodic (e.g. period == M): forward everything.
    plan.alpha = 1.0;
    plan.completion = plan.perceived;
    return plan;
  }
  plan.alpha = 1.0 / (eta * static_cast<double>(m));

  std::vector<double> weights(m);
  for (uint64_t i = 0; i < m; ++i) {
    weights[i] = class_max[i % period] - q.prob(i);
  }
  MOPE_ASSIGN_OR_RETURN(plan.completion,
                        Distribution::FromWeights(std::move(weights)));
  return plan;
}

}  // namespace mope::dist
