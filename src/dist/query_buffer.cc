#include "dist/query_buffer.h"

namespace mope::dist {

QueryBuffer::QueryBuffer(uint64_t domain) : histogram_(domain) {
  MOPE_CHECK(domain > 0, "query buffer domain must be positive");
}

void QueryBuffer::Add(uint64_t start) {
  MOPE_CHECK(start < domain(), "query start outside the domain");
  entries_.push_back(start);
  histogram_.Add(start);
}

uint64_t QueryBuffer::SampleReal(mope::BitSource* bits) const {
  MOPE_CHECK(!entries_.empty(), "sampling from an empty query buffer");
  return entries_[bits->UniformUint64(entries_.size())];
}

Result<Distribution> QueryBuffer::Estimate() const {
  if (entries_.empty()) {
    return Status::InvalidArgument("query buffer is empty");
  }
  return Distribution::FromHistogram(histogram_);
}

Result<MixPlan> QueryBuffer::UniformPlan() const {
  MOPE_ASSIGN_OR_RETURN(Distribution q, Estimate());
  return MakeUniformPlan(q);
}

Result<MixPlan> QueryBuffer::PeriodicPlan(uint64_t period) const {
  MOPE_ASSIGN_OR_RETURN(Distribution q, Estimate());
  return MakePeriodicPlan(q, period);
}

}  // namespace mope::dist
