#ifndef MOPE_DIST_QUERY_BUFFER_H_
#define MOPE_DIST_QUERY_BUFFER_H_

/// \file query_buffer.h
/// The online query-distribution estimator of Section 4.
///
/// The adaptive algorithms do not assume the user's query distribution is
/// known a priori; instead the proxy maintains a buffer of the query starts
/// seen so far and treats the buffer as the current histogram estimate of Q.
/// Sampling a "real" query uniformly from the buffer (with replacement, the
/// buffer unmodified) is identical to sampling from the current estimate —
/// the property the security argument of Section 7 relies on.

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "dist/completion.h"

namespace mope::dist {

class QueryBuffer {
 public:
  /// Buffer over query-start domain {0, ..., domain-1}.
  explicit QueryBuffer(uint64_t domain);

  uint64_t domain() const { return histogram_.size(); }
  uint64_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Records one observed real-query start point.
  void Add(uint64_t start);

  /// Uniform draw from the buffer with replacement (the buffer itself is
  /// unmodified) — equivalent to a draw from the current estimate of Q.
  uint64_t SampleReal(mope::BitSource* bits) const;

  /// The buffer as a histogram over the domain.
  const Histogram& histogram() const { return histogram_; }

  /// Current estimate of Q. Fails when the buffer is empty.
  Result<Distribution> Estimate() const;

  /// Mixing plan against the uniform target, from the current estimate.
  Result<MixPlan> UniformPlan() const;

  /// Mixing plan against the ρ-periodic target, from the current estimate.
  Result<MixPlan> PeriodicPlan(uint64_t period) const;

 private:
  std::vector<uint64_t> entries_;
  Histogram histogram_;
};

}  // namespace mope::dist

#endif  // MOPE_DIST_QUERY_BUFFER_H_
