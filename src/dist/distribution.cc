#include "dist/distribution.h"

#include <algorithm>
#include <cmath>

namespace mope::dist {

Distribution::Distribution(std::vector<double> probs)
    : probs_(std::move(probs)) {
  cdf_.resize(probs_.size());
  double acc = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    cdf_[i] = acc;
    if (probs_[i] > max_prob_) {
      max_prob_ = probs_[i];
      argmax_ = i;
    }
  }
  // Pin the final CDF entry so Sample can never fall off the end.
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

Result<Distribution> Distribution::FromWeights(std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("distribution needs at least one element");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || std::isnan(w)) {  // also catches NaN
      return Status::InvalidArgument("distribution weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("distribution weights sum to zero");
  }
  for (double& w : weights) w /= total;
  return Distribution(std::move(weights));
}

Result<Distribution> Distribution::FromHistogram(const Histogram& hist) {
  if (hist.total() == 0) {
    return Status::InvalidArgument("histogram has no observations");
  }
  return Distribution(hist.Normalized());
}

Distribution Distribution::Uniform(uint64_t size) {
  MOPE_CHECK(size > 0, "uniform distribution needs size > 0");
  return Distribution(
      std::vector<double>(size, 1.0 / static_cast<double>(size)));
}

Distribution Distribution::PointMass(uint64_t size, uint64_t at) {
  MOPE_CHECK(size > 0 && at < size, "point mass location out of range");
  std::vector<double> probs(size, 0.0);
  probs[at] = 1.0;
  return Distribution(std::move(probs));
}

uint64_t Distribution::Sample(mope::BitSource* bits) const {
  const double u = bits->UniformDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return probs_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double Distribution::TotalVariationDistance(const Distribution& other) const {
  MOPE_CHECK(other.size() == size(), "TV distance requires equal sizes");
  double tv = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    tv += std::abs(probs_[i] - other.probs_[i]);
  }
  return tv / 2.0;
}

}  // namespace mope::dist
