#ifndef MOPE_DIST_COMPLETION_H_
#define MOPE_DIST_COMPLETION_H_

/// \file completion.h
/// The completion distributions at the heart of the paper's query algorithms.
///
/// Given the user's query-start distribution Q on [M], the proxy mixes real
/// queries (with probability α per trial) and fake queries drawn from a
/// completion distribution Q̄ so that the *perceived* distribution
/// α·Q + (1-α)·Q̄ equals a target that is independent of the secret offset:
///
///  * Uniform completion (Section 3.1): target U, α = 1/(µ_Q·M), and
///    Q̄(i) = (µ_Q - Q(i)) / (µ_Q·M - 1). Expected fakes per real query is
///    µ_Q·M - 1.
///  * ρ-periodic completion (Section 3.2): target P_ρ with period ρ | M,
///    α = 1/(η_Q·M) where η_Q is the average over congruence classes mod ρ
///    of the class-maximum probability, and
///    Q̄_ρ(i) = (η_{j(i)} - Q(i)) / (η_Q·M - 1). Expected fakes per real
///    query is η_Q·M - 1 <= M/ρ - ... (always <= the uniform scheme's).
///
/// Both α values are chosen maximal, minimizing the expected number of fake
/// queries subject to the perceived-distribution constraint.

#include <cstdint>

#include "dist/distribution.h"

namespace mope::dist {

/// A mixing plan: the coin bias and the fake-query distribution.
struct MixPlan {
  /// Per-trial probability of executing the real query ("coin = 1").
  double alpha = 1.0;

  /// The completion distribution fakes are drawn from. When alpha == 1 the
  /// target already equals Q and this is never sampled (kept valid anyway).
  Distribution completion = Distribution::Uniform(1);

  /// The perceived distribution the mix realizes (U or P_ρ) — exposed so
  /// tests and security experiments can verify the mixing identity.
  Distribution perceived = Distribution::Uniform(1);

  /// E[# fake queries per real query] = 1/alpha - 1 (geometric).
  double expected_fakes_per_real() const { return 1.0 / alpha - 1.0; }
};

/// Builds the Section 3.1 plan: perceived distribution uniform on [M].
Result<MixPlan> MakeUniformPlan(const Distribution& q);

/// Builds the Section 3.2 plan with the given period. Fails unless
/// 1 <= period <= M and period divides M. period == 1 degenerates to the
/// uniform plan; period == M forwards every query unmodified (alpha == 1).
Result<MixPlan> MakePeriodicPlan(const Distribution& q, uint64_t period);

/// η_Q for the given distribution and period: the average over congruence
/// classes modulo `period` of the class-maximum probability (Section 3.2).
Result<double> AverageClassMaximum(const Distribution& q, uint64_t period);

}  // namespace mope::dist

#endif  // MOPE_DIST_COMPLETION_H_
