#ifndef MOPE_DIST_DISTRIBUTION_H_
#define MOPE_DIST_DISTRIBUTION_H_

/// \file distribution.h
/// Discrete probability distributions over {0, ..., size-1} with exact
/// inversion sampling — the representation the proxy uses for the user's
/// query-start distribution Q (Section 3.1 reduces every query to a
/// fixed-length-k query, so a distribution over M start points suffices).

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"

namespace mope::dist {

class Distribution {
 public:
  /// Builds from non-negative weights (need not sum to 1; normalized here).
  /// Fails when the vector is empty, contains a negative/NaN weight, or sums
  /// to zero.
  static Result<Distribution> FromWeights(std::vector<double> weights);

  /// Builds from a histogram with at least one observation.
  static Result<Distribution> FromHistogram(const Histogram& hist);

  /// The uniform distribution on `size` elements.
  static Distribution Uniform(uint64_t size);

  /// A point mass at `at` on a domain of `size` elements.
  static Distribution PointMass(uint64_t size, uint64_t at);

  uint64_t size() const { return probs_.size(); }
  double prob(uint64_t i) const { return probs_[i]; }
  const std::vector<double>& probs() const { return probs_; }

  /// µ_D: the largest single-element probability.
  double max_prob() const { return max_prob_; }

  /// Index attaining max_prob (first on ties).
  uint64_t argmax() const { return argmax_; }

  /// Inversion sampling ("inversion method", Devroye 1986): one uniform
  /// double, then a binary search over the cached CDF.
  uint64_t Sample(mope::BitSource* bits) const;

  /// Total variation distance to another distribution of the same size.
  double TotalVariationDistance(const Distribution& other) const;

 private:
  explicit Distribution(std::vector<double> probs);

  std::vector<double> probs_;
  std::vector<double> cdf_;
  double max_prob_ = 0.0;
  uint64_t argmax_ = 0;
};

}  // namespace mope::dist

#endif  // MOPE_DIST_DISTRIBUTION_H_
