#ifndef MOPE_STORAGE_BUFFER_POOL_H_
#define MOPE_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// Fixed-size page cache between the paged structures and the DiskManager:
/// pinned frames, LRU replacement of unpinned ones, dirty write-back.
///
/// Callers obtain pages as PageGuard values — movable RAII pins. While a
/// guard is alive its frame cannot be evicted and its bytes may be read or
/// (after MarkDirty) written without holding any pool lock; the pin count
/// is the synchronization statement. Dropping the guard unpins.
///
/// WAL-ahead: evicting or flushing a dirty frame first calls the
/// `ensure_durable` callback with the page's header LSN, so every log
/// record that produced the page's contents is on the medium before the
/// page itself is. This is the rule that makes redo-from-the-log a
/// complete story (see wal.h); the pool enforces it so no caller can
/// forget.
///
/// Lock ranks: the pool's mutex (kStoragePool) is taken first and nests
/// the WAL's (kStorageWal, via ensure_durable) and the disk's
/// (kStorageDisk, via WritePage/ReadPage) inside it.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mope::storage {

class BufferPool;

/// RAII pin on one buffer-pool frame. Movable, not copyable. An invalid
/// (default or moved-from) guard has data() == nullptr.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() const { return data_; }
  PageView view() const { return PageView(data_); }

  /// Declares that the caller wrote the page; write-back happens at
  /// eviction or FlushAll, not here.
  void MarkDirty() { dirty_ = true; }

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId id, char* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

class BufferPool {
 public:
  /// `ensure_durable(lsn)` must make every WAL record with LSN <= lsn
  /// durable (Wal::SyncTo). Pass a no-op returning OK when running without
  /// a WAL (benches, tools). `metrics` may be null (global registry).
  using EnsureDurable = std::function<Status(uint64_t lsn)>;
  /// `clock` times the miss-stall histogram (nullptr = SystemClock).
  BufferPool(DiskManager* disk, size_t num_frames, EnsureDurable ensure_durable,
             obs::MetricsRegistry* metrics, obs::Clock* clock = nullptr);

  /// Pins page `id`, reading it from disk on a miss (evicting an unpinned
  /// frame if the pool is full). Internal error when every frame is pinned
  /// (callers hold only O(1) pins, so that is a bug, not load).
  Result<PageGuard> Fetch(PageId id) MOPE_EXCLUDES(mutex_);

  /// Allocates a fresh page id, pins a frame for it and formats it as
  /// `type`. The new page is born dirty.
  Result<PageGuard> Create(PageType type) MOPE_EXCLUDES(mutex_);

  /// Writes back every dirty resident frame (pinned ones included — the
  /// caller quiesces writers first; checkpoint does). Does not sync the
  /// page file; the checkpoint protocol does that after.
  Status FlushAll() MOPE_EXCLUDES(mutex_);

  size_t frame_count() const { return frames_.size(); }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  void Unpin(size_t frame, bool dirty) MOPE_EXCLUDES(mutex_);

  /// Finds a frame to (re)use: a never-used one, else the LRU unpinned one
  /// (writing it back if dirty). ResourceExhausted when all are pinned.
  Result<size_t> AcquireFrameLocked() MOPE_REQUIRES(mutex_);
  Status WriteBackLocked(Frame& frame) MOPE_REQUIRES(mutex_);

  DiskManager* const disk_;
  const EnsureDurable ensure_durable_;

  mutable Mutex mutex_{lock_rank::kStoragePool};
  std::vector<Frame> frames_ MOPE_GUARDED_BY(mutex_);
  std::unordered_map<PageId, size_t> page_table_ MOPE_GUARDED_BY(mutex_);
  /// Unpinned resident frames, least-recently-released first.
  std::list<size_t> lru_ MOPE_GUARDED_BY(mutex_);
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      MOPE_GUARDED_BY(mutex_);
  size_t next_fresh_frame_ MOPE_GUARDED_BY(mutex_) = 0;

  obs::Clock* clock_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* writebacks_;
  obs::Counter* flushes_;
  /// Time a Fetch spent stalled on the disk read of a missed page
  /// (`storage.pool.miss_stall_ns`): the working-set health signal.
  obs::ExpHistogram* miss_stall_ns_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_BUFFER_POOL_H_
