#ifndef MOPE_STORAGE_ENV_H_
#define MOPE_STORAGE_ENV_H_

/// \file env.h
/// File-system abstraction for the storage engine (LevelDB-style Env).
///
/// Everything in src/storage/ — and, by linter rule R10, everything in src/
/// outside this directory — does file I/O through this interface instead of
/// raw open/fstream calls. Three implementations:
///
///   - Env::Posix(): the real thing (pread/pwrite/fsync/rename).
///   - InMemEnv: a deterministic in-memory file system for tests. It tracks,
///     per file, which bytes have been fsync'd, so SimulateCrash() models a
///     kill -9 / power cut exactly: every file reverts to its last-synced
///     contents. A durability claim that survives InMemEnv's crash is a
///     claim about fsync discipline, not luck.
///   - FaultyEnv: wraps another Env and injects the failures disks actually
///     produce — short (torn) writes, failed writes, failed fsyncs — after a
///     configurable countdown, so recovery paths are tested against the
///     exact byte states a mid-write crash leaves behind.
///
/// The trust boundary note that applies to all of src/storage/: this layer
/// moves opaque bytes. MOPE ciphertexts arrive already encrypted by the
/// proxy; no key material or plaintext ever reaches an Env.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mope::storage {

/// Random-access file handle (the page file). Offsets are absolute; writes
/// past the current size extend the file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads exactly `n` bytes at `offset` into `*out` (resized). Reading past
  /// EOF is OutOfRange — the caller tracks sizes, a short read is a bug or a
  /// truncated file, never silently padded.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) = 0;

  virtual Status Write(uint64_t offset, std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Result<uint64_t> Size() = 0;
};

/// Append-only file handle (the write-ahead log).
class AppendFile {
 public:
  virtual ~AppendFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Result<uint64_t> Size() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if absent) a random-access read/write file.
  virtual Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) = 0;

  /// Opens a file for appending; `truncate` discards existing contents.
  virtual Result<std::unique_ptr<AppendFile>> OpenAppend(
      const std::string& path, bool truncate) = 0;

  /// Whole-file read; NotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Durable whole-file replace: writes `contents` to a temp file in the
  /// same directory, fsyncs it, renames it over `path`, and fsyncs the
  /// directory. A crash at any point leaves either the old file or the new
  /// one, never a prefix of the new one. This is what SaveCatalog and the
  /// storage meta file use.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view contents) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates a directory (OK if it already exists; parents must exist).
  virtual Status CreateDir(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Posix();
};

// ---------------------------------------------------------------------------
// In-memory environment (tests). Not thread-safe: storage-layer callers are
// serialized by the BufferPool/Wal locks above it, and tests are
// single-threaded by construction.
// ---------------------------------------------------------------------------

class InMemEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<AppendFile>> OpenAppend(const std::string& path,
                                                 bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;

  /// Models kill -9 / power loss: every file reverts to its last-synced
  /// contents and open handles keep working against the reverted state.
  /// WriteFileAtomic is journaled (rename is metadata): it survives whole.
  void SimulateCrash();

  /// Test introspection.
  uint64_t sync_count() const { return sync_count_; }

 private:
  friend class InMemRandomAccessFile;
  friend class InMemAppendFile;

  struct FileState {
    std::string data;         // current (possibly unsynced) contents
    std::string synced_data;  // contents as of the last fsync
  };

  std::map<std::string, std::shared_ptr<FileState>> files_;
  uint64_t sync_count_ = 0;
};

// ---------------------------------------------------------------------------
// Fault-injecting environment (tests). Wraps another Env; all handles opened
// through it share one failure countdown, so "the 7th write to any file
// fails" is expressible regardless of which component issues it.
// ---------------------------------------------------------------------------

class FaultyEnv : public Env {
 public:
  struct Faults {
    /// After this many successful data writes (Write/Append calls), the
    /// next one fails — and every one after it (the disk stays dead, like
    /// a crashed machine). Negative: never.
    int fail_after_writes = -1;
    /// When a write fails, first persist a prefix of the data (a torn
    /// write: the kernel got half a page out before power died).
    bool torn = false;
    /// Fraction of the failing write that still reaches the medium when
    /// torn (default: half).
    double torn_fraction = 0.5;
    /// Every Sync() fails (fsync returning EIO — the dreaded fsyncgate).
    bool fail_sync = false;
  };

  explicit FaultyEnv(Env* base) : base_(base) {}

  void set_faults(const Faults& faults) { faults_ = faults; }
  int writes_issued() const { return writes_issued_; }

  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<AppendFile>> OpenAppend(const std::string& path,
                                                 bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;

 private:
  friend class FaultyRandomAccessFile;
  friend class FaultyAppendFile;

  /// Returns the number of bytes of `n` that may be written (n = all, a
  /// torn prefix, or 0), or an error if the write must fail outright.
  /// Increments the write counter.
  Result<size_t> AdmitWrite(size_t n);
  Status AdmitSync();

  Env* base_;
  Faults faults_;
  int writes_issued_ = 0;
  bool dead_ = false;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_ENV_H_
