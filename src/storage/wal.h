#ifndef MOPE_STORAGE_WAL_H_
#define MOPE_STORAGE_WAL_H_

/// \file wal.h
/// Write-ahead log: append, group fsync, torn-tail-tolerant replay.
///
/// Record framing (little-endian):
///
///   offset  size  field
///        0     4  CRC-32 of everything after this field
///        4     4  payload length
///        8     8  LSN (monotone across the log's lifetime, never reused)
///       16     1  record type (WalRecordType)
///       17     n  payload
///
/// Appends are buffered in user space and pushed to the medium in groups:
/// one write + one fsync per `sync_every` records (group commit). A record
/// is *committed* once Sync() has covered it; a crash loses at most the
/// un-synced suffix, and replay recovers exactly the committed prefix —
/// ReadAll stops at the first truncated or checksum-bad record, which is
/// what a torn tail looks like.
///
/// Record types: the page-level records (full page image, heap append, heap
/// slot update) are owned by this layer — recovery redoes them without
/// knowing what a table is. kCatalog records are opaque here; the engine
/// encodes its DDL in them (engine/durability.h).
///
/// Idempotence contract: every record's LSN is stamped into the page it
/// touches; redo applies a record only when the page's LSN is older. A
/// checkpoint writes the durable meta *before* truncating the log, so a
/// crash between the two replays stale records — which the LSN guard (and
/// the meta's checkpoint LSN passed to ReadAll) turns into no-ops.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/env.h"

namespace mope::storage {

enum class WalRecordType : uint8_t {
  /// Opaque to storage; the engine's catalog/DDL records.
  kCatalog = 1,
  /// [u64 page_id][u16 slot][u16 len][len bytes] — slot appended to a heap
  /// page.
  kHeapAppend = 2,
  /// Same layout — slot rewritten in place (same or smaller size).
  kHeapUpdate = 3,
  /// [u64 page_id][kPageSize bytes] — full page image, logged on the first
  /// modification of a page in each checkpoint epoch so a torn page can be
  /// rebuilt from its image plus the records after it.
  kPageImage = 4,
  /// [u64 page_id][u64 next_page_id] — heap chain link: `page_id`'s `next`
  /// header field now points at a freshly allocated tail page.
  kHeapLink = 5,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kCatalog;
  std::string payload;
};

class Wal {
 public:
  /// Opens the log for appending (keeping existing contents — recovery
  /// reads them first via ReadAll). `next_lsn` must be greater than every
  /// LSN already in the file. `sync_every` = N groups N appends per fsync
  /// (1 = sync every record; 0 = only explicit Sync calls). `clock` times
  /// the per-fsync latency histogram (nullptr = SystemClock).
  static Result<std::unique_ptr<Wal>> Open(Env* env, const std::string& path,
                                           uint64_t next_lsn,
                                           uint64_t sync_every,
                                           obs::MetricsRegistry* metrics,
                                           obs::Clock* clock = nullptr);

  /// Appends one record, returns its LSN. May auto-Sync per policy.
  Result<uint64_t> Append(WalRecordType type, std::string_view payload)
      MOPE_EXCLUDES(mutex_);

  /// Flushes buffered appends and fsyncs: everything appended so far is
  /// committed when this returns OK. The group-commit point.
  Status Sync() MOPE_EXCLUDES(mutex_);

  /// WAL-ahead hook for the buffer pool: make every record with LSN <=
  /// `lsn` durable before a page stamped with that LSN hits the disk.
  Status SyncTo(uint64_t lsn) MOPE_EXCLUDES(mutex_);

  /// Truncates the log after a checkpoint and fsyncs the truncation. LSNs
  /// continue from where they were (never reused).
  Status Restart() MOPE_EXCLUDES(mutex_);

  uint64_t next_lsn() MOPE_EXCLUDES(mutex_);

  /// Replays the log at `path`: returns every well-formed record with
  /// LSN > `after_lsn`, stopping (not failing) at the first torn record.
  static Result<std::vector<WalRecord>> ReadAll(Env* env,
                                                const std::string& path,
                                                uint64_t after_lsn);

 private:
  Wal(Env* env, std::string path, std::unique_ptr<AppendFile> file,
      uint64_t next_lsn, uint64_t sync_every, obs::MetricsRegistry* metrics,
      obs::Clock* clock);

  Status SyncLocked() MOPE_REQUIRES(mutex_);

  Env* env_;
  const std::string path_;
  mutable Mutex mutex_{lock_rank::kStorageWal};
  std::unique_ptr<AppendFile> file_ MOPE_GUARDED_BY(mutex_);
  std::string pending_ MOPE_GUARDED_BY(mutex_);
  uint64_t next_lsn_ MOPE_GUARDED_BY(mutex_);
  uint64_t last_synced_lsn_ MOPE_GUARDED_BY(mutex_);
  uint64_t unsynced_records_ MOPE_GUARDED_BY(mutex_) = 0;
  const uint64_t sync_every_;

  obs::Clock* clock_;
  obs::Counter* records_;
  obs::Counter* bytes_;
  obs::Counter* syncs_;
  /// Latency of each fsync covering a commit group (`storage.wal.fsync_ns`):
  /// the number an operator watches when group commit is mistuned.
  obs::ExpHistogram* fsync_ns_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_WAL_H_
