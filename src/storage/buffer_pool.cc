#include "storage/buffer_pool.h"

#include <utility>

#include "obs/trace.h"

namespace mope::storage {

namespace {

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : obs::Registry();
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       EnsureDurable ensure_durable,
                       obs::MetricsRegistry* metrics, obs::Clock* clock)
    : disk_(disk),
      ensure_durable_(std::move(ensure_durable)),
      frames_(num_frames == 0 ? 1 : num_frames),
      clock_(clock != nullptr ? clock : obs::SystemClock()),
      hits_(OrGlobal(metrics)->GetCounter("storage.pool.hits")),
      misses_(OrGlobal(metrics)->GetCounter("storage.pool.misses")),
      evictions_(OrGlobal(metrics)->GetCounter("storage.pool.evictions")),
      writebacks_(OrGlobal(metrics)->GetCounter("storage.pool.writebacks")),
      flushes_(OrGlobal(metrics)->GetCounter("storage.pool.flushes")),
      miss_stall_ns_(
          OrGlobal(metrics)->GetHistogram("storage.pool.miss_stall_ns")) {}

Status BufferPool::WriteBackLocked(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  const obs::ScopedSpan span("storage.pool.writeback");
  // WAL-ahead: the log records that produced these bytes reach the medium
  // before the bytes do.
  MOPE_RETURN_NOT_OK(ensure_durable_(PageView(frame.data.get()).lsn()));
  MOPE_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.data.get()));
  frame.dirty = false;
  writebacks_->Increment();
  return Status::OK();
}

Result<size_t> BufferPool::AcquireFrameLocked() {
  if (next_fresh_frame_ < frames_.size()) {
    const size_t idx = next_fresh_frame_++;
    frames_[idx].data = std::make_unique<char[]>(kPageSize);
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool: all " +
                            std::to_string(frames_.size()) +
                            " frames pinned");
  }
  const obs::ScopedSpan span("storage.pool.evict");
  const size_t idx = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(idx);
  Frame& frame = frames_[idx];
  MOPE_RETURN_NOT_OK(WriteBackLocked(frame));
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  evictions_->Increment();
  return idx;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  MutexLock lock(&mutex_);
  if (auto it = page_table_.find(id); it != page_table_.end()) {
    const size_t idx = it->second;
    Frame& frame = frames_[idx];
    if (frame.pin_count == 0) {
      if (auto pos = lru_pos_.find(idx); pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    ++frame.pin_count;
    hits_->Increment();
    return PageGuard(this, idx, id, frame.data.get());
  }
  MOPE_ASSIGN_OR_RETURN(size_t idx, AcquireFrameLocked());
  Frame& frame = frames_[idx];
  Status read;
  {
    // A miss stalls its caller on a disk read; the span shows up in slow
    // query traces, the histogram in the scrape.
    const obs::ScopedSpan span("storage.pool.miss");
    const uint64_t start_ns = clock_->NowNanos();
    read = disk_->ReadPage(id, frame.data.get());
    miss_stall_ns_->Observe(clock_->NowNanos() - start_ns);
  }
  if (!read.ok()) {
    // The frame stays free-listed for the next acquirer.
    lru_pos_[idx] = lru_.insert(lru_.begin(), idx);
    return read;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = idx;
  misses_->Increment();
  return PageGuard(this, idx, id, frame.data.get());
}

Result<PageGuard> BufferPool::Create(PageType type) {
  MutexLock lock(&mutex_);
  MOPE_ASSIGN_OR_RETURN(size_t idx, AcquireFrameLocked());
  const PageId id = disk_->AllocatePage();
  Frame& frame = frames_[idx];
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  PageView(frame.data.get()).Format(type);
  page_table_[id] = idx;
  misses_->Increment();
  return PageGuard(this, idx, id, frame.data.get());
}

Status BufferPool::FlushAll() {
  // Spanned unconditionally: a checkpoint's flush belongs in its trace even
  // when every frame turns out to be clean.
  const obs::ScopedSpan span("storage.pool.flush");
  MutexLock lock(&mutex_);
  for (size_t idx = 0; idx < next_fresh_frame_; ++idx) {
    Frame& frame = frames_[idx];
    if (frame.page_id == kInvalidPageId) continue;
    MOPE_RETURN_NOT_OK(WriteBackLocked(frame));
  }
  flushes_->Increment();
  return Status::OK();
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  MutexLock lock(&mutex_);
  Frame& frame = frames_[frame_idx];
  MOPE_CHECK(frame.pin_count > 0, "unpin of an unpinned frame");
  if (dirty) frame.dirty = true;
  if (--frame.pin_count == 0) {
    lru_.push_back(frame_idx);
    lru_pos_[frame_idx] = std::prev(lru_.end());
  }
}

}  // namespace mope::storage
