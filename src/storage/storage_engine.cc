#include "storage/storage_engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/crc32.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "storage/page.h"
#include "storage/table_heap.h"

namespace mope::storage {

namespace {

constexpr char kMetaMagic[8] = {'M', 'O', 'P', 'E', 'M', 'E', 'T', '1'};

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : obs::Registry();
}

std::string PagesPath(const std::string& dir) { return dir + "/pages.db"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string MetaPath(const std::string& dir) { return dir + "/storage.meta"; }

struct Meta {
  uint64_t checkpoint_lsn = 0;
  uint64_t next_lsn = 1;
  uint64_t page_count = 0;
  std::string blob;
};

std::string EncodeMeta(const Meta& meta) {
  std::string out;
  out.reserve(8 + 32 + meta.blob.size() + 4);
  out.append(kMetaMagic, 8);
  char nums[32];
  StoreU64(nums, meta.checkpoint_lsn);
  StoreU64(nums + 8, meta.next_lsn);
  StoreU64(nums + 16, meta.page_count);
  StoreU64(nums + 24, meta.blob.size());
  out.append(nums, 32);
  out.append(meta.blob);
  char crc[4];
  StoreU32(crc, Crc32(out));
  out.append(crc, 4);
  return out;
}

Result<Meta> DecodeMeta(const std::string& bytes) {
  if (bytes.size() < 8 + 32 + 4 ||
      std::memcmp(bytes.data(), kMetaMagic, 8) != 0) {
    return Status::Corruption("storage.meta: bad magic or truncated");
  }
  const uint32_t stored = LoadU32(bytes.data() + bytes.size() - 4);
  if (stored != Crc32(std::string_view(bytes.data(), bytes.size() - 4))) {
    return Status::Corruption("storage.meta: checksum mismatch");
  }
  Meta meta;
  meta.checkpoint_lsn = LoadU64(bytes.data() + 8);
  meta.next_lsn = LoadU64(bytes.data() + 16);
  meta.page_count = LoadU64(bytes.data() + 24);
  const uint64_t blob_len = LoadU64(bytes.data() + 32);
  if (bytes.size() != 8 + 32 + blob_len + 4) {
    return Status::Corruption("storage.meta: blob length mismatch");
  }
  meta.blob = bytes.substr(40, blob_len);
  return meta;
}

}  // namespace

StorageEngine::StorageEngine(Env* env, std::string dir,
                             std::unique_ptr<DiskManager> disk,
                             std::unique_ptr<Wal> wal,
                             const StorageOptions& options)
    : env_(env),
      dir_(std::move(dir)),
      disk_(std::move(disk)),
      wal_(std::move(wal)),
      logger_(wal_.get()),
      recoveries_(
          OrGlobal(options.metrics)->GetCounter("storage.engine.recoveries")),
      recovered_records_counter_(OrGlobal(options.metrics)
                                     ->GetCounter(
                                         "storage.engine.recovered_records")),
      checkpoints_(OrGlobal(options.metrics)
                       ->GetCounter("storage.engine.checkpoints")) {
  pool_ = std::make_unique<BufferPool>(
      disk_.get(), std::max<size_t>(options.pool_frames, 8),
      [wal = wal_.get()](uint64_t lsn) { return wal->SyncTo(lsn); },
      options.metrics, options.clock);
}

Status StorageEngine::RedoRecords(DiskManager* disk,
                                  const std::vector<WalRecord>& records,
                                  std::vector<WalRecord>* catalog_records) {
  // Redo works on a private in-memory page cache and writes everything back
  // at the end: one read + one write per touched page, not per record.
  std::unordered_map<PageId, std::unique_ptr<char[]>> pages;
  auto get_page = [&](PageId id) -> Result<char*> {
    auto it = pages.find(id);
    if (it != pages.end()) return it->second.get();
    auto buf = std::make_unique<char[]>(kPageSize);
    // Every logged page modification is preceded by that page's full image
    // in the same epoch, so a redo target is either cached already or
    // readable on disk (it was flushed after the records now being redone).
    MOPE_RETURN_NOT_OK(disk->ReadPage(id, buf.get()));
    char* raw = buf.get();
    pages.emplace(id, std::move(buf));
    return raw;
  };

  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kCatalog:
        catalog_records->push_back(rec);
        break;
      case WalRecordType::kPageImage: {
        if (rec.payload.size() != 8 + kPageSize) {
          return Status::Corruption("page-image WAL record of wrong size");
        }
        const PageId id = LoadU64(rec.payload.data());
        auto buf = std::make_unique<char[]>(kPageSize);
        std::memcpy(buf.get(), rec.payload.data() + 8, kPageSize);
        pages[id] = std::move(buf);
        disk->ReserveThrough(id);
        break;
      }
      case WalRecordType::kHeapAppend: {
        MOPE_ASSIGN_OR_RETURN(HeapSlotPayload p,
                              DecodeHeapSlotPayload(rec.payload));
        MOPE_ASSIGN_OR_RETURN(char* raw, get_page(p.page_id));
        PageView page(raw);
        if (page.lsn() >= rec.lsn) break;  // already reflected on disk
        if (p.slot != page.count() ||
            !heap_page::HasRoom(page, p.record.size())) {
          return Status::Corruption("heap append redo does not fit page " +
                                    std::to_string(p.page_id));
        }
        heap_page::AppendSlot(page, p.record);
        page.set_lsn(rec.lsn);
        break;
      }
      case WalRecordType::kHeapUpdate: {
        MOPE_ASSIGN_OR_RETURN(HeapSlotPayload p,
                              DecodeHeapSlotPayload(rec.payload));
        MOPE_ASSIGN_OR_RETURN(char* raw, get_page(p.page_id));
        PageView page(raw);
        if (page.lsn() >= rec.lsn) break;
        MOPE_RETURN_NOT_OK(heap_page::UpdateSlot(page, p.slot, p.record));
        page.set_lsn(rec.lsn);
        break;
      }
      case WalRecordType::kHeapLink: {
        MOPE_ASSIGN_OR_RETURN(HeapLinkPayload p,
                              DecodeHeapLinkPayload(rec.payload));
        MOPE_ASSIGN_OR_RETURN(char* raw, get_page(p.page_id));
        PageView page(raw);
        if (page.lsn() >= rec.lsn) break;
        page.set_next(p.next);
        page.set_lsn(rec.lsn);
        disk->ReserveThrough(p.next);
        break;
      }
    }
  }
  for (auto& [id, buf] : pages) {
    MOPE_RETURN_NOT_OK(disk->WritePage(id, buf.get()));
  }
  return Status::OK();
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, const StorageOptions& options) {
  const obs::ScopedSpan open_span("storage.recovery");
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  MOPE_RETURN_NOT_OK(env->CreateDir(dir));

  Meta meta;
  if (env->FileExists(MetaPath(dir))) {
    MOPE_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(MetaPath(dir)));
    MOPE_ASSIGN_OR_RETURN(meta, DecodeMeta(bytes));
  }

  MOPE_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      Wal::ReadAll(env, WalPath(dir), meta.checkpoint_lsn));
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                        DiskManager::Open(env, PagesPath(dir),
                                          options.metrics));
  if (meta.page_count > 0) disk->ReserveThrough(meta.page_count - 1);

  std::vector<WalRecord> catalog_records;
  if (!records.empty()) {
    const obs::ScopedSpan redo_span("storage.wal.redo");
    MOPE_RETURN_NOT_OK(RedoRecords(disk.get(), records, &catalog_records));
    MOPE_RETURN_NOT_OK(disk->Sync());
  }

  uint64_t next_lsn = meta.next_lsn;
  if (!records.empty()) {
    next_lsn = std::max(next_lsn, records.back().lsn + 1);
  }
  if (next_lsn == 0) next_lsn = 1;  // LSN 0 is "never logged" on pages

  MOPE_ASSIGN_OR_RETURN(
      std::unique_ptr<Wal> wal,
      Wal::Open(env, WalPath(dir), next_lsn, options.wal_sync_every,
                options.metrics, options.clock));

  std::unique_ptr<StorageEngine> engine(new StorageEngine(
      env, dir, std::move(disk), std::move(wal), options));
  engine->catalog_blob_ = std::move(meta.blob);
  engine->catalog_records_ = std::move(catalog_records);
  engine->crash_recovered_ = !records.empty();
  engine->recovered_records_ = records.size();
  if (!records.empty()) {
    engine->recoveries_->Increment();
    engine->recovered_records_counter_->Increment(
        static_cast<int64_t>(records.size()));
    // Crash recovery is the event an operator grep'd the old fprintf lines
    // for; it stays info-level. Clean opens log at debug below.
    MOPE_LOG(kInfo, "storage", "wal_replayed")
        .Arg("dir", dir)
        .Arg("records", records.size())
        .Arg("checkpoint_lsn", meta.checkpoint_lsn);
  } else {
    MOPE_LOG(kDebug, "storage", "opened").Arg("dir", dir);
  }
  return engine;
}

Status StorageEngine::Checkpoint(std::string_view catalog_blob) {
  const obs::ScopedSpan span("storage.checkpoint");
  // Callers quiesce writers across the call (the engine's own write
  // serialization does this): a record logged concurrently with steps 1-5
  // could land after the Sync yet before the Restart and be lost.
  MOPE_RETURN_NOT_OK(wal_->Sync());
  MOPE_RETURN_NOT_OK(pool_->FlushAll());
  MOPE_RETURN_NOT_OK(disk_->Sync());
  Meta meta;
  meta.next_lsn = wal_->next_lsn();
  meta.checkpoint_lsn = meta.next_lsn - 1;
  meta.page_count = disk_->page_count();
  meta.blob.assign(catalog_blob);
  MOPE_RETURN_NOT_OK(env_->WriteFileAtomic(MetaPath(dir_), EncodeMeta(meta)));
  MOPE_RETURN_NOT_OK(wal_->Restart());
  logger_.ResetEpoch();
  catalog_blob_.assign(catalog_blob);
  checkpoints_->Increment();
  return Status::OK();
}

}  // namespace mope::storage
