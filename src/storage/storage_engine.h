#ifndef MOPE_STORAGE_STORAGE_ENGINE_H_
#define MOPE_STORAGE_STORAGE_ENGINE_H_

/// \file storage_engine.h
/// The storage subsystem's front door: owns the data directory (page file,
/// WAL, meta), runs page-level redo at open, and implements the checkpoint
/// protocol.
///
/// Data directory layout:
///   pages.db       page file (DiskManager)
///   wal.log        write-ahead log (Wal)
///   storage.meta   checkpoint metadata, replaced atomically:
///                  magic "MOPEMET1", u64 checkpoint_lsn, u64 next_lsn,
///                  u64 page_count, u64 blob_len, blob, u32 CRC-32 of all
///                  preceding bytes. The blob is the engine's serialized
///                  durable catalog (table schemas, heap head page ids,
///                  index root page ids) — opaque at this layer.
///
/// Open = recovery. Read the meta (if any), replay every WAL record with
/// LSN > checkpoint_lsn against the page file (images verbatim, heap
/// records through the same heap_page primitives the forward path uses,
/// each guarded by the page's LSN), sync, and hand the recovered kCatalog
/// records to the engine. If anything was replayed the run is flagged
/// crash_recovered(): the engine must rebuild its indexes from the heap
/// (index pages are not logged — see btree_file.h) and checkpoint to
/// re-establish the clean state.
///
/// Checkpoint protocol (the order is the correctness argument):
///   1. WAL Sync        — every logged record is durable.
///   2. Pool FlushAll   — every dirty page reaches the page file.
///   3. Disk Sync       — ... durably.
///   4. Meta write      — atomic rename flips the checkpoint LSN and the
///                        catalog blob in one step.
///   5. WAL Restart     — truncate + fsync; the old records are dead
///                        (and if the truncate is lost to a crash, the
///                        checkpoint LSN filter ignores them anyway).
///   6. New FPW epoch   — next modification of each page logs a new image.
///
/// A crash between any two steps recovers correctly: before 4 the old meta
/// replays the old epoch's records over the old pages; after 4 the new
/// meta sees an empty (or stale-and-filtered) log.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "storage/wal_logger.h"

namespace mope::storage {

struct StorageOptions {
  /// Buffer pool frames (minimum 8: a B+-tree descent holds up to two pins
  /// and checkpointing must always find a victim).
  size_t pool_frames = 256;
  /// WAL group-commit policy: fsync every N records (1 = every record,
  /// 0 = only explicit Sync/Checkpoint).
  uint64_t wal_sync_every = 32;
  /// Defaults to Env::Posix(); tests inject InMemEnv / FaultyEnv.
  Env* env = nullptr;
  /// Defaults to the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Times the fsync / miss-stall latency histograms. Defaults to
  /// SystemClock(); tests inject a ManualClock for deterministic buckets.
  obs::Clock* clock = nullptr;
};

class StorageEngine {
 public:
  /// Opens (creating if needed) the data directory and runs recovery.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, const StorageOptions& options);

  BufferPool* pool() { return pool_.get(); }
  Wal* wal() { return wal_.get(); }
  WalLogger* logger() { return &logger_; }
  DiskManager* disk() { return disk_.get(); }
  Env* env() { return env_; }

  /// The catalog blob from the last checkpoint (empty for a fresh dir).
  const std::string& catalog_blob() const { return catalog_blob_; }

  /// kCatalog records recovered from the WAL, in LSN order, for the engine
  /// to replay on top of catalog_blob(). Emptied by the call.
  std::vector<WalRecord> TakeCatalogRecords() {
    return std::move(catalog_records_);
  }

  /// True when Open replayed any WAL record: the on-disk index pages are
  /// not to be trusted and the engine must rebuild indexes from the heap.
  bool crash_recovered() const { return crash_recovered_; }

  /// Number of WAL records redone at Open (for logs/metrics).
  uint64_t recovered_records() const { return recovered_records_; }

  /// Runs the checkpoint protocol, persisting `catalog_blob` as the new
  /// durable catalog state.
  Status Checkpoint(std::string_view catalog_blob);

  /// Group-commit flush point: makes everything logged so far durable
  /// without the full checkpoint.
  Status Sync() { return wal_->Sync(); }

 private:
  StorageEngine(Env* env, std::string dir,
                std::unique_ptr<DiskManager> disk, std::unique_ptr<Wal> wal,
                const StorageOptions& options);

  static Status RedoRecords(DiskManager* disk,
                            const std::vector<WalRecord>& records,
                            std::vector<WalRecord>* catalog_records);

  Env* const env_;
  const std::string dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Wal> wal_;
  WalLogger logger_;
  std::unique_ptr<BufferPool> pool_;

  std::string catalog_blob_;
  std::vector<WalRecord> catalog_records_;
  bool crash_recovered_ = false;
  uint64_t recovered_records_ = 0;

  obs::Counter* recoveries_;
  obs::Counter* recovered_records_counter_;
  obs::Counter* checkpoints_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_STORAGE_ENGINE_H_
