#ifndef MOPE_STORAGE_TABLE_HEAP_H_
#define MOPE_STORAGE_TABLE_HEAP_H_

/// \file table_heap.h
/// Slotted record pages chained into a per-table heap file.
///
/// Page payload layout (PageType::kHeap):
///
///   [kPageHeaderSize ... aux)                 record cells, growing up
///   [aux ... kPageSize - 4*count)             free space
///   [kPageSize - 4*count ... kPageSize)       slot directory, growing down
///
/// The header's `aux` field is the free-space offset; slot directory entry
/// i (counted from the page end) is [u16 cell_offset][u16 length]. Records
/// are never deleted (rows in this engine are append-only; the MOPE key
/// rotation rewrites ciphertexts in place), so there are no tombstones and
/// RecordIds are stable forever. In-place updates may shrink a record but
/// never grow it — the only production updater is the rotation path, whose
/// int64 ciphertext encoding is the same 9 bytes before and after.
///
/// Durability: every mutation logs its WAL record *before* touching the
/// page (via WalLogger, which also emits the once-per-epoch page image) and
/// stamps the record's LSN into the page header. The redo side lives in
/// storage_engine.cc and reuses the same heap_page primitives below.
///
/// The cells hold serialized rows of MOPE ciphertexts — the trust boundary
/// puts nothing but ciphertext and structure on these pages.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/wal_logger.h"

namespace mope::storage {

/// Stable address of one record: (page, slot index on that page).
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const RecordId& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

/// Primitives over one slotted heap page. Pure page-buffer manipulation —
/// no logging, no pool — shared by the forward path (TableHeap) and redo
/// (StorageEngine).
namespace heap_page {

/// Largest record a single (empty) page can hold.
inline constexpr size_t kMaxRecordSize = PageView::payload_size() - 4;

void Init(PageView page);
bool HasRoom(PageView page, size_t record_size);

/// Appends `record` as slot `count()`; returns the slot index.
/// Precondition: HasRoom.
uint16_t AppendSlot(PageView page, std::string_view record);

/// Rewrites slot `slot` in place. The record must not be larger than the
/// slot's current length (InvalidArgument otherwise).
Status UpdateSlot(PageView page, uint16_t slot, std::string_view record);

/// The bytes of slot `slot` (a view into the page buffer).
Result<std::string_view> ReadSlot(PageView page, uint16_t slot);

}  // namespace heap_page

/// WAL payload codecs for the heap record types (shared with redo).
std::string EncodeHeapSlotPayload(PageId page_id, uint16_t slot,
                                  std::string_view record);
struct HeapSlotPayload {
  PageId page_id;
  uint16_t slot;
  std::string_view record;
};
Result<HeapSlotPayload> DecodeHeapSlotPayload(std::string_view payload);
std::string EncodeHeapLinkPayload(PageId page_id, PageId next);
struct HeapLinkPayload {
  PageId page_id;
  PageId next;
};
Result<HeapLinkPayload> DecodeHeapLinkPayload(std::string_view payload);

/// One table's chain of heap pages. Not internally synchronized: callers
/// serialize writes the way they serialize Table mutations (the engine's
/// existing discipline); concurrent reads through the pool are fine.
class TableHeap {
 public:
  /// Opens an existing chain rooted at `head` (walking it to find the
  /// tail), or — when `head` is kInvalidPageId — creates the first page.
  /// The head page id is the engine's to persist (catalog meta).
  static Result<std::unique_ptr<TableHeap>> Open(BufferPool* pool,
                                                 WalLogger* log, PageId head);

  /// Appends a record, growing the chain when the tail is full. Returns the
  /// record's stable id.
  Result<RecordId> Append(std::string_view record);

  /// Rewrites a record in place (same size or smaller — see file comment).
  Status Update(RecordId rid, std::string_view record);

  /// Copies out one record.
  Result<std::string> Read(RecordId rid);

  /// Visits every record in chain-then-slot order (the order Append
  /// produced them).
  Status Scan(
      const std::function<Status(RecordId, std::string_view)>& fn) const;

  PageId head() const { return head_; }

 private:
  TableHeap(BufferPool* pool, WalLogger* log, PageId head, PageId tail)
      : pool_(pool), log_(log), head_(head), tail_(tail) {}

  BufferPool* const pool_;
  WalLogger* const log_;
  PageId head_;
  PageId tail_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_TABLE_HEAP_H_
