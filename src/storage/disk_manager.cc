#include "storage/disk_manager.h"

#include <utility>

#include "common/crc32.h"

namespace mope::storage {

namespace {

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : obs::Registry();
}

}  // namespace

DiskManager::DiskManager(std::unique_ptr<RandomAccessFile> file,
                         uint64_t pages, obs::MetricsRegistry* metrics)
    : file_(std::move(file)),
      next_page_(pages),
      page_reads_(OrGlobal(metrics)->GetCounter("storage.disk.page_reads")),
      page_writes_(OrGlobal(metrics)->GetCounter("storage.disk.page_writes")),
      syncs_(OrGlobal(metrics)->GetCounter("storage.disk.syncs")),
      read_corruptions_(
          OrGlobal(metrics)->GetCounter("storage.disk.read_corruptions")) {}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    Env* env, const std::string& path, obs::MetricsRegistry* metrics) {
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->OpenRandomAccess(path));
  MOPE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  // A crash can leave a partially extended tail (the file grew but the
  // page write tore). Round down: the torn tail page is unreadable anyway
  // and redo will rewrite it from its full-page image.
  const uint64_t pages = size / kPageSize;
  return std::unique_ptr<DiskManager>(
      new DiskManager(std::move(file), pages, metrics));
}

Status DiskManager::ReadPage(PageId id, char* out) {
  MutexLock lock(&mutex_);
  MOPE_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  if ((id + 1) * kPageSize > size) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " past end of page file");
  }
  std::string buf;
  MOPE_RETURN_NOT_OK(file_->Read(id * kPageSize, kPageSize, &buf));
  const uint32_t stored = LoadU32(buf.data());
  const uint32_t actual =
      Crc32(std::string_view(buf.data() + 4, kPageSize - 4));
  if (stored != actual) {
    read_corruptions_->Increment();
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id) + " (torn write?)");
  }
  std::memcpy(out, buf.data(), kPageSize);
  page_reads_->Increment();
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, char* page) {
  MutexLock lock(&mutex_);
  StoreU32(page, Crc32(std::string_view(page + 4, kPageSize - 4)));
  MOPE_RETURN_NOT_OK(
      file_->Write(id * kPageSize, std::string_view(page, kPageSize)));
  if (id >= next_page_) next_page_ = id + 1;
  page_writes_->Increment();
  return Status::OK();
}

PageId DiskManager::AllocatePage() {
  MutexLock lock(&mutex_);
  return next_page_++;
}

void DiskManager::ReserveThrough(PageId id) {
  MutexLock lock(&mutex_);
  if (id != kInvalidPageId && id >= next_page_) next_page_ = id + 1;
}

uint64_t DiskManager::page_count() {
  MutexLock lock(&mutex_);
  return next_page_;
}

Status DiskManager::Sync() {
  MutexLock lock(&mutex_);
  syncs_->Increment();
  return file_->Sync();
}

}  // namespace mope::storage
