#ifndef MOPE_STORAGE_WAL_LOGGER_H_
#define MOPE_STORAGE_WAL_LOGGER_H_

/// \file wal_logger.h
/// The paged structures' writing interface to the WAL: record append plus
/// full-page-write (FPW) tracking.
///
/// Torn-page story: a page write the power interrupts fails its checksum on
/// the next read, and no byte of it can be trusted — so redo cannot start
/// from the on-disk page. Instead, the *first* time a page is modified in a
/// checkpoint epoch, its current (pre-modification) bytes are logged as a
/// kPageImage record; every later modification logs only its small logical
/// record. Redo restores the image verbatim and replays the records after
/// it in LSN order, so the page is reconstructed without reading the
/// (possibly torn) on-disk copy at all. A checkpoint flushes everything and
/// starts a new epoch (ResetEpoch), so images are paid once per page per
/// epoch.
///
/// A WalLogger with a null Wal is a valid no-durability mode (benches and
/// tools that want the paged structures without a log): Log returns LSN 0
/// and images are skipped.

#include <cstdint>
#include <string_view>
#include <unordered_set>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace mope::storage {

class WalLogger {
 public:
  /// `wal` may be null: no-durability mode.
  explicit WalLogger(Wal* wal) : wal_(wal) {}

  /// Call before the first byte of `guard`'s page is modified. Logs the
  /// page's current bytes as a kPageImage record once per epoch.
  Status LogImageIfFirst(const PageGuard& guard) MOPE_EXCLUDES(mutex_);

  /// Appends a logical record; returns its LSN (0 in no-durability mode).
  Result<uint64_t> Log(WalRecordType type, std::string_view payload)
      MOPE_EXCLUDES(mutex_);

  /// Starts a new FPW epoch. Called by the checkpoint after everything the
  /// old epoch touched is flushed and the log is truncated.
  void ResetEpoch() MOPE_EXCLUDES(mutex_);

  Wal* wal() const { return wal_; }

 private:
  Wal* const wal_;
  mutable Mutex mutex_{lock_rank::kStorageEpoch};
  /// Pages whose image is already in the log this epoch.
  std::unordered_set<PageId> imaged_ MOPE_GUARDED_BY(mutex_);
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_WAL_LOGGER_H_
