#include "storage/table_heap.h"

#include <utility>

namespace mope::storage {

namespace heap_page {

namespace {

char* SlotEntry(PageView page, uint16_t slot) {
  return page.data() + kPageSize - 4 * (static_cast<size_t>(slot) + 1);
}

}  // namespace

void Init(PageView page) {
  page.Format(PageType::kHeap);
  page.set_aux(kPageHeaderSize);
}

bool HasRoom(PageView page, size_t record_size) {
  const size_t free_begin = page.aux();
  const size_t dir_begin = kPageSize - 4 * (static_cast<size_t>(page.count()) + 1);
  return free_begin + record_size <= dir_begin;
}

uint16_t AppendSlot(PageView page, std::string_view record) {
  const uint16_t slot = page.count();
  const uint16_t offset = static_cast<uint16_t>(page.aux());
  std::memcpy(page.data() + offset, record.data(), record.size());
  char* entry = SlotEntry(page, slot);
  StoreU16(entry, offset);
  StoreU16(entry + 2, static_cast<uint16_t>(record.size()));
  page.set_aux(offset + record.size());
  page.set_count(slot + 1);
  return slot;
}

Status UpdateSlot(PageView page, uint16_t slot, std::string_view record) {
  if (slot >= page.count()) {
    return Status::InvalidArgument("heap slot " + std::to_string(slot) +
                                   " out of range");
  }
  char* entry = SlotEntry(page, slot);
  const uint16_t offset = LoadU16(entry);
  const uint16_t len = LoadU16(entry + 2);
  if (record.size() > len) {
    return Status::InvalidArgument(
        "in-place heap update may not grow a record (" +
        std::to_string(record.size()) + " > " + std::to_string(len) + ")");
  }
  std::memcpy(page.data() + offset, record.data(), record.size());
  StoreU16(entry + 2, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Result<std::string_view> ReadSlot(PageView page, uint16_t slot) {
  if (slot >= page.count()) {
    return Status::NotFound("heap slot " + std::to_string(slot) +
                            " out of range");
  }
  const char* entry = SlotEntry(page, slot);
  const uint16_t offset = LoadU16(entry);
  const uint16_t len = LoadU16(entry + 2);
  if (offset < kPageHeaderSize || offset + static_cast<size_t>(len) > kPageSize) {
    return Status::Corruption("heap slot points outside the page");
  }
  return std::string_view(page.data() + offset, len);
}

}  // namespace heap_page

std::string EncodeHeapSlotPayload(PageId page_id, uint16_t slot,
                                  std::string_view record) {
  std::string out;
  out.reserve(12 + record.size());
  char buf[12];
  StoreU64(buf, page_id);
  StoreU16(buf + 8, slot);
  StoreU16(buf + 10, static_cast<uint16_t>(record.size()));
  out.append(buf, 12);
  out.append(record);
  return out;
}

Result<HeapSlotPayload> DecodeHeapSlotPayload(std::string_view payload) {
  if (payload.size() < 12) {
    return Status::Corruption("heap WAL record shorter than its header");
  }
  HeapSlotPayload p;
  p.page_id = LoadU64(payload.data());
  p.slot = LoadU16(payload.data() + 8);
  const uint16_t len = LoadU16(payload.data() + 10);
  if (payload.size() != 12 + static_cast<size_t>(len)) {
    return Status::Corruption("heap WAL record length mismatch");
  }
  p.record = payload.substr(12);
  return p;
}

std::string EncodeHeapLinkPayload(PageId page_id, PageId next) {
  std::string out(16, '\0');
  StoreU64(out.data(), page_id);
  StoreU64(out.data() + 8, next);
  return out;
}

Result<HeapLinkPayload> DecodeHeapLinkPayload(std::string_view payload) {
  if (payload.size() != 16) {
    return Status::Corruption("heap link WAL record must be 16 bytes");
  }
  return HeapLinkPayload{LoadU64(payload.data()), LoadU64(payload.data() + 8)};
}

Result<std::unique_ptr<TableHeap>> TableHeap::Open(BufferPool* pool,
                                                   WalLogger* log,
                                                   PageId head) {
  if (head == kInvalidPageId) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool->Create(PageType::kHeap));
    heap_page::Init(guard.view());
    guard.MarkDirty();
    // Image-log the empty head right away: the engine's create-table WAL
    // record will reference this page id, so redo must be able to
    // materialize the page even if it was never flushed before the crash.
    MOPE_RETURN_NOT_OK(log->LogImageIfFirst(guard));
    const PageId id = guard.id();
    return std::unique_ptr<TableHeap>(new TableHeap(pool, log, id, id));
  }
  PageId tail = head;
  for (;;) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(tail));
    if (guard.view().type() != PageType::kHeap) {
      return Status::Corruption("heap chain page " + std::to_string(tail) +
                                " is not a heap page");
    }
    const PageId next = guard.view().next();
    if (next == kInvalidPageId) break;
    tail = next;
  }
  return std::unique_ptr<TableHeap>(new TableHeap(pool, log, head, tail));
}

Result<RecordId> TableHeap::Append(std::string_view record) {
  if (record.size() > heap_page::kMaxRecordSize) {
    return Status::InvalidArgument("record of " +
                                   std::to_string(record.size()) +
                                   " bytes exceeds one heap page");
  }
  MOPE_ASSIGN_OR_RETURN(PageGuard tail, pool_->Fetch(tail_));
  if (!heap_page::HasRoom(tail.view(), record.size())) {
    // Grow the chain: new tail page, then re-link the old tail. Both
    // modifications are WAL-logged (image-first) before they land.
    MOPE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->Create(PageType::kHeap));
    heap_page::Init(fresh.view());
    MOPE_RETURN_NOT_OK(log_->LogImageIfFirst(fresh));
    MOPE_RETURN_NOT_OK(log_->LogImageIfFirst(tail));
    MOPE_ASSIGN_OR_RETURN(
        uint64_t link_lsn,
        log_->Log(WalRecordType::kHeapLink,
                  EncodeHeapLinkPayload(tail.id(), fresh.id())));
    tail.view().set_next(fresh.id());
    tail.view().set_lsn(link_lsn);
    tail.MarkDirty();
    fresh.MarkDirty();
    tail_ = fresh.id();
    tail = std::move(fresh);
  }
  MOPE_RETURN_NOT_OK(log_->LogImageIfFirst(tail));
  const uint16_t slot = tail.view().count();
  MOPE_ASSIGN_OR_RETURN(
      uint64_t lsn,
      log_->Log(WalRecordType::kHeapAppend,
                EncodeHeapSlotPayload(tail.id(), slot, record)));
  heap_page::AppendSlot(tail.view(), record);
  tail.view().set_lsn(lsn);
  tail.MarkDirty();
  return RecordId{tail.id(), slot};
}

Status TableHeap::Update(RecordId rid, std::string_view record) {
  MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page_id));
  // Validate before logging: a record that cannot be applied must not
  // reach the log (redo would trip over it).
  MOPE_ASSIGN_OR_RETURN(std::string_view existing,
                        heap_page::ReadSlot(guard.view(), rid.slot));
  if (record.size() > existing.size()) {
    return Status::InvalidArgument(
        "in-place heap update may not grow a record (" +
        std::to_string(record.size()) + " > " +
        std::to_string(existing.size()) + ")");
  }
  MOPE_RETURN_NOT_OK(log_->LogImageIfFirst(guard));
  MOPE_ASSIGN_OR_RETURN(
      uint64_t lsn,
      log_->Log(WalRecordType::kHeapUpdate,
                EncodeHeapSlotPayload(rid.page_id, rid.slot, record)));
  MOPE_RETURN_NOT_OK(heap_page::UpdateSlot(guard.view(), rid.slot, record));
  guard.view().set_lsn(lsn);
  guard.MarkDirty();
  return Status::OK();
}

Result<std::string> TableHeap::Read(RecordId rid) {
  MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page_id));
  MOPE_ASSIGN_OR_RETURN(std::string_view bytes,
                        heap_page::ReadSlot(guard.view(), rid.slot));
  return std::string(bytes);
}

Status TableHeap::Scan(
    const std::function<Status(RecordId, std::string_view)>& fn) const {
  PageId page_id = head_;
  while (page_id != kInvalidPageId) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page_id));
    const uint16_t count = guard.view().count();
    for (uint16_t slot = 0; slot < count; ++slot) {
      MOPE_ASSIGN_OR_RETURN(std::string_view bytes,
                            heap_page::ReadSlot(guard.view(), slot));
      MOPE_RETURN_NOT_OK(fn(RecordId{page_id, slot}, bytes));
    }
    page_id = guard.view().next();
  }
  return Status::OK();
}

}  // namespace mope::storage
