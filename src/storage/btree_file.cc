#include "storage/btree_file.h"

#include <cstring>
#include <utility>
#include <vector>

namespace mope::storage {

namespace {

constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 24;
constexpr uint16_t kLeafCap =
    static_cast<uint16_t>(PageView::payload_size() / kLeafEntrySize);
constexpr uint16_t kInternalCap =
    static_cast<uint16_t>(PageView::payload_size() / kInternalEntrySize);

using Entry = std::pair<uint64_t, uint64_t>;  // (key, row_id)

Entry LeafGet(const PageView& page, uint16_t i) {
  const char* p = page.payload() + kLeafEntrySize * i;
  return {LoadU64(p), LoadU64(p + 8)};
}

void LeafSet(PageView page, uint16_t i, Entry e) {
  char* p = page.payload() + kLeafEntrySize * i;
  StoreU64(p, e.first);
  StoreU64(p + 8, e.second);
}

struct InternalEntry {
  Entry sep;
  PageId child;
};

InternalEntry InternalGet(const PageView& page, uint16_t i) {
  const char* p = page.payload() + kInternalEntrySize * i;
  return {{LoadU64(p), LoadU64(p + 8)}, LoadU64(p + 16)};
}

void InternalSet(PageView page, uint16_t i, const InternalEntry& e) {
  char* p = page.payload() + kInternalEntrySize * i;
  StoreU64(p, e.sep.first);
  StoreU64(p + 8, e.sep.second);
  StoreU64(p + 16, e.child);
}

/// Child page covering `e` in an internal node: entries[i].child for the
/// largest i with sep <= e, else the leftmost child in aux.
PageId ChildFor(const PageView& page, Entry e) {
  const uint16_t n = page.count();
  uint16_t lo = 0;
  uint16_t hi = n;  // first entry with sep > e
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (InternalGet(page, mid).sep <= e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? page.aux() : InternalGet(page, lo - 1).child;
}

/// First leaf position with entry >= e.
uint16_t LeafLowerBound(const PageView& page, Entry e) {
  uint16_t lo = 0;
  uint16_t hi = page.count();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (LeafGet(page, mid) < e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

struct BTreeFile::Split {
  Entry sep;
  PageId right;
};

Result<std::unique_ptr<BTreeFile>> BTreeFile::Open(BufferPool* pool,
                                                   PageId root) {
  if (root == kInvalidPageId) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool->Create(PageType::kBTreeLeaf));
    guard.MarkDirty();
    root = guard.id();
  }
  return std::unique_ptr<BTreeFile>(new BTreeFile(pool, root));
}

Status BTreeFile::InsertRec(PageId page_id, uint64_t key, uint64_t row_id,
                            std::unique_ptr<Split>* split) {
  MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page_id));
  PageView page = guard.view();
  const Entry entry{key, row_id};

  if (page.type() == PageType::kBTreeLeaf) {
    const uint16_t pos = LeafLowerBound(page, entry);
    if (page.count() < kLeafCap) {
      char* base = page.payload();
      std::memmove(base + kLeafEntrySize * (pos + 1),
                   base + kLeafEntrySize * pos,
                   kLeafEntrySize * (page.count() - pos));
      LeafSet(page, pos, entry);
      page.set_count(page.count() + 1);
      guard.MarkDirty();
      return Status::OK();
    }
    // Split: gather, insert, redistribute half-and-half.
    std::vector<Entry> entries;
    entries.reserve(page.count() + 1);
    for (uint16_t i = 0; i < page.count(); ++i) {
      entries.push_back(LeafGet(page, i));
    }
    entries.insert(entries.begin() + pos, entry);
    MOPE_ASSIGN_OR_RETURN(PageGuard right, pool_->Create(PageType::kBTreeLeaf));
    PageView right_page = right.view();
    const size_t left_n = entries.size() / 2;
    for (size_t i = 0; i < left_n; ++i) {
      LeafSet(page, static_cast<uint16_t>(i), entries[i]);
    }
    page.set_count(static_cast<uint16_t>(left_n));
    for (size_t i = left_n; i < entries.size(); ++i) {
      LeafSet(right_page, static_cast<uint16_t>(i - left_n), entries[i]);
    }
    right_page.set_count(static_cast<uint16_t>(entries.size() - left_n));
    right_page.set_next(page.next());
    page.set_next(right.id());
    guard.MarkDirty();
    right.MarkDirty();
    *split = std::make_unique<Split>(Split{entries[left_n], right.id()});
    return Status::OK();
  }

  if (page.type() != PageType::kBTreeInternal) {
    return Status::Corruption("B+-tree descent hit a non-index page " +
                              std::to_string(page_id));
  }
  const PageId child = ChildFor(page, entry);
  std::unique_ptr<Split> child_split;
  // Release the parent pin across the recursive call so a descent never
  // holds more than one pin (the pool can be tiny).
  guard.Release();
  MOPE_RETURN_NOT_OK(InsertRec(child, key, row_id, &child_split));
  if (child_split == nullptr) return Status::OK();

  MOPE_ASSIGN_OR_RETURN(guard, pool_->Fetch(page_id));
  page = guard.view();
  // Position of the new separator among the entries.
  uint16_t pos = 0;
  while (pos < page.count() && InternalGet(page, pos).sep < child_split->sep) {
    ++pos;
  }
  const InternalEntry new_entry{child_split->sep, child_split->right};
  if (page.count() < kInternalCap) {
    char* base = page.payload();
    std::memmove(base + kInternalEntrySize * (pos + 1),
                 base + kInternalEntrySize * pos,
                 kInternalEntrySize * (page.count() - pos));
    InternalSet(page, pos, new_entry);
    page.set_count(page.count() + 1);
    guard.MarkDirty();
    return Status::OK();
  }
  std::vector<InternalEntry> entries;
  entries.reserve(page.count() + 1);
  for (uint16_t i = 0; i < page.count(); ++i) {
    entries.push_back(InternalGet(page, i));
  }
  entries.insert(entries.begin() + pos, new_entry);
  const size_t mid = entries.size() / 2;  // this entry moves up
  MOPE_ASSIGN_OR_RETURN(PageGuard right, pool_->Create(PageType::kBTreeInternal));
  PageView right_page = right.view();
  for (size_t i = 0; i < mid; ++i) {
    InternalSet(page, static_cast<uint16_t>(i), entries[i]);
  }
  page.set_count(static_cast<uint16_t>(mid));
  right_page.set_aux(entries[mid].child);
  for (size_t i = mid + 1; i < entries.size(); ++i) {
    InternalSet(right_page, static_cast<uint16_t>(i - mid - 1), entries[i]);
  }
  right_page.set_count(static_cast<uint16_t>(entries.size() - mid - 1));
  guard.MarkDirty();
  right.MarkDirty();
  *split = std::make_unique<Split>(Split{entries[mid].sep, right.id()});
  return Status::OK();
}

Status BTreeFile::Insert(uint64_t key, uint64_t row_id) {
  std::unique_ptr<Split> split;
  MOPE_RETURN_NOT_OK(InsertRec(root_, key, row_id, &split));
  if (split == nullptr) return Status::OK();
  MOPE_ASSIGN_OR_RETURN(PageGuard new_root,
                        pool_->Create(PageType::kBTreeInternal));
  PageView page = new_root.view();
  page.set_aux(root_);
  InternalSet(page, 0, InternalEntry{split->sep, split->right});
  page.set_count(1);
  new_root.MarkDirty();
  root_ = new_root.id();
  return Status::OK();
}

Result<PageId> BTreeFile::FindLeaf(uint64_t key, uint64_t row_id) {
  PageId page_id = root_;
  for (;;) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page_id));
    const PageView page = guard.view();
    if (page.type() == PageType::kBTreeLeaf) return page_id;
    if (page.type() != PageType::kBTreeInternal) {
      return Status::Corruption("B+-tree descent hit a non-index page " +
                                std::to_string(page_id));
    }
    page_id = ChildFor(page, Entry{key, row_id});
  }
}

Result<bool> BTreeFile::Erase(uint64_t key, uint64_t row_id) {
  const Entry entry{key, row_id};
  MOPE_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, row_id));
  MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf_id));
  PageView page = guard.view();
  const uint16_t pos = LeafLowerBound(page, entry);
  if (pos >= page.count() || LeafGet(page, pos) != entry) return false;
  char* base = page.payload();
  std::memmove(base + kLeafEntrySize * pos, base + kLeafEntrySize * (pos + 1),
               kLeafEntrySize * (page.count() - pos - 1));
  page.set_count(page.count() - 1);
  guard.MarkDirty();
  return true;
}

Result<size_t> BTreeFile::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<void(uint64_t, uint64_t)>& fn, ScanStats* stats) {
  if (lo > hi) return size_t{0};
  MOPE_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo, 0));
  size_t visited = 0;
  while (leaf_id != kInvalidPageId) {
    MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf_id));
    const PageView page = guard.view();
    if (stats != nullptr) ++stats->nodes_visited;
    const uint16_t start = LeafLowerBound(page, Entry{lo, 0});
    for (uint16_t i = start; i < page.count(); ++i) {
      const Entry e = LeafGet(page, i);
      if (e.first > hi) return visited;
      if (fn) fn(e.first, e.second);
      ++visited;
    }
    leaf_id = page.next();
  }
  return visited;
}

Result<size_t> BTreeFile::CountRange(uint64_t lo, uint64_t hi) {
  return ScanRange(lo, hi, nullptr, nullptr);
}

Status BTreeFile::CheckNode(PageId page_id, int depth, int* leaf_depth,
                            uint64_t lo_key, uint64_t lo_rid, bool has_lo,
                            uint64_t hi_key, uint64_t hi_rid, bool has_hi,
                            PageId* prev_leaf) {
  MOPE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page_id));
  const PageView page = guard.view();
  const Entry lo{lo_key, lo_rid};
  const Entry hi{hi_key, hi_rid};

  if (page.type() == PageType::kBTreeLeaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at differing depths");
    }
    if (page.count() > kLeafCap) return Status::Internal("leaf overfull");
    for (uint16_t i = 0; i < page.count(); ++i) {
      const Entry e = LeafGet(page, i);
      if (i > 0 && !(LeafGet(page, i - 1) < e)) {
        return Status::Internal("leaf entries out of order");
      }
      if (has_lo && e < lo) return Status::Internal("leaf entry below bound");
      if (has_hi && !(e < hi)) {
        return Status::Internal("leaf entry above bound");
      }
    }
    // The left-to-right traversal order must match the sibling chain.
    if (*prev_leaf != kInvalidPageId) {
      MOPE_ASSIGN_OR_RETURN(PageGuard prev, pool_->Fetch(*prev_leaf));
      if (prev.view().next() != page_id) {
        return Status::Internal("broken leaf sibling chain");
      }
    }
    *prev_leaf = page_id;
    return Status::OK();
  }

  if (page.type() != PageType::kBTreeInternal) {
    return Status::Internal("unexpected page type in B+-tree");
  }
  if (page.count() == 0 || page.count() > kInternalCap) {
    return Status::Internal("internal node entry count out of range");
  }
  // Copy out the separators before recursing: the guard's pin is released
  // so descents deep in a tiny pool cannot wedge on this frame.
  std::vector<InternalEntry> entries;
  entries.reserve(page.count());
  for (uint16_t i = 0; i < page.count(); ++i) {
    entries.push_back(InternalGet(page, i));
    if (i > 0 && !(entries[i - 1].sep < entries[i].sep)) {
      return Status::Internal("internal separators out of order");
    }
  }
  const PageId leftmost = page.aux();
  guard.Release();

  MOPE_RETURN_NOT_OK(CheckNode(leftmost, depth + 1, leaf_depth, lo_key, lo_rid,
                               has_lo, entries[0].sep.first,
                               entries[0].sep.second, true, prev_leaf));
  for (size_t i = 0; i < entries.size(); ++i) {
    const bool last = i + 1 == entries.size();
    MOPE_RETURN_NOT_OK(CheckNode(
        entries[i].child, depth + 1, leaf_depth, entries[i].sep.first,
        entries[i].sep.second, true,
        last ? hi_key : entries[i + 1].sep.first,
        last ? hi_rid : entries[i + 1].sep.second, last ? has_hi : true,
        prev_leaf));
  }
  return Status::OK();
}

Status BTreeFile::CheckInvariants() {
  int leaf_depth = -1;
  PageId prev_leaf = kInvalidPageId;
  MOPE_RETURN_NOT_OK(CheckNode(root_, 0, &leaf_depth, 0, 0, false, 0, 0, false,
                               &prev_leaf));
  // The last leaf must terminate the chain.
  if (prev_leaf != kInvalidPageId) {
    MOPE_ASSIGN_OR_RETURN(PageGuard last, pool_->Fetch(prev_leaf));
    if (last.view().next() != kInvalidPageId) {
      return Status::Internal("leaf chain continues past the last leaf");
    }
  }
  return Status::OK();
}

}  // namespace mope::storage
