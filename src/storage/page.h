#ifndef MOPE_STORAGE_PAGE_H_
#define MOPE_STORAGE_PAGE_H_

/// \file page.h
/// On-disk page layout shared by every paged structure.
///
/// A page is kPageSize bytes. The first kPageHeaderSize bytes are a common
/// header; the payload layout beyond it belongs to the page type (slotted
/// heap page, B+-tree leaf/internal node, ...). All integers little-endian.
///
///   offset  size  field
///        0     4  checksum   CRC-32 of bytes [4, kPageSize)
///        4     1  type       PageType
///        5     1  flags      (reserved, 0)
///        6     2  count      slots / entries on the page
///        8     8  lsn        LSN of the last WAL record applied to the page
///       16     8  next       chain link (heap chain, leaf chain); kInvalidPageId
///       24     8  aux        type-specific (heap: free-space offset;
///                            internal node: leftmost child page id)
///
/// The checksum is stamped by DiskManager::WritePage and verified by
/// ReadPage, so a torn page — a write the power cut got halfway through —
/// surfaces as Status::Corruption instead of silently decoded garbage. The
/// LSN is what makes WAL redo idempotent: a redo record is applied only to
/// pages whose LSN is older than the record's.
///
/// Pages carry ciphertexts and structure, never keys: the MOPE trust
/// boundary (R8) extends to disk unchanged, which is the paper's point —
/// the encrypted database is exactly as safe on disk as in memory.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mope::storage {

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~PageId{0};

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderSize = 32;

enum class PageType : uint8_t {
  kFree = 0,
  kHeap = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
};

// --- Raw field accessors over a kPageSize buffer --------------------------

inline uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

/// Typed view over one page buffer (does not own the bytes). The mutating
/// accessors do NOT touch the checksum — DiskManager stamps it on write.
class PageView {
 public:
  explicit PageView(char* data) : data_(data) {}

  char* data() { return data_; }
  const char* data() const { return data_; }
  char* payload() { return data_ + kPageHeaderSize; }
  const char* payload() const { return data_ + kPageHeaderSize; }
  static constexpr size_t payload_size() {
    return kPageSize - kPageHeaderSize;
  }

  uint32_t checksum() const { return LoadU32(data_); }
  void set_checksum(uint32_t v) { StoreU32(data_, v); }

  PageType type() const { return static_cast<PageType>(data_[4]); }
  void set_type(PageType t) { data_[4] = static_cast<char>(t); }

  uint16_t count() const { return LoadU16(data_ + 6); }
  void set_count(uint16_t v) { StoreU16(data_ + 6, v); }

  uint64_t lsn() const { return LoadU64(data_ + 8); }
  void set_lsn(uint64_t v) { StoreU64(data_ + 8, v); }

  PageId next() const { return LoadU64(data_ + 16); }
  void set_next(PageId v) { StoreU64(data_ + 16, v); }

  uint64_t aux() const { return LoadU64(data_ + 24); }
  void set_aux(uint64_t v) { StoreU64(data_ + 24, v); }

  /// Zeroes the page and initializes the header for a fresh page.
  void Format(PageType type) {
    std::memset(data_, 0, kPageSize);
    set_type(type);
    set_next(kInvalidPageId);
  }

 private:
  char* data_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_PAGE_H_
