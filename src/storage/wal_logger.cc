#include "storage/wal_logger.h"

#include <string>

namespace mope::storage {

Status WalLogger::LogImageIfFirst(const PageGuard& guard) {
  if (wal_ == nullptr) return Status::OK();
  // The epoch lock is held across the append (rank 53 < 54 permits it) so
  // no concurrent writer can slip a logical record in front of the image.
  MutexLock lock(&mutex_);
  if (imaged_.count(guard.id()) != 0) return Status::OK();
  std::string payload;
  payload.reserve(8 + kPageSize);
  char id_bytes[8];
  StoreU64(id_bytes, guard.id());
  payload.append(id_bytes, 8);
  payload.append(guard.data(), kPageSize);
  MOPE_RETURN_NOT_OK(wal_->Append(WalRecordType::kPageImage, payload).status());
  imaged_.insert(guard.id());
  return Status::OK();
}

Result<uint64_t> WalLogger::Log(WalRecordType type, std::string_view payload) {
  if (wal_ == nullptr) return uint64_t{0};
  return wal_->Append(type, payload);
}

void WalLogger::ResetEpoch() {
  MutexLock lock(&mutex_);
  imaged_.clear();
}

}  // namespace mope::storage
