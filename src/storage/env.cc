#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace mope::storage {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Directory part of `path` ("" -> "."), for the post-rename directory sync.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// POSIX implementation.
// ---------------------------------------------------------------------------

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* out) override {
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      const ssize_t got = ::pread(fd_, out->data() + done, n - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("pread", path_));
      }
      if (got == 0) {
        return Status::OutOfRange("read past EOF in '" + path_ + "'");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t put = ::pwrite(fd_, data.data() + done,
                                   data.size() - done,
                                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("pwrite", path_));
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::Internal(Errno("fsync", path_));
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return Status::Internal(Errno("fstat", path_));
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixAppendFile : public AppendFile {
 public:
  PosixAppendFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixAppendFile() override { ::close(fd_); }

  Status Append(std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t put =
          ::write(fd_, data.data() + done, data.size() - done);
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("write", path_));
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::Internal(Errno("fsync", path_));
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return Status::Internal(Errno("fstat", path_));
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return Status::Internal(Errno("open", path));
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(fd, path));
  }

  Result<std::unique_ptr<AppendFile>> OpenAppend(const std::string& path,
                                                 bool truncate) override {
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::Internal(Errno("open", path));
    return std::unique_ptr<AppendFile>(new PosixAppendFile(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no file '" + path + "'");
      return Status::Internal(Errno("open", path));
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got < 0) {
        if (errno == EINTR) continue;
        const Status st = Status::Internal(Errno("read", path));
        ::close(fd);
        return st;
      }
      if (got == 0) break;
      out.append(buf, static_cast<size_t>(got));
    }
    ::close(fd);
    return out;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override {
    const std::string tmp = path + ".tmp";
    {
      const int fd =
          ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
      if (fd < 0) return Status::Internal(Errno("open", tmp));
      size_t done = 0;
      while (done < contents.size()) {
        const ssize_t put =
            ::write(fd, contents.data() + done, contents.size() - done);
        if (put < 0) {
          if (errno == EINTR) continue;
          const Status st = Status::Internal(Errno("write", tmp));
          ::close(fd);
          ::unlink(tmp.c_str());
          return st;
        }
        done += static_cast<size_t>(put);
      }
      if (::fsync(fd) != 0) {
        const Status st = Status::Internal(Errno("fsync", tmp));
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
      }
      ::close(fd);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      const Status st = Status::Internal(Errno("rename", tmp));
      ::unlink(tmp.c_str());
      return st;
    }
    // The rename itself must survive a crash: sync the directory entry.
    const std::string dir = DirOf(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (dfd >= 0) {
      const int rc = ::fsync(dfd);
      ::close(dfd);
      if (rc != 0) return Status::Internal(Errno("fsync dir", dir));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(Errno("unlink", path));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(Errno("mkdir", path));
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// ---------------------------------------------------------------------------
// In-memory implementation.
// ---------------------------------------------------------------------------

namespace {

/// Shared by both in-memory handle types; the env owns the FileState map,
/// handles keep the state alive (a removed file stays usable through open
/// handles, POSIX-style).
}  // namespace

class InMemRandomAccessFile : public RandomAccessFile {
 public:
  InMemRandomAccessFile(std::shared_ptr<InMemEnv::FileState> state,
                        InMemEnv* env)
      : state_(std::move(state)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* out) override {
    if (offset + n > state_->data.size()) {
      return Status::OutOfRange("read past EOF (in-memory)");
    }
    out->assign(state_->data, offset, n);
    return Status::OK();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    if (offset + data.size() > state_->data.size()) {
      state_->data.resize(offset + data.size(), '\0');
    }
    state_->data.replace(offset, data.size(), data);
    return Status::OK();
  }

  Status Sync() override {
    state_->synced_data = state_->data;
    ++env_->sync_count_;
    return Status::OK();
  }

  Result<uint64_t> Size() override { return state_->data.size(); }

 private:
  std::shared_ptr<InMemEnv::FileState> state_;
  InMemEnv* env_;
};

class InMemAppendFile : public AppendFile {
 public:
  InMemAppendFile(std::shared_ptr<InMemEnv::FileState> state, InMemEnv* env)
      : state_(std::move(state)), env_(env) {}

  Status Append(std::string_view data) override {
    state_->data.append(data);
    return Status::OK();
  }

  Status Sync() override {
    state_->synced_data = state_->data;
    ++env_->sync_count_;
    return Status::OK();
  }

  Result<uint64_t> Size() override { return state_->data.size(); }

 private:
  std::shared_ptr<InMemEnv::FileState> state_;
  InMemEnv* env_;
};

Result<std::unique_ptr<RandomAccessFile>> InMemEnv::OpenRandomAccess(
    const std::string& path) {
  auto& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  return std::unique_ptr<RandomAccessFile>(
      new InMemRandomAccessFile(state, this));
}

Result<std::unique_ptr<AppendFile>> InMemEnv::OpenAppend(
    const std::string& path, bool truncate) {
  auto& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  // Truncation is a data op like any other: not durable until a Sync. A
  // crash between truncate and sync brings the old contents back, which is
  // exactly the case the checkpoint-LSN guard in recovery must handle.
  if (truncate) state->data.clear();
  return std::unique_ptr<AppendFile>(new InMemAppendFile(state, this));
}

Result<std::string> InMemEnv::ReadFile(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file '" + path + "'");
  return it->second->data;
}

Status InMemEnv::WriteFileAtomic(const std::string& path,
                                 std::string_view contents) {
  // Modeled as journaled: rename + dir fsync make the replacement atomic
  // and durable, so both current and synced state flip together.
  auto& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  state->data.assign(contents);
  state->synced_data.assign(contents);
  ++sync_count_;
  return Status::OK();
}

bool InMemEnv::FileExists(const std::string& path) {
  return files_.contains(path);
}

Status InMemEnv::RemoveFile(const std::string& path) {
  files_.erase(path);
  return Status::OK();
}

Status InMemEnv::CreateDir(const std::string& /*path*/) {
  return Status::OK();
}

void InMemEnv::SimulateCrash() {
  for (auto& [path, state] : files_) {
    state->data = state->synced_data;
  }
}

// ---------------------------------------------------------------------------
// Fault-injecting implementation.
// ---------------------------------------------------------------------------

Result<size_t> FaultyEnv::AdmitWrite(size_t n) {
  if (dead_) return Status::Internal("injected: disk dead after fault");
  if (faults_.fail_after_writes >= 0 &&
      writes_issued_ >= faults_.fail_after_writes) {
    dead_ = true;
    if (faults_.torn) {
      return static_cast<size_t>(static_cast<double>(n) *
                                 faults_.torn_fraction);
    }
    return Status::Internal("injected: write failure");
  }
  ++writes_issued_;
  return n;
}

Status FaultyEnv::AdmitSync() {
  if (dead_) return Status::Internal("injected: disk dead after fault");
  if (faults_.fail_sync) return Status::Internal("injected: fsync failure");
  return Status::OK();
}

class FaultyRandomAccessFile : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         FaultyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* out) override {
    return base_->Read(offset, n, out);
  }

  Status Write(uint64_t offset, std::string_view data) override {
    MOPE_ASSIGN_OR_RETURN(size_t admitted, env_->AdmitWrite(data.size()));
    if (admitted >= data.size()) return base_->Write(offset, data);
    // Torn write: a prefix reaches the medium, then the failure surfaces.
    MOPE_RETURN_NOT_OK(base_->Write(offset, data.substr(0, admitted)));
    return Status::Internal("injected: torn write");
  }

  Status Sync() override {
    MOPE_RETURN_NOT_OK(env_->AdmitSync());
    return base_->Sync();
  }

  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultyEnv* env_;
};

class FaultyAppendFile : public AppendFile {
 public:
  FaultyAppendFile(std::unique_ptr<AppendFile> base, FaultyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    MOPE_ASSIGN_OR_RETURN(size_t admitted, env_->AdmitWrite(data.size()));
    if (admitted >= data.size()) return base_->Append(data);
    MOPE_RETURN_NOT_OK(base_->Append(data.substr(0, admitted)));
    return Status::Internal("injected: torn append");
  }

  Status Sync() override {
    MOPE_RETURN_NOT_OK(env_->AdmitSync());
    return base_->Sync();
  }

  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  std::unique_ptr<AppendFile> base_;
  FaultyEnv* env_;
};

Result<std::unique_ptr<RandomAccessFile>> FaultyEnv::OpenRandomAccess(
    const std::string& path) {
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> base,
                        base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultyRandomAccessFile(std::move(base), this));
}

Result<std::unique_ptr<AppendFile>> FaultyEnv::OpenAppend(
    const std::string& path, bool truncate) {
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> base,
                        base_->OpenAppend(path, truncate));
  return std::unique_ptr<AppendFile>(
      new FaultyAppendFile(std::move(base), this));
}

Result<std::string> FaultyEnv::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}

Status FaultyEnv::WriteFileAtomic(const std::string& path,
                                  std::string_view contents) {
  // One logical write. On an injected fault nothing reaches the base env:
  // that is the contract of atomic replace — a failed attempt leaves the
  // previous file untouched (the torn bytes would have hit the temp file).
  MOPE_ASSIGN_OR_RETURN(size_t admitted, AdmitWrite(contents.size()));
  if (admitted < contents.size()) {
    return Status::Internal("injected: crash during atomic write");
  }
  return base_->WriteFileAtomic(path, contents);
}

bool FaultyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultyEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultyEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

}  // namespace mope::storage
