#ifndef MOPE_STORAGE_BTREE_FILE_H_
#define MOPE_STORAGE_BTREE_FILE_H_

/// \file btree_file.h
/// Paged B+-tree from (uint64 ciphertext key, uint64 row id) pairs to row
/// ids, with nodes stored in buffer-pool pages — the on-disk counterpart of
/// engine::BPlusTree, mirroring its semantics (duplicate keys, composite
/// (key, row_id) entry identity, leaf chain for range scans).
///
/// Page layouts:
///   kBTreeLeaf:     payload = count entries of [u64 key][u64 row_id]
///                   (16 B, 254 per page); `next` = right sibling.
///   kBTreeInternal: payload = count entries of [u64 sep_key][u64 sep_rid]
///                   [u64 child] (24 B, 169 per page); `aux` = leftmost
///                   child. Child `entries[i].child` covers pairs >=
///                   (sep_key, sep_rid)[i]; `aux` covers pairs below
///                   entries[0].
///
/// Deletion is lazy: the entry is removed from its leaf but nodes are never
/// merged or rebalanced, so leaves can run empty. Separators stay valid as
/// ordering fences. The serving path is the in-memory tree; this structure
/// exists for durability, so occupancy is traded for simplicity.
///
/// Index pages are NOT WAL-logged. After a clean checkpoint they are
/// consistent on disk; after a crash, recovery rebuilds every index from
/// the (logged, redone) heap instead of trusting possibly-torn index pages.
/// That trade keeps multi-page split logging out of the WAL entirely — see
/// DESIGN.md §9.
///
/// Not internally synchronized, same discipline as TableHeap.

#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace mope::storage {

class BTreeFile {
 public:
  /// Opens an existing tree rooted at `root`, or creates an empty one
  /// (single empty leaf) when `root` is kInvalidPageId. The root page id is
  /// the engine's to persist; it can change on root splits — read it back
  /// via root() when checkpointing.
  static Result<std::unique_ptr<BTreeFile>> Open(BufferPool* pool,
                                                 PageId root);

  /// Inserts an entry. Precondition (as for engine::BPlusTree): the
  /// (key, row_id) pair is not already present.
  Status Insert(uint64_t key, uint64_t row_id);

  /// Removes one entry matching (key, row_id); false when absent.
  Result<bool> Erase(uint64_t key, uint64_t row_id);

  /// Leaf pages touched by a scan — the I/O a disk-backed DBMS pays.
  struct ScanStats {
    size_t nodes_visited = 0;
  };

  /// Calls fn(key, row_id) for every entry with lo <= key <= hi in
  /// ascending (key, row_id) order; returns the number visited. `stats`
  /// accumulates when non-null.
  Result<size_t> ScanRange(
      uint64_t lo, uint64_t hi,
      const std::function<void(uint64_t, uint64_t)>& fn,
      ScanStats* stats = nullptr);

  /// Counts entries in [lo, hi].
  Result<size_t> CountRange(uint64_t lo, uint64_t hi);

  /// Verifies ordering, uniform leaf depth, sibling links and entry counts
  /// (no occupancy floor — deletion is lazy). Internal on violation.
  Status CheckInvariants();

  PageId root() const { return root_; }

 private:
  BTreeFile(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct Split;  // propagated (separator, new right page) from a child

  Result<PageId> FindLeaf(uint64_t key, uint64_t row_id);
  Status InsertRec(PageId page_id, uint64_t key, uint64_t row_id,
                   std::unique_ptr<Split>* split);
  Status CheckNode(PageId page_id, int depth, int* leaf_depth, uint64_t lo_key,
                   uint64_t lo_rid, bool has_lo, uint64_t hi_key,
                   uint64_t hi_rid, bool has_hi, PageId* prev_leaf);

  BufferPool* const pool_;
  PageId root_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_BTREE_FILE_H_
