#ifndef MOPE_STORAGE_DISK_MANAGER_H_
#define MOPE_STORAGE_DISK_MANAGER_H_

/// \file disk_manager.h
/// Page-granular file I/O over an Env file, with per-page checksums.
///
/// The DiskManager owns the page file (`pages.db` in a data directory) and
/// is the only component that moves whole pages between memory and the
/// medium. Every write stamps the page's CRC-32; every read verifies it and
/// returns Corruption on mismatch — which is how torn pages are *detected*;
/// WAL full-page images are how they are *repaired* (see wal.h).
///
/// Thread safety: guarded by its own mope::Mutex (rank kStorageDisk). In
/// practice the BufferPool serializes access anyway, but the lock keeps the
/// page-count bookkeeping safe for direct users (benches, recovery).

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"
#include "storage/env.h"
#include "storage/page.h"

namespace mope::storage {

class DiskManager {
 public:
  /// Opens (creating if absent) the page file at `path`. A file size that
  /// is not a multiple of kPageSize — a crash mid-extension — is rounded
  /// down; the torn tail page is rewritten by redo from its full-page image.
  /// `metrics` may be null (falls back to the process-global registry).
  static Result<std::unique_ptr<DiskManager>> Open(
      Env* env, const std::string& path, obs::MetricsRegistry* metrics);

  /// Reads page `id` into `out` (at least kPageSize bytes) and verifies its
  /// checksum. Corruption on mismatch; OutOfRange past the end of the file.
  Status ReadPage(PageId id, char* out) MOPE_EXCLUDES(mutex_);

  /// Stamps the checksum into `page` (mutating it) and writes it out. Does
  /// not sync; durability points are the caller's (checkpoint / WAL-ahead).
  Status WritePage(PageId id, char* page) MOPE_EXCLUDES(mutex_);

  /// Hands out the next page id. The file is extended lazily by the first
  /// write; an allocated-but-never-written page does not survive a crash,
  /// which is fine — redo re-allocates deterministically from the records.
  PageId AllocatePage() MOPE_EXCLUDES(mutex_);

  /// Ensures ids up to and including `id` are considered allocated (used by
  /// recovery when redo records reference pages the meta didn't know yet).
  void ReserveThrough(PageId id) MOPE_EXCLUDES(mutex_);

  uint64_t page_count() MOPE_EXCLUDES(mutex_);

  Status Sync() MOPE_EXCLUDES(mutex_);

 private:
  DiskManager(std::unique_ptr<RandomAccessFile> file, uint64_t pages,
              obs::MetricsRegistry* metrics);

  mutable Mutex mutex_{lock_rank::kStorageDisk};
  std::unique_ptr<RandomAccessFile> file_ MOPE_GUARDED_BY(mutex_);
  /// First never-handed-out page id; >= every page the file holds.
  PageId next_page_ MOPE_GUARDED_BY(mutex_);

  obs::Counter* page_reads_;
  obs::Counter* page_writes_;
  obs::Counter* syncs_;
  obs::Counter* read_corruptions_;
};

}  // namespace mope::storage

#endif  // MOPE_STORAGE_DISK_MANAGER_H_
