#include "storage/wal.h"

#include <utility>

#include "common/crc32.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace mope::storage {

namespace {

constexpr size_t kHeaderSize = 17;  // crc(4) + len(4) + lsn(8) + type(1)

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : obs::Registry();
}

}  // namespace

Wal::Wal(Env* env, std::string path, std::unique_ptr<AppendFile> file,
         uint64_t next_lsn, uint64_t sync_every, obs::MetricsRegistry* metrics,
         obs::Clock* clock)
    : env_(env),
      path_(std::move(path)),
      file_(std::move(file)),
      next_lsn_(next_lsn),
      last_synced_lsn_(next_lsn == 0 ? 0 : next_lsn - 1),
      sync_every_(sync_every),
      clock_(clock != nullptr ? clock : obs::SystemClock()),
      records_(OrGlobal(metrics)->GetCounter("storage.wal.records")),
      bytes_(OrGlobal(metrics)->GetCounter("storage.wal.bytes")),
      syncs_(OrGlobal(metrics)->GetCounter("storage.wal.syncs")),
      fsync_ns_(OrGlobal(metrics)->GetHistogram("storage.wal.fsync_ns")) {}

Result<std::unique_ptr<Wal>> Wal::Open(Env* env, const std::string& path,
                                       uint64_t next_lsn, uint64_t sync_every,
                                       obs::MetricsRegistry* metrics,
                                       obs::Clock* clock) {
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> file,
                        env->OpenAppend(path, /*truncate=*/false));
  return std::unique_ptr<Wal>(new Wal(env, path, std::move(file), next_lsn,
                                      sync_every, metrics, clock));
}

Result<uint64_t> Wal::Append(WalRecordType type, std::string_view payload) {
  const obs::ScopedSpan span("storage.wal.append");
  MutexLock lock(&mutex_);
  const uint64_t lsn = next_lsn_++;
  char header[kHeaderSize];
  StoreU32(header + 4, static_cast<uint32_t>(payload.size()));
  StoreU64(header + 8, lsn);
  header[16] = static_cast<char>(type);
  uint32_t crc = Crc32(std::string_view(header + 4, kHeaderSize - 4));
  crc = Crc32Continue(crc, payload);
  StoreU32(header, crc);
  pending_.append(header, kHeaderSize);
  pending_.append(payload);
  records_->Increment();
  bytes_->Increment(static_cast<int64_t>(kHeaderSize + payload.size()));
  ++unsynced_records_;
  if (sync_every_ != 0 && unsynced_records_ >= sync_every_) {
    MOPE_RETURN_NOT_OK(SyncLocked());
  }
  return lsn;
}

Status Wal::SyncLocked() {
  if (!pending_.empty()) {
    MOPE_RETURN_NOT_OK(file_->Append(pending_));
    pending_.clear();
  }
  if (unsynced_records_ == 0) return Status::OK();
  {
    // The fsync is the commit point and the dominant cost of a write path;
    // it gets both a span (visible in slow-query traces) and a latency
    // histogram (visible to a scraper as fsync_ns quantiles).
    const obs::ScopedSpan span("storage.wal.sync");
    const uint64_t start_ns = clock_->NowNanos();
    MOPE_RETURN_NOT_OK(file_->Sync());
    fsync_ns_->Observe(clock_->NowNanos() - start_ns);
  }
  syncs_->Increment();
  last_synced_lsn_ = next_lsn_ - 1;
  unsynced_records_ = 0;
  return Status::OK();
}

Status Wal::Sync() {
  MutexLock lock(&mutex_);
  return SyncLocked();
}

Status Wal::SyncTo(uint64_t lsn) {
  MutexLock lock(&mutex_);
  if (lsn <= last_synced_lsn_) return Status::OK();
  return SyncLocked();
}

Status Wal::Restart() {
  MutexLock lock(&mutex_);
  pending_.clear();
  unsynced_records_ = 0;
  MOPE_ASSIGN_OR_RETURN(file_, env_->OpenAppend(path_, /*truncate=*/true));
  // Make the truncation itself durable: without this fsync a crash can
  // resurrect the pre-checkpoint log contents, and only the checkpoint-LSN
  // guard in ReadAll would save us. Belt and suspenders. It is a real WAL
  // fsync on the commit path of every checkpoint, so it feeds the same
  // span and latency histogram as record syncs.
  {
    const obs::ScopedSpan span("storage.wal.sync");
    const uint64_t start_ns = clock_->NowNanos();
    MOPE_RETURN_NOT_OK(file_->Sync());
    fsync_ns_->Observe(clock_->NowNanos() - start_ns);
  }
  last_synced_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

uint64_t Wal::next_lsn() {
  MutexLock lock(&mutex_);
  return next_lsn_;
}

Result<std::vector<WalRecord>> Wal::ReadAll(Env* env, const std::string& path,
                                            uint64_t after_lsn) {
  std::vector<WalRecord> out;
  if (!env->FileExists(path)) return out;
  MOPE_ASSIGN_OR_RETURN(std::string data, env->ReadFile(path));
  size_t pos = 0;
  while (data.size() - pos >= kHeaderSize) {
    const char* p = data.data() + pos;
    const uint32_t stored_crc = LoadU32(p);
    const uint32_t len = LoadU32(p + 4);
    if (data.size() - pos - kHeaderSize < len) break;  // torn tail
    uint32_t crc = Crc32(std::string_view(p + 4, kHeaderSize - 4));
    crc = Crc32Continue(crc, std::string_view(p + kHeaderSize, len));
    if (crc != stored_crc) break;  // torn tail (or bit rot — either way stop)
    const uint64_t lsn = LoadU64(p + 8);
    if (lsn > after_lsn) {
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = static_cast<WalRecordType>(p[16]);
      rec.payload.assign(p + kHeaderSize, len);
      out.push_back(std::move(rec));
    }
    pos += kHeaderSize + len;
  }
  return out;
}

}  // namespace mope::storage
