#ifndef MOPE_COMMON_INTERVAL_H_
#define MOPE_COMMON_INTERVAL_H_

/// \file interval.h
/// Modular (wrap-around) intervals over a finite domain {0, ..., domain-1}.
///
/// The paper works over the 1-based message space [M]; this library uses the
/// equivalent 0-based space {0, ..., M-1} throughout. A modular interval of
/// length L starting at s covers {s, s+1 mod M, ..., s+L-1 mod M} and may
/// wrap around the end of the domain — MOPE range queries are exactly such
/// intervals on the ciphertext space.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace mope {

/// A contiguous, non-modular [lo, hi] segment (inclusive ends).
struct Segment {
  uint64_t lo = 0;
  uint64_t hi = 0;

  uint64_t length() const { return hi - lo + 1; }
  bool operator==(const Segment&) const = default;
};

/// A possibly-wrapping interval on {0, ..., domain-1}.
class ModularInterval {
 public:
  /// Interval of `length` elements starting at `start` (mod domain).
  /// Preconditions: domain > 0, start < domain, 1 <= length <= domain.
  ModularInterval(uint64_t start, uint64_t length, uint64_t domain);

  /// Builds the interval covering first..last inclusive (wrapping when
  /// last < first), matching the paper's [mL, mR] / [cL, cR] notation.
  static ModularInterval FromEndpoints(uint64_t first, uint64_t last,
                                       uint64_t domain);

  uint64_t start() const { return start_; }
  uint64_t length() const { return length_; }
  uint64_t domain() const { return domain_; }

  /// Last element of the interval (inclusive), possibly < start() when wrapped.
  uint64_t last() const { return (start_ + length_ - 1) % domain_; }

  /// True when the interval wraps past domain-1 back to 0.
  bool wraps() const { return start_ + length_ > domain_; }

  /// True when x is covered by the interval.
  bool Contains(uint64_t x) const;

  /// Decomposes into 1 (non-wrapping) or 2 (wrapping) linear segments, in
  /// ascending order of `lo`. Returns the number of segments written.
  int ToSegments(std::array<Segment, 2>* out) const;

  /// Offset of x from start along the interval direction, if contained.
  std::optional<uint64_t> OffsetOf(uint64_t x) const;

  /// The interval shifted by +delta (mod domain), same length.
  ModularInterval Shifted(uint64_t delta) const {
    return ModularInterval((start_ + delta) % domain_, length_, domain_);
  }

  /// "[s, e] mod M" rendering for logs and error messages.
  std::string ToString() const;

  bool operator==(const ModularInterval&) const = default;

 private:
  uint64_t start_;
  uint64_t length_;
  uint64_t domain_;
};

}  // namespace mope

#endif  // MOPE_COMMON_INTERVAL_H_
