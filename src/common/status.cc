#include "common/status.h"

#include <cstdio>

namespace mope {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kNotSupported: return "not supported";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* what) {
  std::fprintf(  // invariant-ok: R11 abort path below the logger's lock
      stderr, "MOPE_CHECK failed at %s:%d: %s\n", file, line, what);
  std::abort();
}

}  // namespace internal
}  // namespace mope
