#include "common/crc32.h"

#include <array>

namespace mope {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

uint32_t Update(uint32_t crc, std::string_view bytes) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  return Update(0xFFFFFFFFu, bytes) ^ 0xFFFFFFFFu;
}

uint32_t Crc32Continue(uint32_t crc, std::string_view bytes) {
  return Update(crc ^ 0xFFFFFFFFu, bytes) ^ 0xFFFFFFFFu;
}

}  // namespace mope
