#include "common/math_util.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace mope {

double LogFactorial(uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double LogHypergeometricPmf(uint64_t total, uint64_t success, uint64_t draws,
                            uint64_t k) {
  MOPE_CHECK(success <= total && draws <= total, "HG parameters out of range");
  const uint64_t fail = total - success;
  if (k > draws || k > success || draws - k > fail) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogBinomial(success, k) + LogBinomial(fail, draws - k) -
         LogBinomial(total, draws);
}

double HypergeometricMean(uint64_t total, uint64_t success, uint64_t draws) {
  MOPE_CHECK(total > 0, "HG total must be positive");
  return static_cast<double>(draws) * static_cast<double>(success) /
         static_cast<double>(total);
}

double LogBinomialTail(uint64_t n, double p, uint64_t k) {
  MOPE_CHECK(p >= 0.0 && p <= 1.0, "binomial p must be in [0, 1]");
  if (k >= n) return 0.0;
  if (p == 0.0) return 0.0;  // all mass at X = 0 <= k < n
  if (p == 1.0) return -std::numeric_limits<double>::infinity();
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  // logsumexp over i = 0..k of log C(n, i) + i log p + (n - i) log(1 - p).
  double max_term = -std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i <= k; ++i) {
    const double term = LogBinomial(n, i) + static_cast<double>(i) * log_p +
                        static_cast<double>(n - i) * log_q;
    if (term > max_term) max_term = term;
  }
  double sum = 0.0;
  for (uint64_t i = 0; i <= k; ++i) {
    const double term = LogBinomial(n, i) + static_cast<double>(i) * log_p +
                        static_cast<double>(n - i) * log_q;
    sum += std::exp(term - max_term);
  }
  const double log_tail = max_term + std::log(sum);
  return log_tail > 0.0 ? 0.0 : log_tail;  // clamp fp noise at log 1
}

double NormalQuantile(double p) {
  MOPE_CHECK(p > 0.0 && p < 1.0, "NormalQuantile requires p in (0, 1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double ChiSquareCriticalValue(double df, double alpha) {
  MOPE_CHECK(df > 0 && alpha > 0 && alpha < 1, "invalid chi-square params");
  // Wilson-Hilferty: X ~ df * (1 - 2/(9 df) + z * sqrt(2/(9 df)))^3.
  const double z = NormalQuantile(1.0 - alpha);
  const double t = 2.0 / (9.0 * df);
  const double cube = 1.0 - t + z * std::sqrt(t);
  return df * cube * cube * cube;
}

int FloorLog2(uint64_t x) {
  MOPE_CHECK(x >= 1, "FloorLog2 requires x >= 1");
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace mope
