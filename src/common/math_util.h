#ifndef MOPE_COMMON_MATH_UTIL_H_
#define MOPE_COMMON_MATH_UTIL_H_

/// \file math_util.h
/// Numeric helpers shared by the HGD sampler, the security experiments and
/// the statistics in tests: log-space combinatorics and distribution tails.

#include <cstdint>

namespace mope {

/// log(n!) via lgamma; exact for the integer arguments we use.
double LogFactorial(uint64_t n);

/// log C(n, k); -inf when k > n.
double LogBinomial(uint64_t n, uint64_t k);

/// Log of the hypergeometric pmf:
///   P[X = k] for X ~ HG(total=N, success=K, draws=n)
///           = C(K, k) * C(N-K, n-k) / C(N, n).
/// Returns -inf outside the support max(0, n-(N-K)) <= k <= min(n, K).
double LogHypergeometricPmf(uint64_t total, uint64_t success, uint64_t draws,
                            uint64_t k);

/// Mean of HG(total, success, draws) = draws * success / total.
double HypergeometricMean(uint64_t total, uint64_t success, uint64_t draws);

/// Log of the lower binomial tail: log P[X <= k] for X ~ Bin(n, p),
/// computed in log space (LogBinomial + logsumexp) so it stays finite for
/// the n in the tens of millions the leakage auditor feeds it. p in [0, 1];
/// k >= n returns 0 (= log 1).
double LogBinomialTail(uint64_t n, double p, uint64_t k);

/// Approximate upper critical value of the chi-square distribution with df
/// degrees of freedom at significance alpha (Wilson-Hilferty cube
/// approximation). Good to a few percent for df >= 5 — sufficient for the
/// goodness-of-fit assertions in tests.
double ChiSquareCriticalValue(double df, double alpha);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9).
double NormalQuantile(double p);

/// ceil(a / b) for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Floor of log2(x); precondition x >= 1.
int FloorLog2(uint64_t x);

/// Greatest common divisor.
uint64_t Gcd(uint64_t a, uint64_t b);

}  // namespace mope

#endif  // MOPE_COMMON_MATH_UTIL_H_
