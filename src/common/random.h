#ifndef MOPE_COMMON_RANDOM_H_
#define MOPE_COMMON_RANDOM_H_

/// \file random.h
/// Deterministic, seedable pseudo-random number generation.
///
/// The library never uses std::mt19937 or std::random_device internally:
/// all simulation randomness flows through `Rng` (xoshiro256**) so that
/// experiments are reproducible from a single seed, and all *cryptographic*
/// randomness flows through crypto::CtrDrbg (see crypto/drbg.h).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mope {

/// Entropy source interface: a stream of uniform 64-bit words. Both the
/// simulation RNG and the crypto DRBG implement this, so distribution
/// samplers can be reused for experiments and for PRF-coin-driven encryption.
class BitSource {
 public:
  virtual ~BitSource() = default;

  /// Next uniform 64-bit word.
  virtual uint64_t NextWord() = 0;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling; unbiased.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Number of failures before the first success of a Bernoulli(p) sequence,
  /// i.e. Geometric with support {0, 1, 2, ...}. Precondition: p in (0, 1].
  uint64_t Geometric(double p);

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream stays deterministic and stateless).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }
};

/// Decorates a BitSource with a hard word budget. Once the budget is spent,
/// NextWord() returns 0 and exhausted() latches true; callers on crypto
/// paths (crypto::HgdSample) check the flag and surface a Status instead of
/// silently consuming a degenerate all-zero stream. The zero fallback keeps
/// every downstream rejection loop terminating (0 is below any rejection
/// limit), so exhaustion is always observable at the checkpoint.
class BoundedBitSource final : public BitSource {
 public:
  BoundedBitSource(BitSource* inner, uint64_t word_budget)
      : inner_(inner), remaining_(word_budget) {}

  uint64_t NextWord() override {
    if (remaining_ == 0) {
      exhausted_ = true;
      return 0;
    }
    --remaining_;
    return inner_->NextWord();
  }

  /// True once a draw was requested beyond the budget.
  bool exhausted() const { return exhausted_; }

  /// Words left before exhaustion.
  uint64_t remaining() const { return remaining_; }

 private:
  BitSource* inner_;
  uint64_t remaining_;
  bool exhausted_ = false;
};

/// SplitMix64: used for seeding and for cheap hashing of seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's simulation RNG.
/// Fast, 256-bit state, passes BigCrush; NOT cryptographically secure.
class Rng final : public BitSource {
 public:
  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t NextWord() override;

  /// Long-jump: advances the stream by 2^192 steps, yielding an independent
  /// substream (used to hand disjoint streams to parallel experiments).
  void LongJump();

  /// Fisher-Yates shuffle of a vector, in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace mope

#endif  // MOPE_COMMON_RANDOM_H_
