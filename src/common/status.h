#ifndef MOPE_COMMON_STATUS_H_
#define MOPE_COMMON_STATUS_H_

/// \file status.h
/// Error handling for the MOPE library.
///
/// Following the convention of production database codebases (RocksDB, Arrow),
/// recoverable errors are reported through `Status` / `Result<T>` return
/// values rather than exceptions. Programming errors (violated preconditions
/// inside the library itself) abort via MOPE_CHECK.

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace mope {

/// Machine-readable classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a value outside the documented domain.
  kOutOfRange = 2,        ///< Plaintext/ciphertext outside [1, M] / [1, N].
  kNotFound = 3,          ///< Key/table/index lookup failed.
  kAlreadyExists = 4,     ///< Insert of a duplicate table / unique key.
  kCorruption = 5,        ///< Ciphertext does not decrypt to any plaintext.
  kNotSupported = 6,      ///< Feature outside the supported SQL/engine subset.
  kParseError = 7,        ///< SQL text could not be parsed.
  kInternal = 8,          ///< Invariant violation detected at runtime.
  kUnavailable = 9,       ///< Transient transport failure; safe to retry.
};

/// Returns the canonical lowercase name of a status code ("ok", "not found", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to return by value: the success path
/// carries a single enum; the error path allocates for its message.
///
/// `[[nodiscard]]`: a Status that is never looked at is a bug — either
/// propagate it (MOPE_RETURN_NOT_OK) or branch on it. Call sites that have a
/// documented reason to drop an error must say so via MOPE_IGNORE_STATUS;
/// bare `(void)` casts are rejected by tools/check_invariants.py on crypto
/// and OPE paths.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error return type. Holds either a `T` or a non-OK `Status`.
/// `[[nodiscard]]` for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return Status::InvalidArgument(...);`.
  /// Constructing a Result from an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::abort();  // Result from OK status: no value to hold.
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value. Precondition: ok().
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression.
#define MOPE_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::mope::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define MOPE_CONCAT_IMPL(x, y) x##y
#define MOPE_CONCAT(x, y) MOPE_CONCAT_IMPL(x, y)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define MOPE_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto MOPE_CONCAT(_res_, __LINE__) = (rexpr);                       \
  if (!MOPE_CONCAT(_res_, __LINE__).ok())                            \
    return MOPE_CONCAT(_res_, __LINE__).status();                    \
  lhs = std::move(MOPE_CONCAT(_res_, __LINE__)).value()

namespace internal {
template <typename T>
inline void ConsumeIgnored(T&& /*unused*/) {}
}  // namespace internal

/// Documents an intentionally dropped Status/Result at a call site where the
/// error genuinely cannot be acted on (best-effort cleanup, logging paths).
/// The reason string keeps the call site self-auditing via
/// `git grep MOPE_IGNORE_STATUS`. Disallowed in src/crypto/ and src/ope/ by
/// tools/check_invariants.py: crypto paths must propagate.
#define MOPE_IGNORE_STATUS(expr, reason)                         \
  do {                                                           \
    static_assert(sizeof(reason "") > 1, "give a real reason");  \
    ::mope::internal::ConsumeIgnored((expr));                    \
  } while (0)

/// Aborts with a message when an internal invariant is violated.
#define MOPE_CHECK(cond, what)                                        \
  do {                                                                \
    if (!(cond)) ::mope::internal::CheckFailed(__FILE__, __LINE__, what); \
  } while (0)

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* what);
}  // namespace internal

}  // namespace mope

#endif  // MOPE_COMMON_STATUS_H_
