#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace mope {

void Histogram::Add(uint64_t bin, uint64_t weight) {
  MOPE_CHECK(bin < counts_.size(), "histogram bin out of range");
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::Remove(uint64_t bin, uint64_t weight) {
  MOPE_CHECK(bin < counts_.size(), "histogram bin out of range");
  MOPE_CHECK(counts_[bin] >= weight, "histogram bin underflow");
  counts_[bin] -= weight;
  total_ -= weight;
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::Probability(uint64_t bin) const {
  MOPE_CHECK(bin < counts_.size(), "histogram bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> probs(counts_.size(), 0.0);
  if (total_ == 0) return probs;
  for (size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return probs;
}

uint64_t Histogram::MaxCount() const {
  uint64_t best = 0;
  for (uint64_t c : counts_) best = std::max(best, c);
  return best;
}

uint64_t Histogram::ArgMax() const {
  MOPE_CHECK(!counts_.empty(), "ArgMax of empty histogram");
  return static_cast<uint64_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

double Histogram::ChiSquareVsUniform() const {
  if (counts_.empty() || total_ == 0) return 0.0;
  const double expected =
      static_cast<double>(total_) / static_cast<double>(counts_.size());
  double chi2 = 0.0;
  for (uint64_t c : counts_) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double Histogram::ChiSquareVs(const std::vector<double>& expected) const {
  MOPE_CHECK(expected.size() == counts_.size(), "expected size mismatch");
  if (total_ == 0) return 0.0;
  double chi2 = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double e = expected[i] * static_cast<double>(total_);
    if (e <= 0.0) {
      if (counts_[i] > 0) return std::numeric_limits<double>::infinity();
      continue;
    }
    const double d = static_cast<double>(counts_[i]) - e;
    chi2 += d * d / e;
  }
  return chi2;
}

double Histogram::TotalVariationDistance(const Histogram& other) const {
  MOPE_CHECK(other.size() == size(), "TV distance requires equal sizes");
  const auto p = Normalized();
  const auto q = other.Normalized();
  double tv = 0.0;
  for (size_t i = 0; i < p.size(); ++i) tv += std::abs(p[i] - q[i]);
  return tv / 2.0;
}

std::string Histogram::ToAscii(int width, int max_rows) const {
  if (counts_.empty()) return "(empty histogram)\n";
  // Re-bin into at most max_rows rows.
  const size_t n = counts_.size();
  const size_t rows = std::min<size_t>(static_cast<size_t>(max_rows), n);
  std::vector<uint64_t> binned(rows, 0);
  for (size_t i = 0; i < n; ++i) binned[i * rows / n] += counts_[i];
  const uint64_t peak = *std::max_element(binned.begin(), binned.end());
  std::string out;
  for (size_t r = 0; r < rows; ++r) {
    const size_t lo = r * n / rows;
    const size_t hi = (r + 1) * n / rows - 1;
    char label[48];
    std::snprintf(label, sizeof(label), "[%6zu,%6zu] %8llu |", lo, hi,
                  static_cast<unsigned long long>(binned[r]));
    out += label;
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(binned[r]) /
                                     static_cast<double>(peak) * width);
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace mope
