#include "common/interval.h"

#include "common/status.h"

namespace mope {

ModularInterval::ModularInterval(uint64_t start, uint64_t length, uint64_t domain)
    : start_(start), length_(length), domain_(domain) {
  MOPE_CHECK(domain > 0, "interval domain must be positive");
  MOPE_CHECK(start < domain, "interval start must lie inside the domain");
  MOPE_CHECK(length >= 1 && length <= domain, "interval length in [1, domain]");
}

ModularInterval ModularInterval::FromEndpoints(uint64_t first, uint64_t last,
                                               uint64_t domain) {
  MOPE_CHECK(first < domain && last < domain, "endpoints inside the domain");
  uint64_t length = (last >= first) ? (last - first + 1)
                                    : (domain - first + last + 1);
  return ModularInterval(first, length, domain);
}

bool ModularInterval::Contains(uint64_t x) const {
  if (x >= domain_) return false;
  uint64_t offset = (x >= start_) ? (x - start_) : (domain_ - start_ + x);
  return offset < length_;
}

int ModularInterval::ToSegments(std::array<Segment, 2>* out) const {
  if (!wraps()) {
    (*out)[0] = Segment{start_, start_ + length_ - 1};
    return 1;
  }
  // Wrapped: [0, last] and [start, domain-1], ascending by lo.
  (*out)[0] = Segment{0, last()};
  (*out)[1] = Segment{start_, domain_ - 1};
  return 2;
}

std::optional<uint64_t> ModularInterval::OffsetOf(uint64_t x) const {
  if (x >= domain_) return std::nullopt;
  uint64_t offset = (x >= start_) ? (x - start_) : (domain_ - start_ + x);
  if (offset >= length_) return std::nullopt;
  return offset;
}

std::string ModularInterval::ToString() const {
  return "[" + std::to_string(start_) + ", " + std::to_string(last()) +
         "] mod " + std::to_string(domain_);
}

}  // namespace mope
