#include "common/random.h"

#include <cmath>

#include "common/status.h"

namespace mope {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t BitSource::UniformUint64(uint64_t bound) {
  MOPE_CHECK(bound > 0, "UniformUint64 bound must be positive");
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
  uint64_t w;
  do {
    w = NextWord();
  } while (w >= limit && limit != 0);
  return w % bound;
}

int64_t BitSource::UniformInt64(int64_t lo, int64_t hi) {
  MOPE_CHECK(lo <= hi, "UniformInt64 requires lo <= hi");
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextWord());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double BitSource::UniformDouble() {
  return static_cast<double>(NextWord() >> 11) * 0x1.0p-53;
}

bool BitSource::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t BitSource::Geometric(double p) {
  MOPE_CHECK(p > 0.0 && p <= 1.0, "Geometric requires p in (0, 1]");
  if (p == 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)).
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  double g = std::floor(std::log(u) / std::log1p(-p));
  if (g < 0) g = 0;
  // Cap to avoid overflow on pathological p close to 0.
  if (g > 9.0e18) g = 9.0e18;
  return static_cast<uint64_t>(g);
}

double BitSource::Gaussian() {
  // Box-Muller transform; discard the second variate for stream determinism.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
}

uint64_t Rng::NextWord() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Rng::LongJump() {
  static constexpr uint64_t kJump[] = {0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL,
                                       0x77710069854EE241ULL, 0x39109BB02ACBE635ULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      NextWord();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace mope
