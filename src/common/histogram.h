#ifndef MOPE_COMMON_HISTOGRAM_H_
#define MOPE_COMMON_HISTOGRAM_H_

/// \file histogram.h
/// Integer-count histogram over a finite domain {0, ..., size-1}.
///
/// Used (a) by the proxy to represent the user's query-start distribution
/// (Section 3.1 reduces all queries to fixed-length-k queries so a single
/// O(M) histogram over start points suffices), and (b) by experiments to
/// measure perceived query distributions at the adversary.

#include <cstdint>
#include <string>
#include <vector>

namespace mope {

class Histogram {
 public:
  Histogram() = default;
  /// Histogram with `size` zeroed bins.
  explicit Histogram(uint64_t size) : counts_(size, 0), total_(0) {}

  uint64_t size() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  uint64_t count(uint64_t bin) const { return counts_[bin]; }

  /// Adds `weight` observations of `bin`.
  void Add(uint64_t bin, uint64_t weight = 1);

  /// Removes `weight` observations of `bin`. Precondition: count >= weight.
  void Remove(uint64_t bin, uint64_t weight = 1);

  /// Resets all bins to zero.
  void Clear();

  /// Empirical probability of `bin`; 0 when the histogram is empty.
  double Probability(uint64_t bin) const;

  /// Normalized probabilities for all bins (empty histogram -> all zeros).
  std::vector<double> Normalized() const;

  /// Largest bin count.
  uint64_t MaxCount() const;

  /// Index of the largest bin (first one on ties).
  uint64_t ArgMax() const;

  /// Pearson chi-square statistic against a uniform distribution over all
  /// bins. Small values (relative to size-1 degrees of freedom) indicate the
  /// histogram is consistent with uniform — the perceived-distribution check
  /// for QueryU.
  double ChiSquareVsUniform() const;

  /// Chi-square statistic against an arbitrary expected distribution
  /// (probabilities; bins with expected 0 must have count 0 or contribute inf).
  double ChiSquareVs(const std::vector<double>& expected) const;

  /// Total variation distance between this histogram's empirical distribution
  /// and `other`'s. Both must have the same size.
  double TotalVariationDistance(const Histogram& other) const;

  /// Multi-line ASCII rendering (for the figure benches), `width` chars wide.
  std::string ToAscii(int width = 60, int max_rows = 20) const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace mope

#endif  // MOPE_COMMON_HISTOGRAM_H_
