#include "common/thread_annotations.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mope {
namespace lock_rank {
namespace detail {

namespace {
// Ranks currently held by this thread, in acquisition order. A plain vector:
// depth is bounded by the number of distinct ranks (single digits), and the
// thread_local keeps the bookkeeping contention-free.
thread_local std::vector<int> t_held_ranks;
}  // namespace

void RankAcquire(int rank) {
  if (!t_held_ranks.empty()) {
    const int max_held =
        *std::max_element(t_held_ranks.begin(), t_held_ranks.end());
    if (rank <= max_held) {
      std::fprintf(  // invariant-ok: R11 abort path below the logger's lock
          stderr,
          "mope lock-rank violation: acquiring rank %d while holding rank %d "
          "(acquisition order must be strictly increasing; see DESIGN.md "
          "section 8)\n",
          rank, max_held);
      std::abort();
    }
  }
  t_held_ranks.push_back(rank);
}

void RankRelease(int rank) {
  // Reverse find: releases are usually LIFO but MutexLock scopes may
  // interleave, so tolerate out-of-order release of distinct ranks.
  for (auto it = t_held_ranks.rbegin(); it != t_held_ranks.rend(); ++it) {
    if (*it == rank) {
      t_held_ranks.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(  // invariant-ok: R11 abort path below the logger's lock
      stderr,
      "mope lock-rank violation: releasing rank %d that this thread "
      "does not hold\n",
      rank);
  std::abort();
}

}  // namespace detail
}  // namespace lock_rank
}  // namespace mope
