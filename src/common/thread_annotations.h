#ifndef MOPE_COMMON_THREAD_ANNOTATIONS_H_
#define MOPE_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis capability macros, plus the annotated lock
/// wrappers the rest of the tree is required to use (linter rule R9).
///
/// The locking contract of every mutex-owning class in this repo is written
/// in the type system, not in comments: members carry MOPE_GUARDED_BY, the
/// `*Locked` private methods carry MOPE_REQUIRES, and public entry points
/// that take the lock themselves carry MOPE_EXCLUDES. A Clang build with
/// `-DMOPE_THREAD_SAFETY=ON` (the `clang-tsa` preset) promotes
/// -Wthread-safety to an error, so an unguarded read of auditor or proxy
/// state is a *compile failure*, exactly like a dropped Status. On GCC (and
/// any compiler without the attributes) every macro expands to nothing and
/// the wrappers are plain thin shims over the standard primitives.
///
/// Two layers:
///   1. MOPE_* macros — direct spellings of the Clang capability attributes
///      (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///   2. mope::Mutex / mope::SharedMutex / mope::MutexLock /
///      mope::ReaderMutexLock / mope::WriterMutexLock / mope::CondVar —
///      annotated wrappers. Outside src/common/ these are the only legal
///      mutex types (linter rule R9); the raw standard types would be
///      invisible to the analysis.
///
/// Lock ranking (the dynamic complement): every wrapper mutex may carry a
/// rank from mope::lock_rank. When rank checks are compiled in (default in
/// !NDEBUG builds, forced on in the sanitizer presets via
/// MOPE_LOCK_RANK_CHECKS=1) a thread acquiring a ranked mutex must hold only
/// strictly-smaller ranks, so a lock-order inversion aborts at the exact
/// acquisition site the *first* time it runs — tsan's second_deadlock_stack
/// without needing the interleaving. Rank 0 (the default) opts out. The
/// capability map and the ordering rules live in DESIGN.md §8.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only: GCC would warn on the unknown attributes and
// -Werror would turn that into a build break, so everything vanishes there.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define MOPE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MOPE_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability ("mutex", "shared_mutex", "role", ...).
#define MOPE_CAPABILITY(x) MOPE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MOPE_SCOPED_CAPABILITY MOPE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define MOPE_GUARDED_BY(x) MOPE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define MOPE_PT_GUARDED_BY(x) MOPE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Static ordering hints between capabilities.
#define MOPE_ACQUIRED_BEFORE(...) \
  MOPE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MOPE_ACQUIRED_AFTER(...) \
  MOPE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capability (the
/// `*Locked` private-method convention).
#define MOPE_REQUIRES(...) \
  MOPE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MOPE_REQUIRES_SHARED(...) \
  MOPE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the capability itself.
#define MOPE_ACQUIRE(...) \
  MOPE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MOPE_ACQUIRE_SHARED(...) \
  MOPE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MOPE_RELEASE(...) \
  MOPE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MOPE_RELEASE_SHARED(...) \
  MOPE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MOPE_TRY_ACQUIRE(...) \
  MOPE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MOPE_TRY_ACQUIRE_SHARED(...) \
  MOPE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must be called with the capability *not* held (it will take
/// it itself; calling with it held would self-deadlock).
#define MOPE_EXCLUDES(...) MOPE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime claim that the capability is held (for code the analysis cannot
/// follow, e.g. a lock taken by a caller through an opaque interface).
#define MOPE_ASSERT_CAPABILITY(x) MOPE_THREAD_ANNOTATION(assert_capability(x))

/// Accessor returning the capability that guards something.
#define MOPE_RETURN_CAPABILITY(x) MOPE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch of last resort; every use needs a justification comment.
#define MOPE_NO_THREAD_SAFETY_ANALYSIS \
  MOPE_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Lock ranks. Smaller rank = acquired earlier (outermost). A thread may only
// acquire a ranked mutex whose rank is strictly greater than every rank it
// already holds; equal rank catches accidental re-entry (self-deadlock on a
// non-recursive mutex). See DESIGN.md §8 for the full capability map.
// ---------------------------------------------------------------------------

// Rank checking defaults to debug builds; the sanitizer presets force it on
// (they already pay for instrumentation) so CI exercises the ordering rules
// even though the test presets build RelWithDebInfo.
#if !defined(MOPE_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define MOPE_LOCK_RANK_CHECKS 0
#else
#define MOPE_LOCK_RANK_CHECKS 1
#endif
#endif

namespace mope {
namespace lock_rank {

inline constexpr int kNone = 0;               ///< Unranked: no checking.
inline constexpr int kProxy = 10;             ///< proxy::Proxy::mutex_
inline constexpr int kClientConnection = 20;  ///< net::RemoteConnection::mutex_
inline constexpr int kServerAcceptQueue = 30; ///< net::TcpServer::queue_mutex_
inline constexpr int kDispatcher = 40;        ///< net::WireDispatcher::mutex_
inline constexpr int kLeakageAuditor = 50;    ///< obs::LeakageAuditor::mutex_
// The storage cluster nests pool -> {wal, disk} (eviction write-back flushes
// the WAL first — WAL-ahead — then does page I/O), so the pool ranks lowest.
inline constexpr int kStoragePool = 52;       ///< storage::BufferPool::mutex_
inline constexpr int kStorageEpoch = 53;      ///< storage::StorageEngine::epoch_mutex_
inline constexpr int kStorageWal = 54;        ///< storage::Wal::mutex_
inline constexpr int kStorageDisk = 56;       ///< storage::DiskManager::mutex_
inline constexpr int kConnectionRegistry = 60;///< proxy scheme registry
inline constexpr int kTrace = 70;             ///< obs::Trace::mutex_
inline constexpr int kFlightRecorder = 71;    ///< obs::FlightRecorder::mutex_
inline constexpr int kTimeSeriesSampler = 72; ///< obs::TimeSeriesSampler::mutex_
inline constexpr int kAlertEngine = 73;       ///< obs::AlertEngine::mutex_
inline constexpr int kLogSink = 75;           ///< obs::Logger::mutex_
inline constexpr int kMetricsRegistry = 80;   ///< obs::MetricsRegistry::mutex_

namespace detail {
/// Aborts (with both ranks on stderr) if `rank` is <= the largest rank this
/// thread already holds; otherwise records the acquisition.
void RankAcquire(int rank);
/// Forgets one held instance of `rank` (tolerates out-of-LIFO release).
void RankRelease(int rank);
}  // namespace detail

inline void NoteAcquire(int rank) {
#if MOPE_LOCK_RANK_CHECKS
  if (rank != kNone) detail::RankAcquire(rank);
#else
  (void)rank;
#endif
}

inline void NoteRelease(int rank) {
#if MOPE_LOCK_RANK_CHECKS
  if (rank != kNone) detail::RankRelease(rank);
#else
  (void)rank;
#endif
}

}  // namespace lock_rank

// ---------------------------------------------------------------------------
// Annotated wrappers.
// ---------------------------------------------------------------------------

/// Exclusive mutex. Thin over the standard mutex; adds the capability
/// annotations and the optional lock rank.
class MOPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MOPE_ACQUIRE() {
    lock_rank::NoteAcquire(rank_);
    mu_.lock();
  }
  void Unlock() MOPE_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  bool TryLock() MOPE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::NoteAcquire(rank_);
    return true;
  }

  /// BasicLockable spellings so CondVar (std::condition_variable_any
  /// underneath) can release and reacquire during a wait. Not for general
  /// use — take a MutexLock.
  void lock() MOPE_ACQUIRE() { Lock(); }
  void unlock() MOPE_RELEASE() { Unlock(); }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const int rank_ = lock_rank::kNone;
};

/// Reader/writer mutex (for the fine-grained latching ROADMAP item 2 needs;
/// no production user yet).
class MOPE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MOPE_ACQUIRE() {
    lock_rank::NoteAcquire(rank_);
    mu_.lock();
  }
  void Unlock() MOPE_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  void LockShared() MOPE_ACQUIRE_SHARED() {
    lock_rank::NoteAcquire(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() MOPE_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::NoteRelease(rank_);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const int rank_ = lock_rank::kNone;
};

/// RAII exclusive lock over a Mutex (the repo's lock_guard).
class MOPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MOPE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MOPE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* const mu_;
};

/// RAII exclusive lock over a SharedMutex.
class MOPE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) MOPE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() MOPE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class MOPE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) MOPE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() MOPE_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with mope::Mutex. Wait() atomically releases
/// the lock's mutex, blocks, and reacquires before returning — a net no-op
/// on the capability state, which is why it carries no annotation. Callers
/// re-check their predicate in a `while` loop (spurious wakeups, and the
/// analysis cannot see the predicate anyway).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(*lock.mu_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mope

#endif  // MOPE_COMMON_THREAD_ANNOTATIONS_H_
