#ifndef MOPE_COMMON_CRC32_H_
#define MOPE_COMMON_CRC32_H_

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// One implementation, three consumers: the wire protocol's frame check
/// (net/wire.h), the storage engine's per-page checksums and the WAL's
/// per-record checksums (src/storage/). All three defend the same way:
/// bytes that crossed an untrusted medium (network, disk) are verified
/// before anything decodes them.

#include <cstdint>
#include <string_view>

namespace mope {

/// CRC-32 of `bytes`, starting from the standard initial state.
uint32_t Crc32(std::string_view bytes);

/// Incremental form: continues a CRC computed by Crc32/Crc32Continue over a
/// previous chunk. `Crc32(a + b) == Crc32Continue(Crc32(a), b)`.
uint32_t Crc32Continue(uint32_t crc, std::string_view bytes);

}  // namespace mope

#endif  // MOPE_COMMON_CRC32_H_
