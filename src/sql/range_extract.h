#ifndef MOPE_SQL_RANGE_EXTRACT_H_
#define MOPE_SQL_RANGE_EXTRACT_H_

/// \file range_extract.h
/// Syntactic extraction of single-column range predicates from WHERE trees.
///
/// Shared by the server-side planner (to choose an index access path) and
/// the client-side encrypted SQL session (to find the predicate that must be
/// rewritten into MOPE range queries). A conjunct qualifies when it is a
/// disjunction of BETWEEN / comparison / equality conditions that all
/// constrain the same column with integer literals.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/interval.h"
#include "sql/ast.h"

namespace mope::sql {

/// An extracted predicate: the column it constrains and the key segments it
/// admits (clamped to unsigned; empty when unsatisfiable).
struct ExtractedRanges {
  std::string column;
  std::vector<Segment> segments;
};

/// Extracts from a single expression that must *entirely* be a range
/// disjunction over one column; nullopt otherwise.
std::optional<ExtractedRanges> TryExtractRanges(const Expr& expr);

/// Walks the AND-tree of a WHERE clause and returns the first conjunct that
/// is a range disjunction over a column accepted by `accept`; nullopt when
/// none qualifies.
std::optional<ExtractedRanges> ExtractRangesFromWhere(
    const Expr& where, const std::function<bool(const std::string&)>& accept);

}  // namespace mope::sql

#endif  // MOPE_SQL_RANGE_EXTRACT_H_
