#ifndef MOPE_SQL_PARSER_H_
#define MOPE_SQL_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for the supported SELECT grammar:
///
///   stmt     := [EXPLAIN [ANALYZE]] select
///   select   := SELECT (| '*' | item (',' item)*) FROM ident
///               [JOIN ident ON col_ref '=' col_ref]
///               [WHERE expr] [GROUP BY ident]
///   item     := agg '(' expr ')' [AS ident] | agg '(' '*' ')' | expr [AS ident]
///   expr     := or_expr
///   or_expr  := and_expr (OR and_expr)*
///   and_expr := not_expr (AND not_expr)*
///   not_expr := NOT not_expr | cmp_expr
///   cmp_expr := add_expr [(=|<>|<|<=|>|>=) add_expr | BETWEEN add AND add]
///   add_expr := mul_expr (('+'|'-') mul_expr)*
///   mul_expr := unary (('*'|'/') unary)*
///   unary    := '-' unary | primary
///   primary  := literal | col_ref | '(' expr ')'
///   col_ref  := ident ['.' ident]

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace mope::sql {

/// Parses one SELECT statement; ParseError with offset context on failure.
Result<SelectStmt> Parse(const std::string& sql);

/// Parses a full statement, honouring an EXPLAIN [ANALYZE] prefix.
Result<Statement> ParseStatement(const std::string& sql);

/// Cheap prefix peek: true iff the text lexes and starts with
/// EXPLAIN ANALYZE. Lets a caller arm trace/profile capture *before* the
/// (traced, span-emitting) full parse runs; malformed input returns false
/// and is diagnosed by the real parse.
bool IsExplainAnalyze(const std::string& sql);

}  // namespace mope::sql

#endif  // MOPE_SQL_PARSER_H_
