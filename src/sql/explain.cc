#include "sql/explain.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace mope::sql {

namespace {

void RenderNode(engine::Operator* op, int depth, const ExplainOptions& options,
                std::vector<std::string>* out) {
  std::string line;
  if (depth > 0) {
    line.assign(static_cast<size_t>(depth - 1) * 2, ' ');
    line += "-> ";
  }
  line += op->describe();

  char est[48];
  std::snprintf(est, sizeof(est), " (rows=%" PRIu64 ")", op->estimated_rows());
  line += est;

  if (options.analyze) {
    const engine::OpStats& s = op->stats();
    char actual[160];
    std::snprintf(actual, sizeof(actual),
                  " (actual rows=%" PRIu64 " next_calls=%" PRIu64
                  " ns=%" PRIu64 ")",
                  s.rows_out, s.next_calls, s.open_ns + s.next_ns);
    line += actual;
    // Data-access detail only where there is any: scans attribute index
    // entries / nodes, storage-backed work attributes pool misses and WAL
    // bytes. Zero rows of detail render nothing, keeping plans readable.
    if (s.entries_visited != 0 || s.nodes_visited != 0) {
      char access[96];
      std::snprintf(access, sizeof(access),
                    " (entries=%" PRIu64 " nodes=%" PRIu64 ")",
                    s.entries_visited, s.nodes_visited);
      line += access;
    }
    if (s.pool_misses != 0 || s.wal_bytes != 0) {
      char storage[96];
      std::snprintf(storage, sizeof(storage),
                    " (pool_misses=%" PRIu64 " wal_bytes=%" PRIu64 ")",
                    s.pool_misses, s.wal_bytes);
      line += storage;
    }
  }
  out->push_back(std::move(line));

  for (engine::Operator* child : op->children()) {
    RenderNode(child, depth + 1, options, out);
  }
}

}  // namespace

std::vector<std::string> RenderPlanLines(engine::Operator* root,
                                         const ExplainOptions& options) {
  std::vector<std::string> lines;
  if (root != nullptr) RenderNode(root, 0, options, &lines);
  return lines;
}

SqlResult PlanLinesToResult(std::vector<std::string> lines) {
  SqlResult result;
  result.columns = {"QUERY PLAN"};
  result.rows.reserve(lines.size());
  for (std::string& line : lines) {
    engine::Row row;
    row.emplace_back(std::move(line));
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace mope::sql
