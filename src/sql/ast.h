#ifndef MOPE_SQL_AST_H_
#define MOPE_SQL_AST_H_

/// \file ast.h
/// Abstract syntax tree for the supported SQL subset.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mope::sql {

enum class ExprKind : uint8_t {
  kColumn,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kBinary,
  kUnary,
  kBetween,
};

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A single expression node (tagged union; only the fields relevant to
/// `kind` are meaningful).
struct Expr {
  ExprKind kind = ExprKind::kIntLiteral;

  // kColumn: optional "table." qualifier plus the column name. After
  // binding, `bound_index` is the column's position in the input row.
  std::string table;
  std::string column;
  std::optional<size_t> bound_index;

  // Literals.
  int64_t int_val = 0;
  double double_val = 0.0;
  std::string str_val;

  // kBinary / kUnary.
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNeg;

  // Children: kBinary uses [0]=lhs, [1]=rhs; kUnary uses [0];
  // kBetween uses [0]=operand, [1]=low, [2]=high.
  std::vector<ExprPtr> children;

  /// Renders the expression back to SQL-ish text (tests, error messages).
  std::string ToString() const;
};

ExprPtr MakeColumn(std::string table, std::string column);
ExprPtr MakeIntLiteral(int64_t v);
ExprPtr MakeDoubleLiteral(double v);
ExprPtr MakeStringLiteral(std::string v);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBetween(ExprPtr operand, ExprPtr low, ExprPtr high);

/// Deep copy.
ExprPtr CloneExpr(const Expr& e);

/// Aggregate functions in the select list.
enum class AggFunc : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool count_star = false;  ///< COUNT(*)
  ExprPtr expr;             ///< null for COUNT(*)
  std::string alias;        ///< optional AS alias
};

struct JoinClause {
  std::string table;      ///< right-hand table
  ExprPtr left_key;       ///< column expr from either side
  ExprPtr right_key;
};

struct OrderByItem {
  std::string column;  ///< Output-column name (or alias).
  bool descending = false;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::string from_table;
  std::optional<JoinClause> join;
  ExprPtr where;                        ///< null when absent
  std::optional<std::string> group_by;  ///< single column name
  std::vector<OrderByItem> order_by;
  std::optional<uint64_t> limit;
};

/// A full statement: a SELECT, optionally wrapped in EXPLAIN [ANALYZE].
/// Plain EXPLAIN renders the planned operator tree without executing;
/// EXPLAIN ANALYZE executes under profiling and annotates the tree with
/// per-operator actuals plus the query's resource vector.
struct Statement {
  bool explain = false;
  bool analyze = false;  ///< implies explain
  SelectStmt select;
};

}  // namespace mope::sql

#endif  // MOPE_SQL_AST_H_
