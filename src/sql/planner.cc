#include "sql/planner.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "sql/binder.h"
#include "sql/range_extract.h"
#include "sql/parser.h"

namespace mope::sql {

using engine::AggKind;
using engine::AggSpec;
using engine::Operator;
using engine::Row;
using engine::Table;
using mope::Segment;
using engine::Value;

namespace {

/// Child operator that evaluates one expression per output column.
class ComputeOp final : public Operator {
 public:
  ComputeOp(std::unique_ptr<Operator> child, std::vector<ExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  size_t output_width() const override { return exprs_.size(); }
  const char* name() const override { return "Compute"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }

  Result<bool> NextImpl(Row* out) override {
    Row in;
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in));
      out->push_back(std::move(v));
    }
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ExprPtr> exprs_;
};

Result<AggKind> ToEngineAgg(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return AggKind::kCount;
    case AggFunc::kSum: return AggKind::kSum;
    case AggFunc::kAvg: return AggKind::kAvg;
    case AggFunc::kMin: return AggKind::kMin;
    case AggFunc::kMax: return AggKind::kMax;
    case AggFunc::kNone: break;
  }
  return Status::Internal("not an aggregate");
}

std::string AggName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  const char* fn = "";
  switch (item.agg) {
    case AggFunc::kCount: fn = "count"; break;
    case AggFunc::kSum: fn = "sum"; break;
    case AggFunc::kAvg: fn = "avg"; break;
    case AggFunc::kMin: fn = "min"; break;
    case AggFunc::kMax: fn = "max"; break;
    case AggFunc::kNone: break;
  }
  if (item.count_star) return std::string(fn) + "(*)";
  return std::string(fn) + "(" + item.expr->ToString() + ")";
}

/// System-R-flavoured cardinality guesses for EXPLAIN. Coarse on purpose:
/// the engine keeps no column statistics, so estimates exist to show plan
/// shape and relative magnitude. Tests assert structure, not exact values.
constexpr uint64_t kSelectivityDenom = 3;

uint64_t EstimateOf(const std::unique_ptr<Operator>& op) {
  return op->estimated_rows();
}

}  // namespace

Result<PlannedQuery> Planner::Plan(SelectStmt stmt) {
  MOPE_ASSIGN_OR_RETURN(Table * base, catalog_->GetTable(stmt.from_table));

  PlannedQuery out;
  RowLayout layout = RowLayout::ForTable(*base);
  std::unique_ptr<Operator> plan;
  const uint64_t base_rows = base->row_count();

  // Access path for the base table: indexed multi-range sweep if the WHERE
  // clause offers one, else a sequential scan.
  if (stmt.where != nullptr) {
    auto ranges = ExtractRangesFromWhere(
        *stmt.where,
        [base](const std::string& col) { return base->HasIndex(col); });
    if (ranges) {
      MOPE_ASSIGN_OR_RETURN(const engine::BPlusTree* index,
                            base->GetIndex(ranges->column));
      auto scan = std::make_unique<engine::IndexRangeScanOp>(
          base, index, std::move(ranges->segments));
      out.used_index = true;
      out.index_column = ranges->column;
      out.index_segments = scan->segments_scanned();
      scan->set_annotation("on " + stmt.from_table + " via " + ranges->column +
                           " (" + std::to_string(out.index_segments) +
                           " segments)");
      scan->set_estimated_rows(std::max<uint64_t>(
          1, base_rows / kSelectivityDenom));
      plan = std::move(scan);
    }
  }
  if (plan == nullptr) {
    plan = std::make_unique<engine::SeqScanOp>(base);
    plan->set_annotation("on " + stmt.from_table);
    plan->set_estimated_rows(base_rows);
  }

  // Optional equi-join.
  if (stmt.join.has_value()) {
    MOPE_ASSIGN_OR_RETURN(Table * right, catalog_->GetTable(stmt.join->table));
    const RowLayout right_layout = RowLayout::ForTable(*right);

    // The join keys may be written in either order; resolve each against the
    // side it belongs to.
    Expr* lk = stmt.join->left_key.get();
    Expr* rk = stmt.join->right_key.get();
    if (!BindExpr(lk, layout).ok()) std::swap(lk, rk);
    MOPE_RETURN_NOT_OK(BindExpr(lk, layout));
    MOPE_RETURN_NOT_OK(BindExpr(rk, right_layout));
    if (lk->kind != ExprKind::kColumn || rk->kind != ExprKind::kColumn) {
      return Status::NotSupported("JOIN keys must be plain columns");
    }

    auto build = std::make_unique<engine::SeqScanOp>(right);
    build->set_annotation("on " + stmt.join->table);
    build->set_estimated_rows(right->row_count());
    const uint64_t left_est = EstimateOf(plan);
    plan = std::make_unique<engine::HashJoinOp>(
        std::move(plan), std::move(build), *lk->bound_index, *rk->bound_index);
    plan->set_annotation("on " + lk->ToString() + " = " + rk->ToString());
    plan->set_estimated_rows(left_est);
    layout = RowLayout::Concat(layout, right_layout);
  }

  // Residual filter: the full WHERE clause (the index scan is a superset
  // access path only when its ranges came from one conjunct).
  if (stmt.where != nullptr) {
    MOPE_RETURN_NOT_OK(BindExpr(stmt.where.get(), layout));
    const std::string where_text = stmt.where->ToString();
    // Keep the predicate's expression tree alive inside the plan
    // (shared_ptr because std::function requires a copyable callable).
    std::shared_ptr<Expr> where(std::move(stmt.where));
    const uint64_t child_est = EstimateOf(plan);
    plan = std::make_unique<engine::FilterOp>(
        std::move(plan), [where](const Row& row) -> Result<bool> {
          return EvalPredicate(*where, row);
        });
    plan->set_annotation("where " + where_text);
    plan->set_estimated_rows(std::max<uint64_t>(
        1, child_est / kSelectivityDenom));
  }

  // Aggregation vs. projection.
  const bool has_agg =
      !stmt.items.empty() &&
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.agg != AggFunc::kNone; });

  if (has_agg) {
    std::vector<AggSpec> specs;
    for (SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        return Status::NotSupported(
            "mixing aggregates with plain expressions is not supported");
      }
      MOPE_ASSIGN_OR_RETURN(AggKind kind, ToEngineAgg(item.agg));
      // Name the output column before the expression is moved into the plan.
      out.output_columns.push_back(AggName(item));
      AggSpec spec;
      spec.kind = kind;
      if (!item.count_star) {
        MOPE_RETURN_NOT_OK(BindExpr(item.expr.get(), layout));
        // Shared ownership so every row evaluation sees the bound tree.
        std::shared_ptr<Expr> bound(std::move(item.expr));
        spec.extract = [bound](const Row& row) -> Result<double> {
          return EvalNumeric(*bound, row);
        };
      }
      specs.push_back(std::move(spec));
    }
    const uint64_t agg_child_est = EstimateOf(plan);
    if (stmt.group_by.has_value()) {
      MOPE_ASSIGN_OR_RETURN(size_t group_col,
                            layout.Resolve("", *stmt.group_by));
      out.output_columns.insert(out.output_columns.begin(), *stmt.group_by);
      plan = std::make_unique<engine::AggregateOp>(std::move(plan), group_col,
                                                   std::move(specs));
      plan->set_annotation("group by " + *stmt.group_by);
      plan->set_estimated_rows(std::max<uint64_t>(
          1, agg_child_est / kSelectivityDenom));
    } else {
      plan = std::make_unique<engine::AggregateOp>(std::move(plan),
                                                   std::move(specs));
      plan->set_estimated_rows(1);  // Scalar aggregation: always one row.
    }
  } else if (stmt.select_star) {
    for (size_t i = 0; i < layout.size(); ++i) {
      out.output_columns.push_back(layout.entry(i).column);
    }
  } else {
    std::vector<ExprPtr> exprs;
    for (SelectItem& item : stmt.items) {
      MOPE_RETURN_NOT_OK(BindExpr(item.expr.get(), layout));
      out.output_columns.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
      exprs.push_back(std::move(item.expr));
    }
    const uint64_t child_est = EstimateOf(plan);
    plan = std::make_unique<ComputeOp>(std::move(plan), std::move(exprs));
    std::string cols;
    for (const std::string& name : out.output_columns) {
      if (!cols.empty()) cols += ", ";
      cols += name;
    }
    plan->set_annotation(cols);
    plan->set_estimated_rows(child_est);
  }

  // ORDER BY resolves against the *output* columns (names or aliases).
  if (!stmt.order_by.empty()) {
    std::vector<engine::SortOp::SortKey> keys;
    std::string key_text;
    for (const OrderByItem& item : stmt.order_by) {
      const auto it = std::find(out.output_columns.begin(),
                                out.output_columns.end(), item.column);
      if (it == out.output_columns.end()) {
        return Status::NotFound("ORDER BY column '" + item.column +
                                "' is not in the select list");
      }
      keys.push_back(engine::SortOp::SortKey{
          static_cast<size_t>(it - out.output_columns.begin()),
          item.descending});
      if (!key_text.empty()) key_text += ", ";
      key_text += item.column;
      if (item.descending) key_text += " desc";
    }
    const uint64_t child_est = EstimateOf(plan);
    plan = std::make_unique<engine::SortOp>(std::move(plan), std::move(keys));
    plan->set_annotation("by " + key_text);
    plan->set_estimated_rows(child_est);
  }

  if (stmt.limit.has_value()) {
    const uint64_t child_est = EstimateOf(plan);
    plan = std::make_unique<engine::LimitOp>(std::move(plan), *stmt.limit);
    plan->set_annotation(std::to_string(*stmt.limit));
    plan->set_estimated_rows(std::min<uint64_t>(child_est, *stmt.limit));
  }

  out.root = std::move(plan);
  return out;
}

Result<SqlResult> ExecuteSql(engine::Catalog* catalog, const std::string& sql) {
  MOPE_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql));
  Planner planner(catalog);
  MOPE_ASSIGN_OR_RETURN(PlannedQuery plan, planner.Plan(std::move(stmt)));
  SqlResult result;
  result.columns = std::move(plan.output_columns);
  MOPE_ASSIGN_OR_RETURN(result.rows, engine::Collect(plan.root.get()));
  return result;
}

}  // namespace mope::sql
