#include "sql/planner.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "sql/binder.h"
#include "sql/range_extract.h"
#include "sql/parser.h"

namespace mope::sql {

using engine::AggKind;
using engine::AggSpec;
using engine::Operator;
using engine::Row;
using engine::Table;
using mope::Segment;
using engine::Value;

namespace {

/// Child operator that evaluates one expression per output column.
class ComputeOp final : public Operator {
 public:
  ComputeOp(std::unique_ptr<Operator> child, std::vector<ExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* out) override {
    Row in;
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in));
      out->push_back(std::move(v));
    }
    return true;
  }

  size_t output_width() const override { return exprs_.size(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ExprPtr> exprs_;
};

Result<AggKind> ToEngineAgg(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return AggKind::kCount;
    case AggFunc::kSum: return AggKind::kSum;
    case AggFunc::kAvg: return AggKind::kAvg;
    case AggFunc::kMin: return AggKind::kMin;
    case AggFunc::kMax: return AggKind::kMax;
    case AggFunc::kNone: break;
  }
  return Status::Internal("not an aggregate");
}

std::string AggName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  const char* fn = "";
  switch (item.agg) {
    case AggFunc::kCount: fn = "count"; break;
    case AggFunc::kSum: fn = "sum"; break;
    case AggFunc::kAvg: fn = "avg"; break;
    case AggFunc::kMin: fn = "min"; break;
    case AggFunc::kMax: fn = "max"; break;
    case AggFunc::kNone: break;
  }
  if (item.count_star) return std::string(fn) + "(*)";
  return std::string(fn) + "(" + item.expr->ToString() + ")";
}

}  // namespace

Result<PlannedQuery> Planner::Plan(SelectStmt stmt) {
  MOPE_ASSIGN_OR_RETURN(Table * base, catalog_->GetTable(stmt.from_table));

  PlannedQuery out;
  RowLayout layout = RowLayout::ForTable(*base);
  std::unique_ptr<Operator> plan;

  // Access path for the base table: indexed multi-range sweep if the WHERE
  // clause offers one, else a sequential scan.
  if (stmt.where != nullptr) {
    auto ranges = ExtractRangesFromWhere(
        *stmt.where,
        [base](const std::string& col) { return base->HasIndex(col); });
    if (ranges) {
      MOPE_ASSIGN_OR_RETURN(const engine::BPlusTree* index,
                            base->GetIndex(ranges->column));
      auto scan = std::make_unique<engine::IndexRangeScanOp>(
          base, index, std::move(ranges->segments));
      out.used_index = true;
      out.index_column = ranges->column;
      out.index_segments = scan->segments_scanned();
      plan = std::move(scan);
    }
  }
  if (plan == nullptr) {
    plan = std::make_unique<engine::SeqScanOp>(base);
  }

  // Optional equi-join.
  if (stmt.join.has_value()) {
    MOPE_ASSIGN_OR_RETURN(Table * right, catalog_->GetTable(stmt.join->table));
    const RowLayout right_layout = RowLayout::ForTable(*right);

    // The join keys may be written in either order; resolve each against the
    // side it belongs to.
    Expr* lk = stmt.join->left_key.get();
    Expr* rk = stmt.join->right_key.get();
    if (!BindExpr(lk, layout).ok()) std::swap(lk, rk);
    MOPE_RETURN_NOT_OK(BindExpr(lk, layout));
    MOPE_RETURN_NOT_OK(BindExpr(rk, right_layout));
    if (lk->kind != ExprKind::kColumn || rk->kind != ExprKind::kColumn) {
      return Status::NotSupported("JOIN keys must be plain columns");
    }

    plan = std::make_unique<engine::HashJoinOp>(
        std::move(plan), std::make_unique<engine::SeqScanOp>(right),
        *lk->bound_index, *rk->bound_index);
    layout = RowLayout::Concat(layout, right_layout);
  }

  // Residual filter: the full WHERE clause (the index scan is a superset
  // access path only when its ranges came from one conjunct).
  if (stmt.where != nullptr) {
    MOPE_RETURN_NOT_OK(BindExpr(stmt.where.get(), layout));
    // Keep the predicate's expression tree alive inside the plan
    // (shared_ptr because std::function requires a copyable callable).
    std::shared_ptr<Expr> where(std::move(stmt.where));
    plan = std::make_unique<engine::FilterOp>(
        std::move(plan), [where](const Row& row) -> Result<bool> {
          return EvalPredicate(*where, row);
        });
  }

  // Aggregation vs. projection.
  const bool has_agg =
      !stmt.items.empty() &&
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.agg != AggFunc::kNone; });

  if (has_agg) {
    std::vector<AggSpec> specs;
    for (SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        return Status::NotSupported(
            "mixing aggregates with plain expressions is not supported");
      }
      MOPE_ASSIGN_OR_RETURN(AggKind kind, ToEngineAgg(item.agg));
      // Name the output column before the expression is moved into the plan.
      out.output_columns.push_back(AggName(item));
      AggSpec spec;
      spec.kind = kind;
      if (!item.count_star) {
        MOPE_RETURN_NOT_OK(BindExpr(item.expr.get(), layout));
        // Shared ownership so every row evaluation sees the bound tree.
        std::shared_ptr<Expr> bound(std::move(item.expr));
        spec.extract = [bound](const Row& row) -> Result<double> {
          return EvalNumeric(*bound, row);
        };
      }
      specs.push_back(std::move(spec));
    }
    if (stmt.group_by.has_value()) {
      MOPE_ASSIGN_OR_RETURN(size_t group_col,
                            layout.Resolve("", *stmt.group_by));
      out.output_columns.insert(out.output_columns.begin(), *stmt.group_by);
      plan = std::make_unique<engine::AggregateOp>(std::move(plan), group_col,
                                                   std::move(specs));
    } else {
      plan = std::make_unique<engine::AggregateOp>(std::move(plan),
                                                   std::move(specs));
    }
  } else if (stmt.select_star) {
    for (size_t i = 0; i < layout.size(); ++i) {
      out.output_columns.push_back(layout.entry(i).column);
    }
  } else {
    std::vector<ExprPtr> exprs;
    for (SelectItem& item : stmt.items) {
      MOPE_RETURN_NOT_OK(BindExpr(item.expr.get(), layout));
      out.output_columns.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
      exprs.push_back(std::move(item.expr));
    }
    plan = std::make_unique<ComputeOp>(std::move(plan), std::move(exprs));
  }

  // ORDER BY resolves against the *output* columns (names or aliases).
  if (!stmt.order_by.empty()) {
    std::vector<engine::SortOp::SortKey> keys;
    for (const OrderByItem& item : stmt.order_by) {
      const auto it = std::find(out.output_columns.begin(),
                                out.output_columns.end(), item.column);
      if (it == out.output_columns.end()) {
        return Status::NotFound("ORDER BY column '" + item.column +
                                "' is not in the select list");
      }
      keys.push_back(engine::SortOp::SortKey{
          static_cast<size_t>(it - out.output_columns.begin()),
          item.descending});
    }
    plan = std::make_unique<engine::SortOp>(std::move(plan), std::move(keys));
  }

  if (stmt.limit.has_value()) {
    plan = std::make_unique<engine::LimitOp>(std::move(plan), *stmt.limit);
  }

  out.root = std::move(plan);
  return out;
}

Result<SqlResult> ExecuteSql(engine::Catalog* catalog, const std::string& sql) {
  MOPE_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql));
  Planner planner(catalog);
  MOPE_ASSIGN_OR_RETURN(PlannedQuery plan, planner.Plan(std::move(stmt)));
  SqlResult result;
  result.columns = std::move(plan.output_columns);
  MOPE_ASSIGN_OR_RETURN(result.rows, engine::Collect(plan.root.get()));
  return result;
}

}  // namespace mope::sql
