#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

namespace mope::sql {

namespace {

constexpr std::array kKeywords = {
    "SELECT", "FROM",  "WHERE", "AND",   "OR",    "NOT",  "BETWEEN",
    "JOIN",   "ON",    "GROUP", "BY",    "AS",    "SUM",  "COUNT", "IN",
    "AVG",    "MIN",   "MAX",   "ORDER", "LIMIT", "ASC",  "DESC",
    "EXPLAIN", "ANALYZE",
};

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    Token tok;
    tok.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      const std::string num = input.substr(i, j - i);
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_val = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        errno = 0;
        tok.int_val = std::strtoll(num.c_str(), nullptr, 10);
        if (errno != 0) {
          return Status::ParseError("integer literal out of range at offset " +
                                    std::to_string(i));
        }
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < n && input[j] != '\'') value.push_back(input[j++]);
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(value);
      i = j + 1;
    } else {
      // Symbols, including two-character comparison operators.
      tok.type = TokenType::kSymbol;
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          tok.text = (two == "!=") ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(tok));
          continue;
        }
      }
      switch (c) {
        case '(': case ')': case ',': case '*': case '.':
        case '+': case '-': case '/': case '=': case '<': case '>':
          tok.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace mope::sql
