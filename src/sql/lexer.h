#ifndef MOPE_SQL_LEXER_H_
#define MOPE_SQL_LEXER_H_

/// \file lexer.h
/// SQL tokenizer for the subset the paper's workload needs (SELECT with
/// projections/aggregates, FROM with one optional equi-JOIN, WHERE with
/// comparisons / BETWEEN / AND / OR / NOT, GROUP BY).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mope::sql {

enum class TokenType : uint8_t {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kSymbol,  // ( ) , * . + - / = < > <= >= <> !=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // keywords upper-cased; identifiers as written
  int64_t int_val = 0;
  double double_val = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes `input`; returns ParseError on malformed literals or characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True when `word` (upper-cased) is a reserved keyword.
bool IsKeyword(const std::string& upper_word);

}  // namespace mope::sql

#endif  // MOPE_SQL_LEXER_H_
