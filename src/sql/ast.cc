#include "sql/ast.h"

namespace mope::sql {

namespace {

const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kIntLiteral:
      return std::to_string(int_val);
    case ExprKind::kDoubleLiteral:
      return std::to_string(double_val);
    case ExprKind::kStringLiteral:
      return "'" + str_val + "'";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinOpName(bin_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(un_op == UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString() + ")";
  }
  return "?";
}

ExprPtr MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeIntLiteral(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLiteral;
  e->int_val = v;
  return e;
}

ExprPtr MakeDoubleLiteral(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kDoubleLiteral;
  e->double_val = v;
  return e;
}

ExprPtr MakeStringLiteral(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLiteral;
  e->str_val = std::move(v);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBetween(ExprPtr operand, ExprPtr low, ExprPtr high) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->children.push_back(std::move(operand));
  e->children.push_back(std::move(low));
  e->children.push_back(std::move(high));
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->table = e.table;
  out->column = e.column;
  out->bound_index = e.bound_index;
  out->int_val = e.int_val;
  out->double_val = e.double_val;
  out->str_val = e.str_val;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->children.reserve(e.children.size());
  for (const ExprPtr& child : e.children) {
    out->children.push_back(CloneExpr(*child));
  }
  return out;
}

}  // namespace mope::sql
