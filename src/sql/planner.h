#ifndef MOPE_SQL_PLANNER_H_
#define MOPE_SQL_PLANNER_H_

/// \file planner.h
/// Plans SELECT statements into engine operator trees.
///
/// The planner mirrors what the paper relies on from an off-the-shelf DBMS:
/// WHERE clauses whose (conjunct of a) predicate is a disjunction of range
/// conditions on one indexed column — exactly the shape of the proxy's
/// batched real+fake query statements — are answered with a single shared
/// B+-tree sweep over the coalesced ranges (multiple-query optimization,
/// Section 5.1); everything else falls back to a sequential scan. The full
/// WHERE clause is always re-applied as a residual filter, so the index path
/// is purely an access-path optimization.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace mope::sql {

/// A planned, executable query.
struct PlannedQuery {
  std::unique_ptr<engine::Operator> root;
  std::vector<std::string> output_columns;

  // Plan introspection (asserted on by tests; reported by benches).
  bool used_index = false;
  std::string index_column;
  size_t index_segments = 0;
};

class Planner {
 public:
  explicit Planner(engine::Catalog* catalog) : catalog_(catalog) {}

  /// Plans the statement (consumes it: expressions are bound in place).
  Result<PlannedQuery> Plan(SelectStmt stmt);

 private:
  engine::Catalog* catalog_;
};

/// One-shot helper: parse, plan, execute, return (columns, rows).
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<engine::Row> rows;
};
Result<SqlResult> ExecuteSql(engine::Catalog* catalog, const std::string& sql);

}  // namespace mope::sql

#endif  // MOPE_SQL_PLANNER_H_
