#include "sql/binder.h"

#include <cmath>

namespace mope::sql {

using engine::Row;
using engine::Value;
using engine::ValueType;

RowLayout RowLayout::ForTable(const engine::Table& table) {
  RowLayout layout;
  layout.entries_.reserve(table.schema().num_columns());
  for (const engine::Column& col : table.schema().columns()) {
    layout.entries_.push_back(Entry{table.name(), col.name, col.type});
  }
  return layout;
}

RowLayout RowLayout::Concat(const RowLayout& left, const RowLayout& right) {
  RowLayout layout;
  layout.entries_ = left.entries_;
  layout.entries_.insert(layout.entries_.end(), right.entries_.begin(),
                         right.entries_.end());
  return layout;
}

Result<size_t> RowLayout::Resolve(const std::string& table,
                                  const std::string& column) const {
  size_t found = entries_.size();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].column != column) continue;
    if (!table.empty() && entries_[i].table != table) continue;
    if (found != entries_.size()) {
      return Status::InvalidArgument("ambiguous column reference '" + column +
                                     "'");
    }
    found = i;
  }
  if (found == entries_.size()) {
    return Status::NotFound("unknown column '" +
                            (table.empty() ? column : table + "." + column) +
                            "'");
  }
  return found;
}

Status BindExpr(Expr* expr, const RowLayout& layout) {
  if (expr->kind == ExprKind::kColumn) {
    MOPE_ASSIGN_OR_RETURN(size_t idx, layout.Resolve(expr->table, expr->column));
    expr->bound_index = idx;
    return Status::OK();
  }
  for (ExprPtr& child : expr->children) {
    MOPE_RETURN_NOT_OK(BindExpr(child.get(), layout));
  }
  return Status::OK();
}

namespace {

Result<double> AsNumeric(const Value& v, const char* what) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  return Status::InvalidArgument(std::string(what) +
                                 " requires a numeric value");
}

bool BothInt(const Value& a, const Value& b) {
  return std::holds_alternative<int64_t>(a) &&
         std::holds_alternative<int64_t>(b);
}

/// Three-way compare with numeric promotion; strings compare with strings.
Result<int> CompareValues(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) {
    return Status::InvalidArgument("cannot compare string with number");
  }
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  MOPE_ASSIGN_OR_RETURN(double da, AsNumeric(a, "comparison"));
  MOPE_ASSIGN_OR_RETURN(double db, AsNumeric(b, "comparison"));
  return da < db ? -1 : (da == db ? 0 : 1);
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kColumn: {
      if (!expr.bound_index.has_value()) {
        return Status::Internal("evaluating an unbound column reference");
      }
      if (*expr.bound_index >= row.size()) {
        return Status::Internal("bound column index out of range");
      }
      return row[*expr.bound_index];
    }
    case ExprKind::kIntLiteral:
      return Value{expr.int_val};
    case ExprKind::kDoubleLiteral:
      return Value{expr.double_val};
    case ExprKind::kStringLiteral:
      return Value{expr.str_val};
    case ExprKind::kUnary: {
      if (expr.un_op == UnaryOp::kNot) {
        MOPE_ASSIGN_OR_RETURN(bool v, EvalPredicate(*expr.children[0], row));
        return Value{static_cast<int64_t>(v ? 0 : 1)};
      }
      MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      if (std::holds_alternative<int64_t>(v)) {
        return Value{-std::get<int64_t>(v)};
      }
      MOPE_ASSIGN_OR_RETURN(double d, AsNumeric(v, "negation"));
      return Value{-d};
    }
    case ExprKind::kBetween: {
      MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      MOPE_ASSIGN_OR_RETURN(Value lo, EvalExpr(*expr.children[1], row));
      MOPE_ASSIGN_OR_RETURN(Value hi, EvalExpr(*expr.children[2], row));
      MOPE_ASSIGN_OR_RETURN(int cmp_lo, CompareValues(v, lo));
      MOPE_ASSIGN_OR_RETURN(int cmp_hi, CompareValues(v, hi));
      return Value{static_cast<int64_t>((cmp_lo >= 0 && cmp_hi <= 0) ? 1 : 0)};
    }
    case ExprKind::kBinary:
      break;
  }

  // Binary operators.
  const Expr& lhs_expr = *expr.children[0];
  const Expr& rhs_expr = *expr.children[1];

  switch (expr.bin_op) {
    case BinaryOp::kAnd: {
      MOPE_ASSIGN_OR_RETURN(bool l, EvalPredicate(lhs_expr, row));
      if (!l) return Value{static_cast<int64_t>(0)};
      MOPE_ASSIGN_OR_RETURN(bool r, EvalPredicate(rhs_expr, row));
      return Value{static_cast<int64_t>(r ? 1 : 0)};
    }
    case BinaryOp::kOr: {
      MOPE_ASSIGN_OR_RETURN(bool l, EvalPredicate(lhs_expr, row));
      if (l) return Value{static_cast<int64_t>(1)};
      MOPE_ASSIGN_OR_RETURN(bool r, EvalPredicate(rhs_expr, row));
      return Value{static_cast<int64_t>(r ? 1 : 0)};
    }
    default:
      break;
  }

  MOPE_ASSIGN_OR_RETURN(Value l, EvalExpr(lhs_expr, row));
  MOPE_ASSIGN_OR_RETURN(Value r, EvalExpr(rhs_expr, row));

  switch (expr.bin_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      MOPE_ASSIGN_OR_RETURN(int cmp, CompareValues(l, r));
      bool result = false;
      switch (expr.bin_op) {
        case BinaryOp::kEq: result = (cmp == 0); break;
        case BinaryOp::kNe: result = (cmp != 0); break;
        case BinaryOp::kLt: result = (cmp < 0); break;
        case BinaryOp::kLe: result = (cmp <= 0); break;
        case BinaryOp::kGt: result = (cmp > 0); break;
        case BinaryOp::kGe: result = (cmp >= 0); break;
        default: break;
      }
      return Value{static_cast<int64_t>(result ? 1 : 0)};
    }
    case BinaryOp::kAdd:
      if (BothInt(l, r)) return Value{std::get<int64_t>(l) + std::get<int64_t>(r)};
      break;
    case BinaryOp::kSub:
      if (BothInt(l, r)) return Value{std::get<int64_t>(l) - std::get<int64_t>(r)};
      break;
    case BinaryOp::kMul:
      if (BothInt(l, r)) return Value{std::get<int64_t>(l) * std::get<int64_t>(r)};
      break;
    case BinaryOp::kDiv:
      break;  // always double, below
    default:
      return Status::Internal("unhandled binary operator");
  }

  MOPE_ASSIGN_OR_RETURN(double dl, AsNumeric(l, "arithmetic"));
  MOPE_ASSIGN_OR_RETURN(double dr, AsNumeric(r, "arithmetic"));
  switch (expr.bin_op) {
    case BinaryOp::kAdd: return Value{dl + dr};
    case BinaryOp::kSub: return Value{dl - dr};
    case BinaryOp::kMul: return Value{dl * dr};
    case BinaryOp::kDiv:
      if (dr == 0.0) return Status::InvalidArgument("division by zero");
      return Value{dl / dr};
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<bool> EvalPredicate(const Expr& expr, const Row& row) {
  MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
  if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v) != 0;
  if (std::holds_alternative<double>(v)) return std::get<double>(v) != 0.0;
  return Status::InvalidArgument("string used as a predicate");
}

Result<double> EvalNumeric(const Expr& expr, const Row& row) {
  MOPE_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
  return AsNumeric(v, "numeric expression");
}

}  // namespace mope::sql
