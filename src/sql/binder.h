#ifndef MOPE_SQL_BINDER_H_
#define MOPE_SQL_BINDER_H_

/// \file binder.h
/// Name resolution and expression evaluation over engine rows.

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace mope::sql {

/// Describes the columns of the rows an expression will be evaluated on.
class RowLayout {
 public:
  struct Entry {
    std::string table;
    std::string column;
    engine::ValueType type;
  };

  RowLayout() = default;

  /// Layout of a base table's rows.
  static RowLayout ForTable(const engine::Table& table);

  /// Layout of a join output: left columns followed by right columns.
  static RowLayout Concat(const RowLayout& left, const RowLayout& right);

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// Resolves a (possibly table-qualified) column name to a row position.
  /// NotFound for unknown names; InvalidArgument for ambiguous ones.
  Result<size_t> Resolve(const std::string& table,
                         const std::string& column) const;

 private:
  std::vector<Entry> entries_;
};

/// Resolves every column reference in `expr` against the layout, filling in
/// Expr::bound_index. Must run before evaluation.
Status BindExpr(Expr* expr, const RowLayout& layout);

/// Evaluates a bound expression on a row. Arithmetic promotes to double when
/// either operand is a double; '/' always yields a double; comparisons and
/// logical operators yield int64 0/1.
Result<engine::Value> EvalExpr(const Expr& expr, const engine::Row& row);

/// Evaluates as a predicate: numeric results are true when non-zero.
Result<bool> EvalPredicate(const Expr& expr, const engine::Row& row);

/// Evaluates as a number (int promoted to double); strings are errors.
Result<double> EvalNumeric(const Expr& expr, const engine::Row& row);

}  // namespace mope::sql

#endif  // MOPE_SQL_BINDER_H_
