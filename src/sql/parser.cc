#include "sql/parser.h"

#include <utility>
#include <vector>

#include "sql/lexer.h"

namespace mope::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseSelect();

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  Token Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }

  bool CheckSymbol(const std::string& sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }

  bool MatchKeyword(const std::string& kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  bool MatchSymbol(const std::string& sym) {
    if (!CheckSymbol(sym)) return false;
    ++pos_;
    return true;
  }

  Status Unexpected(const std::string& wanted) const {
    const Token& t = Peek();
    const std::string got =
        t.type == TokenType::kEnd ? "end of input" : "'" + t.text + "'";
    return Status::ParseError("expected " + wanted + " but found " + got +
                              " at offset " + std::to_string(t.position));
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Unexpected(kw);
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!MatchSymbol(sym)) return Unexpected("'" + sym + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) return Unexpected(what);
    return Advance().text;
  }

  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseColumnRef();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<SelectStmt> Parser::ParseSelect() {
  MOPE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  SelectStmt stmt;

  if (MatchSymbol("*")) {
    stmt.select_star = true;
  } else {
    do {
      MOPE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (MatchSymbol(","));
  }

  MOPE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  MOPE_ASSIGN_OR_RETURN(stmt.from_table, ExpectIdentifier("table name"));

  if (MatchKeyword("JOIN")) {
    JoinClause join;
    MOPE_ASSIGN_OR_RETURN(join.table, ExpectIdentifier("table name"));
    MOPE_RETURN_NOT_OK(ExpectKeyword("ON"));
    MOPE_ASSIGN_OR_RETURN(join.left_key, ParseColumnRef());
    MOPE_RETURN_NOT_OK(ExpectSymbol("="));
    MOPE_ASSIGN_OR_RETURN(join.right_key, ParseColumnRef());
    stmt.join = std::move(join);
  }

  if (MatchKeyword("WHERE")) {
    MOPE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }

  if (MatchKeyword("GROUP")) {
    MOPE_RETURN_NOT_OK(ExpectKeyword("BY"));
    MOPE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    stmt.group_by = std::move(col);
  }

  if (MatchKeyword("ORDER")) {
    MOPE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      MOPE_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column name"));
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }

  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral || Peek().int_val < 0) {
      return Unexpected("a non-negative integer");
    }
    stmt.limit = static_cast<uint64_t>(Advance().int_val);
  }

  if (Peek().type != TokenType::kEnd) {
    return Unexpected("end of statement");
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  static constexpr std::pair<const char*, AggFunc> kAggs[] = {
      {"SUM", AggFunc::kSum}, {"COUNT", AggFunc::kCount},
      {"AVG", AggFunc::kAvg}, {"MIN", AggFunc::kMin},
      {"MAX", AggFunc::kMax},
  };
  for (const auto& [name, func] : kAggs) {
    if (CheckKeyword(name)) {
      ++pos_;
      item.agg = func;
      MOPE_RETURN_NOT_OK(ExpectSymbol("("));
      if (func == AggFunc::kCount && MatchSymbol("*")) {
        item.count_star = true;
      } else {
        MOPE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      MOPE_RETURN_NOT_OK(ExpectSymbol(")"));
      if (MatchKeyword("AS")) {
        MOPE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      return item;
    }
  }
  MOPE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    MOPE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
  }
  return item;
}

Result<ExprPtr> Parser::ParseOr() {
  MOPE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    MOPE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  MOPE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    MOPE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    MOPE_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MOPE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  if (MatchKeyword("BETWEEN")) {
    MOPE_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    MOPE_RETURN_NOT_OK(ExpectKeyword("AND"));
    MOPE_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return MakeBetween(std::move(lhs), std::move(low), std::move(high));
  }

  if (MatchKeyword("IN")) {
    // Desugar `e IN (a, b, c)` into `e = a OR e = b OR e = c` — the range
    // extractor then turns IN-lists on indexed columns into multi-range
    // sweeps for free.
    MOPE_RETURN_NOT_OK(ExpectSymbol("("));
    ExprPtr disjunction;
    do {
      MOPE_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
      ExprPtr equals =
          MakeBinary(BinaryOp::kEq, CloneExpr(*lhs), std::move(item));
      disjunction = disjunction == nullptr
                        ? std::move(equals)
                        : MakeBinary(BinaryOp::kOr, std::move(disjunction),
                                     std::move(equals));
    } while (MatchSymbol(","));
    MOPE_RETURN_NOT_OK(ExpectSymbol(")"));
    return disjunction;
  }

  static constexpr std::pair<const char*, BinaryOp> kCmps[] = {
      {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
      {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
  };
  for (const auto& [sym, op] : kCmps) {
    if (CheckSymbol(sym)) {
      ++pos_;
      MOPE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  MOPE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (CheckSymbol("+")) {
      op = BinaryOp::kAdd;
    } else if (CheckSymbol("-")) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    ++pos_;
    MOPE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MOPE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (CheckSymbol("*")) {
      op = BinaryOp::kMul;
    } else if (CheckSymbol("/")) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    ++pos_;
    MOPE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    MOPE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral:
      ++pos_;
      return MakeIntLiteral(t.int_val);
    case TokenType::kDoubleLiteral:
      ++pos_;
      return MakeDoubleLiteral(t.double_val);
    case TokenType::kStringLiteral:
      ++pos_;
      return MakeStringLiteral(t.text);
    case TokenType::kIdentifier:
      return ParseColumnRef();
    case TokenType::kSymbol:
      if (t.text == "(") {
        ++pos_;
        MOPE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        MOPE_RETURN_NOT_OK(ExpectSymbol(")"));
        return inner;
      }
      break;
    default:
      break;
  }
  return Unexpected("an expression");
}

Result<ExprPtr> Parser::ParseColumnRef() {
  MOPE_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column name"));
  if (MatchSymbol(".")) {
    MOPE_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("column name"));
    return MakeColumn(std::move(first), std::move(second));
  }
  return MakeColumn("", std::move(first));
}

}  // namespace

Result<SelectStmt> Parse(const std::string& sql) {
  MOPE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

bool IsExplainAnalyze(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return false;  // the real parse will report the error
  return tokens->size() > 1 && (*tokens)[0].type == TokenType::kKeyword &&
         (*tokens)[0].text == "EXPLAIN" &&
         (*tokens)[1].type == TokenType::kKeyword &&
         (*tokens)[1].text == "ANALYZE";
}

Result<Statement> ParseStatement(const std::string& sql) {
  MOPE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Statement stmt;
  // Strip the EXPLAIN [ANALYZE] prefix before descending into the SELECT
  // grammar: the wrapper changes how the statement is run, not its shape.
  size_t skip = 0;
  if (!tokens.empty() && tokens[0].type == TokenType::kKeyword &&
      tokens[0].text == "EXPLAIN") {
    stmt.explain = true;
    skip = 1;
    if (tokens.size() > 1 && tokens[1].type == TokenType::kKeyword &&
        tokens[1].text == "ANALYZE") {
      stmt.analyze = true;
      skip = 2;
    }
  }
  if (skip > 0) tokens.erase(tokens.begin(), tokens.begin() + skip);
  Parser parser(std::move(tokens));
  MOPE_ASSIGN_OR_RETURN(stmt.select, parser.ParseSelect());
  return stmt;
}

}  // namespace mope::sql
