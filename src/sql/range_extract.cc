#include "sql/range_extract.h"

#include <limits>
#include <utility>

namespace mope::sql {

namespace {

constexpr uint64_t kKeyMax = std::numeric_limits<uint64_t>::max();

/// Signed literal: an int literal or its negation.
std::optional<int64_t> AsIntLiteral(const Expr& e) {
  if (e.kind == ExprKind::kIntLiteral) return e.int_val;
  if (e.kind == ExprKind::kUnary && e.un_op == UnaryOp::kNeg &&
      e.children[0]->kind == ExprKind::kIntLiteral) {
    return -e.children[0]->int_val;
  }
  return std::nullopt;
}

/// Clamps a signed [lo, hi] condition to the unsigned key space.
void AppendClamped(int64_t lo, int64_t hi, std::vector<Segment>* out) {
  if (hi < 0 || hi < lo) return;  // empty
  const uint64_t ulo = lo < 0 ? 0 : static_cast<uint64_t>(lo);
  out->push_back(Segment{ulo, static_cast<uint64_t>(hi)});
}

std::optional<ExtractedRanges> TryRangeLeaf(const Expr& e) {
  if (e.kind == ExprKind::kBetween) {
    const Expr& operand = *e.children[0];
    if (operand.kind != ExprKind::kColumn) return std::nullopt;
    const auto lo = AsIntLiteral(*e.children[1]);
    const auto hi = AsIntLiteral(*e.children[2]);
    if (!lo || !hi) return std::nullopt;
    ExtractedRanges leaf{operand.column, {}};
    AppendClamped(*lo, *hi, &leaf.segments);
    return leaf;
  }
  if (e.kind != ExprKind::kBinary) return std::nullopt;

  BinaryOp op = e.bin_op;
  const Expr* col = e.children[0].get();
  const Expr* lit = e.children[1].get();
  if (col->kind != ExprKind::kColumn) {
    // Literal on the left: flip the comparison.
    std::swap(col, lit);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (col->kind != ExprKind::kColumn) return std::nullopt;
  const auto v = AsIntLiteral(*lit);
  if (!v) return std::nullopt;

  ExtractedRanges leaf{col->column, {}};
  switch (op) {
    case BinaryOp::kEq:
      AppendClamped(*v, *v, &leaf.segments);
      return leaf;
    case BinaryOp::kLe:
      AppendClamped(0, *v, &leaf.segments);
      return leaf;
    case BinaryOp::kLt:
      AppendClamped(0, *v - 1, &leaf.segments);
      return leaf;
    case BinaryOp::kGe:
      leaf.segments.push_back(
          Segment{*v <= 0 ? 0 : static_cast<uint64_t>(*v), kKeyMax});
      return leaf;
    case BinaryOp::kGt:
      leaf.segments.push_back(
          Segment{*v < 0 ? 0 : static_cast<uint64_t>(*v) + 1, kKeyMax});
      return leaf;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<ExtractedRanges> TryExtractRanges(const Expr& expr) {
  if (expr.kind == ExprKind::kBinary && expr.bin_op == BinaryOp::kOr) {
    auto left = TryExtractRanges(*expr.children[0]);
    auto right = TryExtractRanges(*expr.children[1]);
    if (!left || !right || left->column != right->column) return std::nullopt;
    left->segments.insert(left->segments.end(), right->segments.begin(),
                          right->segments.end());
    return left;
  }
  return TryRangeLeaf(expr);
}

std::optional<ExtractedRanges> ExtractRangesFromWhere(
    const Expr& where, const std::function<bool(const std::string&)>& accept) {
  if (where.kind == ExprKind::kBinary && where.bin_op == BinaryOp::kAnd) {
    if (auto left = ExtractRangesFromWhere(*where.children[0], accept)) {
      return left;
    }
    return ExtractRangesFromWhere(*where.children[1], accept);
  }
  auto leaf = TryExtractRanges(where);
  if (!leaf || !accept(leaf->column)) return std::nullopt;
  return leaf;
}

}  // namespace mope::sql
