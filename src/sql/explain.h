#ifndef MOPE_SQL_EXPLAIN_H_
#define MOPE_SQL_EXPLAIN_H_

/// \file explain.h
/// Plan rendering for EXPLAIN / EXPLAIN ANALYZE.
///
/// A plan renders as one line per operator ("->" marks children, indented
/// two spaces per level, PostgreSQL-style). Plain EXPLAIN shows the
/// planner's estimated cardinalities; ANALYZE appends each operator's
/// actuals from its OpStats block (rows, Next() calls, inclusive
/// nanoseconds, index entries / B+-tree nodes visited, buffer-pool misses
/// and WAL bytes attributed to it). The lines are packaged as a one-column
/// "QUERY PLAN" result set so EXPLAIN output flows through every existing
/// result pipeline (shell tables, -c one-shots, tests) unchanged.

#include <string>
#include <vector>

#include "engine/executor.h"
#include "sql/planner.h"

namespace mope::sql {

struct ExplainOptions {
  bool analyze = false;  ///< Append per-operator actuals.
};

/// Renders the operator tree rooted at `root` as EXPLAIN text lines.
std::vector<std::string> RenderPlanLines(engine::Operator* root,
                                         const ExplainOptions& options);

/// Wraps rendered lines (plan, resource vector, ...) into a one-column
/// "QUERY PLAN" result set.
SqlResult PlanLinesToResult(std::vector<std::string> lines);

}  // namespace mope::sql

#endif  // MOPE_SQL_EXPLAIN_H_
