#ifndef MOPE_WORKLOAD_GENERATOR_H_
#define MOPE_WORKLOAD_GENERATOR_H_

/// \file generator.h
/// Range-query workload generation per Section 6: the query *center* is
/// drawn from the dataset's value distribution (users query where the data
/// is), the query *length* from |N(0, σ²)| (at least 1), and the resulting
/// interval is clamped into the domain.

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "dist/distribution.h"
#include "query/query_types.h"

namespace mope::workload {

struct QueryGenConfig {
  double sigma = 5.0;  ///< Length scale: length ~ max(1, round(|N(0, σ²)|)).
};

/// Draws one range query.
query::RangeQuery GenerateQuery(const dist::Distribution& centers,
                                const QueryGenConfig& config,
                                mope::BitSource* rng);

/// Draws a batch of queries.
std::vector<query::RangeQuery> GenerateQueries(
    const dist::Distribution& centers, const QueryGenConfig& config,
    uint64_t count, mope::BitSource* rng);

/// Empirical distribution of *transformed-query start points*: generates
/// `samples` queries, decomposes each with fixed length k, and histograms
/// the start points. This is the Q the proxy's non-adaptive algorithms are
/// initialized with.
dist::Distribution BuildStartDistribution(const dist::Distribution& centers,
                                          const QueryGenConfig& config,
                                          uint64_t k, uint64_t samples,
                                          mope::BitSource* rng);

}  // namespace mope::workload

#endif  // MOPE_WORKLOAD_GENERATOR_H_
