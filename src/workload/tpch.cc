#include "workload/tpch.h"

#include <cmath>

#include "common/status.h"

namespace mope::workload {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

namespace {

// TPC-H p_type syllables; a type is "<s1> <s2> <s3>".
constexpr const char* kTypeS1[] = {"STANDARD", "SMALL",  "MEDIUM",
                                   "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeS2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                   "POLISHED", "BRUSHED"};
constexpr const char* kTypeS3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};

}  // namespace

TpchData GenerateTpch(const TpchConfig& config) {
  MOPE_CHECK(config.scale_factor > 0, "scale factor must be positive");
  Rng rng(config.seed);
  TpchData data;

  data.part_schema = Schema({
      Column{"p_partkey", ValueType::kInt},
      Column{"p_type", ValueType::kString},
      Column{"p_ispromo", ValueType::kInt},
      Column{"p_retailprice", ValueType::kDouble},
  });
  data.orders_schema = Schema({
      Column{"o_orderkey", ValueType::kInt},
      Column{"o_orderdate", ValueType::kInt},
      Column{"o_orderpriority", ValueType::kString},
  });
  data.lineitem_schema = Schema({
      Column{"l_orderkey", ValueType::kInt},
      Column{"l_partkey", ValueType::kInt},
      Column{"l_quantity", ValueType::kDouble},
      Column{"l_extendedprice", ValueType::kDouble},
      Column{"l_discount", ValueType::kDouble},
      Column{"l_shipdate", ValueType::kInt},
      Column{"l_commitdate", ValueType::kInt},
      Column{"l_receiptdate", ValueType::kInt},
      Column{"l_returnflag", ValueType::kInt},
  });

  const uint64_t num_parts = std::max<uint64_t>(
      1, static_cast<uint64_t>(200000.0 * config.scale_factor));
  const uint64_t num_orders = std::max<uint64_t>(
      1, static_cast<uint64_t>(1500000.0 * config.scale_factor));

  data.part.reserve(num_parts);
  for (uint64_t p = 0; p < num_parts; ++p) {
    const char* s1 = kTypeS1[rng.UniformUint64(std::size(kTypeS1))];
    const char* s2 = kTypeS2[rng.UniformUint64(std::size(kTypeS2))];
    const char* s3 = kTypeS3[rng.UniformUint64(std::size(kTypeS3))];
    const std::string type = std::string(s1) + " " + s2 + " " + s3;
    const int64_t is_promo = (type.rfind("PROMO", 0) == 0) ? 1 : 0;
    const double price =
        900.0 + static_cast<double>(rng.UniformUint64(1200)) / 10.0;
    data.part.push_back(Row{static_cast<int64_t>(p + 1), type, is_promo, price});
  }

  // Order dates are uniform over [STARTDATE, ENDDATE - 151] as in dbgen, so
  // every derived lineitem date stays inside the populated range.
  const uint64_t last_order_day = TpchLastDay() - 151;

  data.orders.reserve(num_orders);
  data.lineitem.reserve(num_orders * 4);
  for (uint64_t o = 0; o < num_orders; ++o) {
    const int64_t orderkey = static_cast<int64_t>(o + 1);
    const uint64_t orderdate = rng.UniformUint64(last_order_day + 1);
    const char* priority = kPriorities[rng.UniformUint64(std::size(kPriorities))];
    data.orders.push_back(
        Row{orderkey, static_cast<int64_t>(orderdate), std::string(priority)});

    const uint64_t num_lines = 1 + rng.UniformUint64(7);  // 1..7
    for (uint64_t l = 0; l < num_lines; ++l) {
      const int64_t partkey =
          static_cast<int64_t>(1 + rng.UniformUint64(num_parts));
      const double quantity = static_cast<double>(1 + rng.UniformUint64(50));
      const double discount =
          static_cast<double>(rng.UniformUint64(11)) / 100.0;  // 0.00..0.10
      const double extendedprice =
          quantity * (900.0 + static_cast<double>(rng.UniformUint64(1200)) / 10.0);
      const uint64_t shipdate = orderdate + 1 + rng.UniformUint64(121);
      const uint64_t commitdate = orderdate + 30 + rng.UniformUint64(61);
      const uint64_t receiptdate = shipdate + 1 + rng.UniformUint64(30);
      const int64_t returnflag = static_cast<int64_t>(rng.UniformUint64(3));
      data.lineitem.push_back(Row{
          orderkey,
          partkey,
          quantity,
          extendedprice,
          discount,
          static_cast<int64_t>(shipdate),
          static_cast<int64_t>(commitdate),
          static_cast<int64_t>(receiptdate),
          returnflag,
      });
    }
  }
  return data;
}

Q6Params SampleQ6(mope::BitSource* rng) {
  Q6Params params;
  const int year = 1993 + static_cast<int>(rng->UniformUint64(5));
  const uint64_t first = TpchDayIndex(CivilDate{year, 1, 1});
  const uint64_t last = TpchDayIndex(CivilDate{year + 1, 1, 1}) - 1;
  params.shipdate = query::RangeQuery{first, last};
  const double d =
      0.02 + static_cast<double>(rng->UniformUint64(8)) / 100.0;  // 0.02..0.09
  params.discount_lo = d - 0.01;
  params.discount_hi = d + 0.01;
  params.quantity_lt = (rng->UniformUint64(2) == 0) ? 24.0 : 25.0;
  return params;
}

Q14Params SampleQ14(mope::BitSource* rng) {
  Q14Params params;
  const int year = 1993 + static_cast<int>(rng->UniformUint64(5));
  const int month = 1 + static_cast<int>(rng->UniformUint64(12));
  const uint64_t first = TpchDayIndex(CivilDate{year, month, 1});
  const int next_year = (month == 12) ? year + 1 : year;
  const int next_month = (month == 12) ? 1 : month + 1;
  const uint64_t last = TpchDayIndex(CivilDate{next_year, next_month, 1}) - 1;
  params.shipdate = query::RangeQuery{first, last};
  return params;
}

Q4Params SampleQ4(mope::BitSource* rng) {
  Q4Params params;
  const int year = 1993 + static_cast<int>(rng->UniformUint64(5));
  const int quarter = static_cast<int>(rng->UniformUint64(4));  // 0..3
  const int month = 1 + 3 * quarter;
  const uint64_t first = TpchDayIndex(CivilDate{year, month, 1});
  const int next_year = (month == 10) ? year + 1 : year;
  const int next_month = (month == 10) ? 1 : month + 3;
  const uint64_t last = TpchDayIndex(CivilDate{next_year, next_month, 1}) - 1;
  params.orderdate = query::RangeQuery{first, last};
  return params;
}

std::string Q6Sql(const Q6Params& params) {
  return "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
         "WHERE l_shipdate BETWEEN " +
         std::to_string(params.shipdate.first) + " AND " +
         std::to_string(params.shipdate.last) + " AND l_discount BETWEEN " +
         std::to_string(params.discount_lo) + " AND " +
         std::to_string(params.discount_hi) + " AND l_quantity < " +
         std::to_string(params.quantity_lt);
}

std::string Q14PromoSql(const Q14Params& params) {
  return "SELECT SUM(l_extendedprice * (1 - l_discount) * p_ispromo) AS "
         "promo_revenue FROM lineitem JOIN part ON l_partkey = p_partkey "
         "WHERE l_shipdate BETWEEN " +
         std::to_string(params.shipdate.first) + " AND " +
         std::to_string(params.shipdate.last);
}

std::string Q14TotalSql(const Q14Params& params) {
  return "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM "
         "lineitem JOIN part ON l_partkey = p_partkey WHERE l_shipdate "
         "BETWEEN " +
         std::to_string(params.shipdate.first) + " AND " +
         std::to_string(params.shipdate.last);
}

std::string Q1Sql(uint64_t shipdate_le_day) {
  return "SELECT SUM(l_quantity) AS sum_qty, "
         "SUM(l_extendedprice) AS sum_base_price, "
         "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
         "AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
         "FROM lineitem WHERE l_shipdate <= " +
         std::to_string(shipdate_le_day) + " GROUP BY l_returnflag";
}

}  // namespace mope::workload
