#ifndef MOPE_WORKLOAD_CSV_H_
#define MOPE_WORKLOAD_CSV_H_

/// \file csv.h
/// Minimal CSV import/export for engine rows — the practical loading path a
/// data owner would use before encrypting a dataset into the system.
///
/// Dialect: comma-separated, first line is a header naming the columns
/// (must match the schema order), double quotes wrap fields containing
/// commas/quotes/newlines, embedded quotes double up ("" -> ").

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"

namespace mope::workload {

/// Parses CSV text into rows matching `schema` (header validated first).
/// Int and double columns are parsed numerically; parse failures carry the
/// 1-based line number.
Result<std::vector<engine::Row>> ParseCsv(const engine::Schema& schema,
                                          const std::string& text);

/// Renders rows as CSV with a header line.
std::string WriteCsv(const engine::Schema& schema,
                     const std::vector<engine::Row>& rows);

/// Convenience: read/write a file on disk.
Result<std::vector<engine::Row>> LoadCsvFile(const engine::Schema& schema,
                                             const std::string& path);
Status SaveCsvFile(const engine::Schema& schema,
                   const std::vector<engine::Row>& rows,
                   const std::string& path);

}  // namespace mope::workload

#endif  // MOPE_WORKLOAD_CSV_H_
