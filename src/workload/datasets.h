#ifndef MOPE_WORKLOAD_DATASETS_H_
#define MOPE_WORKLOAD_DATASETS_H_

/// \file datasets.h
/// The five data distributions of the paper's evaluation (Appendix B).
///
/// Uniform and Zipf are synthetic in the paper too. Adult (age), Covertype
/// (elevation) and SanFran (longitude bins) are real datasets we cannot ship
/// offline; we synthesize generators with the same domains and the same
/// qualitative shapes (see DESIGN.md §3): what the cost experiments exercise
/// is only the induced query-start distribution — its domain size and skew
/// profile — not the identities of individual records.
///
/// Each dataset yields (a) a value distribution used both as the database
/// content distribution and as the query-center distribution ("a user is
/// more interested in querying records that are densely represented"), and
/// (b) deterministic per-value record counts for cost evaluation.

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace mope::workload {

enum class DatasetKind : uint8_t {
  kUniform,    ///< Domain 10000, flat.
  kZipf,       ///< Domain 10000, power law (s = 1).
  kAdult,      ///< Ages 17..90 -> domain 74, right-skewed working-age bulge.
  kCovertype,  ///< Elevations 1859..3858 -> domain 2000, multimodal.
  kSanFran,    ///< Longitudes in 10000 bins, dense urban clusters + floor.
};

const char* DatasetName(DatasetKind kind);

/// Domain size of the dataset's value space.
uint64_t DatasetDomain(DatasetKind kind);

/// The dataset's value distribution over {0, ..., domain-1}.
dist::Distribution MakeDataset(DatasetKind kind);

/// Deterministic per-value record counts: round(total * p(i)), with the
/// remainder assigned to the heaviest values so the sum is exactly `total`.
std::vector<uint64_t> DeterministicCounts(const dist::Distribution& d,
                                          uint64_t total);

/// Multinomial record sampling (for tests that want sampling noise).
std::vector<uint64_t> SampleCounts(const dist::Distribution& d, uint64_t total,
                                   mope::BitSource* rng);

}  // namespace mope::workload

#endif  // MOPE_WORKLOAD_DATASETS_H_
