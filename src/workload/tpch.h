#ifndef MOPE_WORKLOAD_TPCH_H_
#define MOPE_WORKLOAD_TPCH_H_

/// \file tpch.h
/// TPC-H-style data generator and the range-query templates of Section 6.3.
///
/// The paper runs against dbgen at SF=1 (6M-row LINEITEM) on PostgreSQL. We
/// generate the same schemas and value domains with a configurable scale
/// factor (benches default to a laptop-scale SF) — Figures 13–15 report
/// *relative* costs (encrypted vs. unencrypted runtime, batched vs.
/// unbatched), which are preserved under scaling (DESIGN.md §3).
///
/// Date attributes span 1992-01-01 .. 1998-12-31; the benchmark's
/// range-query templates are Q4 (3 months on o_orderdate), Q6 (1 year on
/// l_shipdate) and Q14 (1 month on l_shipdate), all restricted to 1993–1997
/// like the TPC-H parameter ranges. Q1 (an almost-full-table shipdate range)
/// is generated too but excluded from the runtime benches, as in the paper.

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/table.h"
#include "query/query_types.h"
#include "workload/calendar.h"

namespace mope::workload {

struct TpchConfig {
  /// Fraction of the official SF=1 sizes (200k PART / 1.5M ORDERS / ~6M
  /// LINEITEM rows). 0.01 -> 2k/15k/~60k rows.
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
};

/// Generated database (plaintext day indexes in the date columns).
struct TpchData {
  engine::Schema part_schema;
  engine::Schema orders_schema;
  engine::Schema lineitem_schema;
  std::vector<engine::Row> part;
  std::vector<engine::Row> orders;
  std::vector<engine::Row> lineitem;
};

/// Column positions (stable; asserted by tests).
namespace tpch_cols {
// part
inline constexpr size_t kPartKey = 0;
inline constexpr size_t kPartType = 1;
inline constexpr size_t kPartIsPromo = 2;
inline constexpr size_t kPartRetailPrice = 3;
// orders
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kOrderDate = 1;
inline constexpr size_t kOrderPriority = 2;
// lineitem
inline constexpr size_t kLOrderKey = 0;
inline constexpr size_t kLPartKey = 1;
inline constexpr size_t kLQuantity = 2;
inline constexpr size_t kLExtendedPrice = 3;
inline constexpr size_t kLDiscount = 4;
inline constexpr size_t kLShipDate = 5;
inline constexpr size_t kLCommitDate = 6;
inline constexpr size_t kLReceiptDate = 7;
inline constexpr size_t kLReturnFlag = 8;
}  // namespace tpch_cols

/// Generates the database deterministically from config.seed.
TpchData GenerateTpch(const TpchConfig& config);

/// Instantiated query parameters for the three range-query templates.
struct Q6Params {
  query::RangeQuery shipdate;  ///< One 365-day year, 1993..1997.
  double discount_lo = 0.05;
  double discount_hi = 0.07;
  double quantity_lt = 24.0;
};

struct Q14Params {
  query::RangeQuery shipdate;  ///< One calendar month in 1993..1997.
};

struct Q4Params {
  query::RangeQuery orderdate;  ///< One calendar quarter in 1993..1997.
};

Q6Params SampleQ6(mope::BitSource* rng);
Q14Params SampleQ14(mope::BitSource* rng);
Q4Params SampleQ4(mope::BitSource* rng);

/// SQL text for the plaintext baselines (runs on the unencrypted tables via
/// the mini-SQL front end). Q4's EXISTS subquery is outside the SQL subset;
/// its baseline is a hand-built operator plan (see bench/tpch_util.h).
std::string Q6Sql(const Q6Params& params);
std::string Q14PromoSql(const Q14Params& params);
std::string Q14TotalSql(const Q14Params& params);
std::string Q1Sql(uint64_t shipdate_le_day);

}  // namespace mope::workload

#endif  // MOPE_WORKLOAD_TPCH_H_
