#include "workload/generator.h"

#include <cmath>

#include "common/histogram.h"
#include "common/status.h"

namespace mope::workload {

query::RangeQuery GenerateQuery(const dist::Distribution& centers,
                                const QueryGenConfig& config,
                                mope::BitSource* rng) {
  const uint64_t domain = centers.size();
  const uint64_t center = centers.Sample(rng);
  const double raw = std::abs(rng->Gaussian(0.0, config.sigma));
  uint64_t length = static_cast<uint64_t>(std::llround(raw));
  if (length == 0) length = 1;
  if (length > domain) length = domain;

  // Center the interval on `center`, clamped into [0, domain).
  const uint64_t half = length / 2;
  uint64_t first = (center >= half) ? center - half : 0;
  if (first + length > domain) first = domain - length;
  return query::RangeQuery{first, first + length - 1};
}

std::vector<query::RangeQuery> GenerateQueries(
    const dist::Distribution& centers, const QueryGenConfig& config,
    uint64_t count, mope::BitSource* rng) {
  std::vector<query::RangeQuery> queries;
  queries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    queries.push_back(GenerateQuery(centers, config, rng));
  }
  return queries;
}

dist::Distribution BuildStartDistribution(const dist::Distribution& centers,
                                          const QueryGenConfig& config,
                                          uint64_t k, uint64_t samples,
                                          mope::BitSource* rng) {
  const uint64_t domain = centers.size();
  Histogram starts(domain);
  for (uint64_t i = 0; i < samples; ++i) {
    const query::RangeQuery q = GenerateQuery(centers, config, rng);
    for (const query::FixedQuery& fq : query::Decompose(q, k, domain)) {
      starts.Add(fq.start);
    }
  }
  auto d = dist::Distribution::FromHistogram(starts);
  MOPE_CHECK(d.ok(), "start histogram cannot be empty");
  return std::move(d).value();
}

}  // namespace mope::workload
