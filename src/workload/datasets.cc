#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace mope::workload {

namespace {

constexpr uint64_t kUniformDomain = 10000;
constexpr uint64_t kZipfDomain = 10000;
constexpr uint64_t kAdultDomain = 74;        // ages 17..90
constexpr uint64_t kCovertypeDomain = 2000;  // elevations 1859..3858
constexpr uint64_t kSanFranDomain = 10000;   // longitude bins

double GaussianBump(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z);
}

/// Ages 17..90: working-age bulge that tapers toward 90, the shape of the
/// UCI Adult census age histogram (mode in the mid-30s, long right tail),
/// with the census "age heaping" artifact — respondents over-report round
/// ages, spiking multiples of 5 and especially 10. The heaping is what lets
/// QueryP with small periods (ρ = 5, 10 in Figure 5) cut the fake-query
/// cost: most congruence classes mod 5 have much smaller maxima than the
/// round-age classes.
std::vector<double> AdultWeights() {
  std::vector<double> w(kAdultDomain);
  for (uint64_t i = 0; i < kAdultDomain; ++i) {
    const double age = 17.0 + static_cast<double>(i);
    // Skewed log-normal-like bulge peaking near 36.
    const double t = std::log(age - 14.0);
    const double z = (t - std::log(22.0)) / 0.45;
    double weight = std::exp(-0.5 * z * z) / (age - 14.0);
    const int iage = static_cast<int>(age);
    if (iage % 10 == 0) {
      weight *= 2.2;
    } else if (iage % 5 == 0) {
      weight *= 1.6;
    }
    w[i] = weight;
  }
  return w;
}

/// Elevations 1859..3858: the Covertype histogram is strongly multimodal —
/// a dominant band near 2900-3250m with secondary mass lower and higher.
std::vector<double> CovertypeWeights() {
  std::vector<double> w(kCovertypeDomain);
  for (uint64_t i = 0; i < kCovertypeDomain; ++i) {
    const double elev = 1859.0 + static_cast<double>(i);
    w[i] = 0.55 * GaussianBump(elev, 2950.0, 170.0) +
           0.25 * GaussianBump(elev, 2550.0, 160.0) +
           0.20 * GaussianBump(elev, 3280.0, 110.0) + 1e-4;
  }
  return w;
}

/// Longitude bins of California road-network nodes. Binning a road network
/// to 10000 bins produces a few extremely dense bins (downtown street
/// grids, where thousands of nodes share a longitude sliver) over suburban
/// bumps and a sparse rural floor. The isolated dense bins are what makes
/// QueryP effective on SanFran (Figure 7): only the congruence classes
/// containing a dense bin have a large maximum, so η_Q << µ_Q.
std::vector<double> SanFranWeights() {
  struct Core {
    double center;  // bin position in [0, 10000)
    double width;   // very narrow: a city core spans a couple of bins
    double mass;
  };
  static constexpr Core kCores[] = {
      {1452.0, 2.0, 0.14},  // San Francisco downtown
      {1530.0, 2.5, 0.07},  // Oakland
      {1610.0, 2.0, 0.05},  // San Jose
      {2051.0, 2.5, 0.05},  // Sacramento
      {6903.0, 2.0, 0.15},  // Los Angeles downtown
      {6970.0, 2.5, 0.06},  // Long Beach
      {7604.0, 2.0, 0.04},  // Riverside
      {8901.0, 2.0, 0.08},  // San Diego
  };
  struct Sprawl {
    double center;
    double width;
    double mass;
  };
  static constexpr Sprawl kSprawl[] = {
      {1500.0, 60.0, 0.10},  // Bay Area suburbs
      {3300.0, 90.0, 0.04},  // Central Valley corridor
      {6950.0, 70.0, 0.12},  // LA basin sprawl
      {8880.0, 50.0, 0.05},  // San Diego county
  };
  constexpr double kSqrt2Pi = 2.5066282746310002;
  std::vector<double> w(kSanFranDomain);
  for (uint64_t i = 0; i < kSanFranDomain; ++i) {
    const double x = static_cast<double>(i);
    double v = 1e-5;  // rural floor
    for (const Core& c : kCores) {
      v += c.mass * GaussianBump(x, c.center, c.width) / (c.width * kSqrt2Pi);
    }
    for (const Sprawl& s : kSprawl) {
      v += s.mass * GaussianBump(x, s.center, s.width) / (s.width * kSqrt2Pi);
    }
    w[i] = v;
  }
  return w;
}

std::vector<double> ZipfWeights() {
  std::vector<double> w(kZipfDomain);
  for (uint64_t i = 0; i < kZipfDomain; ++i) {
    w[i] = 1.0 / static_cast<double>(i + 1);
  }
  return w;
}

}  // namespace

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kUniform: return "uniform";
    case DatasetKind::kZipf: return "zipf";
    case DatasetKind::kAdult: return "adult";
    case DatasetKind::kCovertype: return "covertype";
    case DatasetKind::kSanFran: return "sanfrancisco";
  }
  return "unknown";
}

uint64_t DatasetDomain(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kUniform: return kUniformDomain;
    case DatasetKind::kZipf: return kZipfDomain;
    case DatasetKind::kAdult: return kAdultDomain;
    case DatasetKind::kCovertype: return kCovertypeDomain;
    case DatasetKind::kSanFran: return kSanFranDomain;
  }
  return 0;
}

dist::Distribution MakeDataset(DatasetKind kind) {
  std::vector<double> w;
  switch (kind) {
    case DatasetKind::kUniform:
      return dist::Distribution::Uniform(kUniformDomain);
    case DatasetKind::kZipf:
      w = ZipfWeights();
      break;
    case DatasetKind::kAdult:
      w = AdultWeights();
      break;
    case DatasetKind::kCovertype:
      w = CovertypeWeights();
      break;
    case DatasetKind::kSanFran:
      w = SanFranWeights();
      break;
  }
  auto d = dist::Distribution::FromWeights(std::move(w));
  MOPE_CHECK(d.ok(), "dataset weights must form a distribution");
  return std::move(d).value();
}

std::vector<uint64_t> DeterministicCounts(const dist::Distribution& d,
                                          uint64_t total) {
  std::vector<uint64_t> counts(d.size());
  uint64_t assigned = 0;
  for (uint64_t i = 0; i < d.size(); ++i) {
    counts[i] = static_cast<uint64_t>(d.prob(i) * static_cast<double>(total));
    assigned += counts[i];
  }
  // Distribute the rounding remainder over the heaviest values.
  std::vector<uint64_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&d](uint64_t a, uint64_t b) {
    return d.prob(a) > d.prob(b);
  });
  for (uint64_t i = 0; assigned < total; ++i) {
    ++counts[order[i % order.size()]];
    ++assigned;
  }
  return counts;
}

std::vector<uint64_t> SampleCounts(const dist::Distribution& d, uint64_t total,
                                   mope::BitSource* rng) {
  std::vector<uint64_t> counts(d.size(), 0);
  for (uint64_t i = 0; i < total; ++i) ++counts[d.Sample(rng)];
  return counts;
}

}  // namespace mope::workload
