#ifndef MOPE_WORKLOAD_CALENDAR_H_
#define MOPE_WORKLOAD_CALENDAR_H_

/// \file calendar.h
/// Proleptic Gregorian calendar arithmetic (Hinnant's civil-days algorithm)
/// and the TPC-H date domain: the benchmark's date attributes span
/// 1992-01-01 .. 1998-12-31, which we map to day indexes with
/// day(1992-01-01) = 0.

#include <cstdint>
#include <string>

namespace mope::workload {

struct CivilDate {
  int year = 1992;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  bool operator==(const CivilDate&) const = default;
};

/// Days since 1970-01-01 for a civil date (negative before the epoch).
int64_t DaysFromCivil(const CivilDate& date);

/// Civil date for days since 1970-01-01.
CivilDate CivilFromDays(int64_t days);

/// Day index within the TPC-H domain: day 0 = 1992-01-01.
uint64_t TpchDayIndex(const CivilDate& date);

/// Inverse of TpchDayIndex.
CivilDate TpchDateFromIndex(uint64_t index);

/// "YYYY-MM-DD".
std::string FormatDate(const CivilDate& date);

/// TPC-H date constants (as day indexes).
inline constexpr uint64_t kTpchFirstDay = 0;  // 1992-01-01

/// Last populated date: 1998-12-31 -> index 2556.
uint64_t TpchLastDay();

/// The MOPE plaintext domain for date columns. Padded past the populated
/// range (2557 days) up to 2880 = 2^6 * 45 so that every period the paper's
/// Figure 13/14 sweeps — 15 days, 1/2/3/6 "months" (30-day units) and a
/// 360-day "year" — divides the domain, as QueryP requires (ρ | M).
inline constexpr uint64_t kTpchDateDomain = 2880;

/// Figure 13/14 period choices, in day units.
inline constexpr uint64_t kPeriod15Days = 15;
inline constexpr uint64_t kPeriod1Month = 30;
inline constexpr uint64_t kPeriod2Months = 60;
inline constexpr uint64_t kPeriod3Months = 90;
inline constexpr uint64_t kPeriod6Months = 180;
inline constexpr uint64_t kPeriod1Year = 360;

}  // namespace mope::workload

#endif  // MOPE_WORKLOAD_CALENDAR_H_
