#include "workload/calendar.h"

#include <cstdio>

#include "common/status.h"

namespace mope::workload {

int64_t DaysFromCivil(const CivilDate& date) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int y = date.year;
  const int m = date.month;
  const int d = date.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(int64_t days) {
  const int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                     // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                          // [1, 12]
  CivilDate date;
  date.year = static_cast<int>(y + (m <= 2));
  date.month = static_cast<int>(m);
  date.day = static_cast<int>(d);
  return date;
}

namespace {
const int64_t kTpchEpochDays = DaysFromCivil(CivilDate{1992, 1, 1});
}  // namespace

uint64_t TpchDayIndex(const CivilDate& date) {
  const int64_t days = DaysFromCivil(date) - kTpchEpochDays;
  MOPE_CHECK(days >= 0, "date before the TPC-H epoch");
  return static_cast<uint64_t>(days);
}

CivilDate TpchDateFromIndex(uint64_t index) {
  return CivilFromDays(kTpchEpochDays + static_cast<int64_t>(index));
}

uint64_t TpchLastDay() { return TpchDayIndex(CivilDate{1998, 12, 31}); }

std::string FormatDate(const CivilDate& date) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", date.year, date.month,
                date.day);
  return buf;
}

}  // namespace mope::workload
