#include "workload/csv.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "storage/env.h"

namespace mope::workload {

namespace {

/// Splits one CSV record starting at `pos`; advances `pos` past the record's
/// trailing newline. Returns ParseError on unterminated quotes.
Result<std::vector<std::string>> ReadRecord(const std::string& text,
                                            size_t* pos, size_t line_no) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume the line terminator (\n, \r\n or \r).
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    }
    field.push_back(c);
    ++i;
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<std::vector<engine::Row>> ParseCsv(const engine::Schema& schema,
                                          const std::string& text) {
  size_t pos = 0;
  size_t line_no = 1;
  MOPE_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        ReadRecord(text, &pos, line_no));
  if (header.size() != schema.num_columns()) {
    return Status::ParseError("header has " + std::to_string(header.size()) +
                              " columns, schema expects " +
                              std::to_string(schema.num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.column(c).name) {
      return Status::ParseError("header column " + std::to_string(c + 1) +
                                " is '" + header[c] + "', expected '" +
                                schema.column(c).name + "'");
    }
  }

  std::vector<engine::Row> rows;
  while (pos < text.size()) {
    ++line_no;
    MOPE_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ReadRecord(text, &pos, line_no));
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("line " + std::to_string(line_no) + " has " +
                                std::to_string(fields.size()) + " fields");
    }
    engine::Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& raw = fields[c];
      switch (schema.column(c).type) {
        case engine::ValueType::kInt: {
          errno = 0;
          char* end = nullptr;
          const long long v = std::strtoll(raw.c_str(), &end, 10);
          if (errno != 0 || end == raw.c_str() || *end != '\0') {
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": '" + raw + "' is not an integer");
          }
          row.emplace_back(static_cast<int64_t>(v));
          break;
        }
        case engine::ValueType::kDouble: {
          errno = 0;
          char* end = nullptr;
          const double v = std::strtod(raw.c_str(), &end);
          if (errno != 0 || end == raw.c_str() || *end != '\0') {
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": '" + raw + "' is not a number");
          }
          row.emplace_back(v);
          break;
        }
        case engine::ValueType::kString:
          row.emplace_back(raw);
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string WriteCsv(const engine::Schema& schema,
                     const std::vector<engine::Row>& rows) {
  std::ostringstream out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << QuoteField(schema.column(c).name);
  }
  out << '\n';
  for (const engine::Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << QuoteField(engine::ValueToString(row[c]));
    }
    out << '\n';
  }
  return out.str();
}

Result<std::vector<engine::Row>> LoadCsvFile(const engine::Schema& schema,
                                             const std::string& path) {
  MOPE_ASSIGN_OR_RETURN(std::string text,
                        storage::Env::Posix()->ReadFile(path));
  return ParseCsv(schema, text);
}

Status SaveCsvFile(const engine::Schema& schema,
                   const std::vector<engine::Row>& rows,
                   const std::string& path) {
  return storage::Env::Posix()->WriteFileAtomic(path, WriteCsv(schema, rows));
}

}  // namespace mope::workload
