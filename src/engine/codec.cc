#include "engine/codec.h"

#include <cstring>

namespace mope::engine {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      out->push_back(0);
      PutU64(out, static_cast<uint64_t>(std::get<int64_t>(v)));
      break;
    case ValueType::kDouble: {
      out->push_back(1);
      uint64_t bits;
      const double d = std::get<double>(v);
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      out->push_back(2);
      PutString(out, std::get<std::string>(v));
      break;
  }
}

Result<uint8_t> ByteReader::Byte() {
  if (pos_ >= bytes_.size()) return Truncated();
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  if (pos_ + 4 > bytes_.size()) return Truncated();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  if (pos_ + 8 > bytes_.size()) return Truncated();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::String() {
  MOPE_ASSIGN_OR_RETURN(uint64_t len, U64());
  if (len > bytes_.size() - pos_) {
    return Status::Corruption(std::string(context_) +
                              " string length out of bounds");
  }
  std::string s(bytes_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> ByteReader::ReadValue() {
  MOPE_ASSIGN_OR_RETURN(uint8_t tag, Byte());
  Value out;
  switch (tag) {
    case 0: {
      MOPE_ASSIGN_OR_RETURN(uint64_t bits, U64());
      out = static_cast<int64_t>(bits);
      break;
    }
    case 1: {
      MOPE_ASSIGN_OR_RETURN(uint64_t bits, U64());
      double d;
      std::memcpy(&d, &bits, 8);
      out = d;
      break;
    }
    case 2: {
      MOPE_ASSIGN_OR_RETURN(std::string s, String());
      out = std::move(s);
      break;
    }
    default:
      return Status::Corruption(std::string("unknown value tag in ") +
                                context_);
  }
  return out;
}

}  // namespace mope::engine
