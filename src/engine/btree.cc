#include "engine/btree.h"

#include <algorithm>
#include <compare>

namespace mope::engine {

namespace {

/// Index entries are (key, row_id) pairs compared lexicographically. Making
/// the row id part of the comparison key keeps every entry unique even when
/// many rows share a ciphertext (deterministic encryption of repeated values
/// — e.g. thousands of TPC-H rows per date), which keeps separator routing
/// simple and exact.
struct Entry {
  uint64_t key;
  uint64_t rid;

  auto operator<=>(const Entry&) const = default;
};

}  // namespace

struct BPlusTree::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;      // leaf payload, sorted
  std::vector<Entry> seps;         // internal separators, sorted
  std::vector<Node*> children;     // internal: seps.size() + 1 children
  Node* next = nullptr;            // leaf chain

  int key_count() const {
    return static_cast<int>(is_leaf ? entries.size() : seps.size());
  }
};

struct BPlusTree::InsertResult {
  Node* new_right = nullptr;  // non-null when the child split
  Entry split_sep{};          // smallest entry of new_right
};

BPlusTree::BPlusTree() : root_(new Node()) {}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : root_(other.root_), size_(other.size_), height_(other.height_) {
  other.root_ = new Node();
  other.size_ = 0;
  other.height_ = 1;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    root_ = other.root_;
    size_ = other.size_;
    height_ = other.height_;
    other.root_ = new Node();
    other.size_ = 0;
    other.height_ = 1;
  }
  return *this;
}

void BPlusTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (Node* child : node->children) FreeTree(child);
  }
  delete node;
}

// Routing invariant: for an internal node with separators s_0 < s_1 < ...,
// the subtree children[i] holds exactly the entries e with
// s_{i-1} <= e < s_i (s_{-1} = -inf, s_last = +inf). An entry routes to
// child upper_bound(seps, e): the first separator strictly greater than e.

BPlusTree::Node* BPlusTree::FindLeaf(uint64_t key) const {
  // Leaf where (key, 0) would be inserted; the first entry >= (key, 0) is in
  // this leaf or reachable through the leaf chain.
  const Entry probe{key, 0};
  Node* node = root_;
  while (!node->is_leaf) {
    const auto it = std::upper_bound(node->seps.begin(), node->seps.end(), probe);
    node = node->children[static_cast<size_t>(it - node->seps.begin())];
  }
  return node;
}

BPlusTree::InsertResult BPlusTree::InsertRec(Node* node, uint64_t key,
                                             uint64_t row_id) {
  const Entry entry{key, row_id};
  if (node->is_leaf) {
    const auto it =
        std::upper_bound(node->entries.begin(), node->entries.end(), entry);
    node->entries.insert(it, entry);
    if (node->key_count() <= kMaxKeys) return {};
    // Split the leaf in half; the pair keys are unique so any cut is valid.
    const size_t mid = node->entries.size() / 2;
    Node* right = new Node();
    right->is_leaf = true;
    right->entries.assign(node->entries.begin() + static_cast<long>(mid),
                          node->entries.end());
    node->entries.resize(mid);
    right->next = node->next;
    node->next = right;
    return {right, right->entries.front()};
  }

  const auto it = std::upper_bound(node->seps.begin(), node->seps.end(), entry);
  const size_t idx = static_cast<size_t>(it - node->seps.begin());
  InsertResult child_split = InsertRec(node->children[idx], key, row_id);
  if (child_split.new_right == nullptr) return {};

  node->seps.insert(node->seps.begin() + static_cast<long>(idx),
                    child_split.split_sep);
  node->children.insert(node->children.begin() + static_cast<long>(idx) + 1,
                        child_split.new_right);
  if (node->key_count() <= kMaxKeys) return {};

  // Split the internal node: middle separator moves up.
  const size_t mid = node->seps.size() / 2;
  Node* right = new Node();
  right->is_leaf = false;
  const Entry up = node->seps[mid];
  right->seps.assign(node->seps.begin() + static_cast<long>(mid) + 1,
                     node->seps.end());
  right->children.assign(node->children.begin() + static_cast<long>(mid) + 1,
                         node->children.end());
  node->seps.resize(mid);
  node->children.resize(mid + 1);
  return {right, up};
}

void BPlusTree::Insert(uint64_t key, uint64_t row_id) {
  InsertResult split = InsertRec(root_, key, row_id);
  if (split.new_right != nullptr) {
    Node* new_root = new Node();
    new_root->is_leaf = false;
    new_root->seps.push_back(split.split_sep);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.new_right);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

void BPlusTree::RebalanceChild(Node* parent, int child_idx) {
  Node* child = parent->children[static_cast<size_t>(child_idx)];
  Node* left = child_idx > 0
                   ? parent->children[static_cast<size_t>(child_idx) - 1]
                   : nullptr;
  Node* right = child_idx + 1 < static_cast<int>(parent->children.size())
                    ? parent->children[static_cast<size_t>(child_idx) + 1]
                    : nullptr;

  if (child->is_leaf) {
    if (left != nullptr && left->key_count() > kMinKeys) {
      // Borrow the largest entry from the left sibling.
      child->entries.insert(child->entries.begin(), left->entries.back());
      left->entries.pop_back();
      parent->seps[static_cast<size_t>(child_idx) - 1] = child->entries.front();
      return;
    }
    if (right != nullptr && right->key_count() > kMinKeys) {
      // Borrow the smallest entry from the right sibling.
      child->entries.push_back(right->entries.front());
      right->entries.erase(right->entries.begin());
      parent->seps[static_cast<size_t>(child_idx)] = right->entries.front();
      return;
    }
    // Merge with a sibling (prefer left so the chain pointer fix is local).
    if (left != nullptr) {
      left->entries.insert(left->entries.end(), child->entries.begin(),
                           child->entries.end());
      left->next = child->next;
      parent->seps.erase(parent->seps.begin() + child_idx - 1);
      parent->children.erase(parent->children.begin() + child_idx);
      delete child;
    } else {
      child->entries.insert(child->entries.end(), right->entries.begin(),
                            right->entries.end());
      child->next = right->next;
      parent->seps.erase(parent->seps.begin() + child_idx);
      parent->children.erase(parent->children.begin() + child_idx + 1);
      delete right;
    }
    return;
  }

  // Internal child: rotate through the parent separator.
  if (left != nullptr && left->key_count() > kMinKeys) {
    child->seps.insert(child->seps.begin(),
                       parent->seps[static_cast<size_t>(child_idx) - 1]);
    parent->seps[static_cast<size_t>(child_idx) - 1] = left->seps.back();
    left->seps.pop_back();
    child->children.insert(child->children.begin(), left->children.back());
    left->children.pop_back();
    return;
  }
  if (right != nullptr && right->key_count() > kMinKeys) {
    child->seps.push_back(parent->seps[static_cast<size_t>(child_idx)]);
    parent->seps[static_cast<size_t>(child_idx)] = right->seps.front();
    right->seps.erase(right->seps.begin());
    child->children.push_back(right->children.front());
    right->children.erase(right->children.begin());
    return;
  }
  if (left != nullptr) {
    left->seps.push_back(parent->seps[static_cast<size_t>(child_idx) - 1]);
    left->seps.insert(left->seps.end(), child->seps.begin(), child->seps.end());
    left->children.insert(left->children.end(), child->children.begin(),
                          child->children.end());
    parent->seps.erase(parent->seps.begin() + child_idx - 1);
    parent->children.erase(parent->children.begin() + child_idx);
    delete child;
  } else {
    child->seps.push_back(parent->seps[static_cast<size_t>(child_idx)]);
    child->seps.insert(child->seps.end(), right->seps.begin(),
                       right->seps.end());
    child->children.insert(child->children.end(), right->children.begin(),
                           right->children.end());
    parent->seps.erase(parent->seps.begin() + child_idx);
    parent->children.erase(parent->children.begin() + child_idx + 1);
    delete right;
  }
}

bool BPlusTree::EraseRec(Node* node, uint64_t key, uint64_t row_id) {
  const Entry entry{key, row_id};
  if (node->is_leaf) {
    const auto it =
        std::lower_bound(node->entries.begin(), node->entries.end(), entry);
    if (it == node->entries.end() || *it != entry) return false;
    node->entries.erase(it);
    return true;
  }
  const auto it = std::upper_bound(node->seps.begin(), node->seps.end(), entry);
  const int idx = static_cast<int>(it - node->seps.begin());
  if (!EraseRec(node->children[static_cast<size_t>(idx)], key, row_id)) {
    return false;
  }
  if (node->children[static_cast<size_t>(idx)]->key_count() < kMinKeys) {
    RebalanceChild(node, idx);
  }
  return true;
}

bool BPlusTree::Erase(uint64_t key, uint64_t row_id) {
  if (!EraseRec(root_, key, row_id)) return false;
  --size_;
  if (!root_->is_leaf && root_->key_count() == 0) {
    Node* old_root = root_;
    root_ = root_->children[0];
    old_root->children.clear();
    delete old_root;
    --height_;
  }
  return true;
}

size_t BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  return ScanRange(lo, hi, fn, nullptr);
}

size_t BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<void(uint64_t, uint64_t)>& fn,
    ScanStats* stats) const {
  if (lo > hi) return 0;
  const Node* leaf = FindLeaf(lo);
  const Entry probe{lo, 0};
  size_t visited = 0;
  size_t nodes = 1;
  auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), probe);
  while (leaf != nullptr) {
    for (; it != leaf->entries.end(); ++it) {
      if (it->key > hi) {
        if (stats != nullptr) stats->nodes_visited += nodes;
        return visited;
      }
      fn(it->key, it->rid);
      ++visited;
    }
    leaf = leaf->next;
    if (leaf != nullptr) {
      it = leaf->entries.begin();
      ++nodes;
    }
  }
  if (stats != nullptr) stats->nodes_visited += nodes;
  return visited;
}

size_t BPlusTree::CountRange(uint64_t lo, uint64_t hi) const {
  size_t n = 0;
  ScanRange(lo, hi, [&n](uint64_t, uint64_t) { ++n; });
  return n;
}

Status BPlusTree::CheckNode(const Node* node, int depth, uint64_t lo_bound,
                            bool has_lo, uint64_t hi_bound, bool has_hi,
                            const Node** leftmost_leaf) const {
  const bool is_root = (node == root_);
  if (node->is_leaf) {
    if (depth != height_) return Status::Internal("leaf at wrong depth");
    if (!is_root && node->key_count() < kMinKeys) {
      return Status::Internal("leaf underflow");
    }
    if (node->key_count() > kMaxKeys) return Status::Internal("leaf overflow");
    if (!std::is_sorted(node->entries.begin(), node->entries.end())) {
      return Status::Internal("leaf entries unsorted");
    }
    for (const Entry& e : node->entries) {
      if (has_lo && e < Entry{lo_bound, 0}) {
        return Status::Internal("leaf entry below subtree bound");
      }
      if (has_hi && !(e.key < hi_bound ||
                      (e.key == hi_bound && e < Entry{hi_bound, ~uint64_t{0}}))) {
        // Strict upper bound is on the pair; a coarse key check suffices here.
        if (e.key > hi_bound) return Status::Internal("leaf entry above bound");
      }
    }
    if (*leftmost_leaf == nullptr) *leftmost_leaf = node;
    return Status::OK();
  }

  if (!is_root && node->key_count() < kMinKeys) {
    return Status::Internal("internal underflow");
  }
  if (node->key_count() > kMaxKeys) return Status::Internal("internal overflow");
  if (node->children.size() != node->seps.size() + 1) {
    return Status::Internal("internal child count mismatch");
  }
  if (!std::is_sorted(node->seps.begin(), node->seps.end())) {
    return Status::Internal("separators unsorted");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const bool child_has_lo = (i > 0) || has_lo;
    const uint64_t child_lo = (i > 0) ? node->seps[i - 1].key : lo_bound;
    const bool child_has_hi = (i < node->seps.size()) || has_hi;
    const uint64_t child_hi = (i < node->seps.size()) ? node->seps[i].key : hi_bound;
    MOPE_RETURN_NOT_OK(CheckNode(node->children[i], depth + 1, child_lo,
                                 child_has_lo, child_hi, child_has_hi,
                                 leftmost_leaf));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  const Node* leftmost = nullptr;
  MOPE_RETURN_NOT_OK(CheckNode(root_, 1, 0, false, 0, false, &leftmost));
  // Leaf chain must enumerate exactly size_ entries in sorted order.
  size_t n = 0;
  bool first = true;
  Entry prev{0, 0};
  for (const Node* leaf = leftmost; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& e : leaf->entries) {
      if (!first && e < prev) return Status::Internal("leaf chain unsorted");
      prev = e;
      first = false;
      ++n;
    }
  }
  if (leftmost == nullptr && root_->is_leaf) {
    n = root_->entries.size();
  }
  if (n != size_) return Status::Internal("leaf chain size mismatch");
  return Status::OK();
}

}  // namespace mope::engine
