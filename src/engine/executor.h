#ifndef MOPE_ENGINE_EXECUTOR_H_
#define MOPE_ENGINE_EXECUTOR_H_

/// \file executor.h
/// Volcano-style (pull-based) physical operators over engine tables.
///
/// The subset matches what the paper's workload needs: sequential and
/// B+-tree index range scans, *multi-range* scans (the Section 5.1
/// multiple-query optimization: many OR-ed range predicates answered in one
/// pass over a shared index), filters, hash joins (TPC-H Q14 joins LINEITEM
/// with PART), projections, and scalar/grouped aggregation (SUM / COUNT /
/// AVG / MIN / MAX).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/table.h"

namespace mope::engine {

/// Pull-based operator interface.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration.
  virtual Status Open() = 0;

  /// Produces the next row into *out; returns false when exhausted.
  virtual Result<bool> Next(Row* out) = 0;

  /// Number of output columns.
  virtual size_t output_width() const = 0;
};

/// Drains an operator tree into a materialized vector of rows.
Result<std::vector<Row>> Collect(Operator* op);

/// Sorts segments and merges overlapping or adjacent ones — the shared-scan
/// preparation for disjunctive range predicates. The result is disjoint and
/// ascending, so a multi-range scan touches every qualifying row exactly once.
std::vector<Segment> CoalesceSegments(std::vector<Segment> segments);

/// Full-table scan.
class SeqScanOp final : public Operator {
 public:
  explicit SeqScanOp(const Table* table) : table_(table) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  size_t output_width() const override {
    return table_->schema().num_columns();
  }

 private:
  const Table* table_;
  RowId next_ = 0;
};

/// B+-tree range scan over one or more (coalesced) key segments. Emits full
/// rows in key order; per-scan statistics are exposed for the benches.
class IndexRangeScanOp final : public Operator {
 public:
  /// `segments` are inclusive ciphertext intervals; they are coalesced at
  /// construction so overlapping query ranges share one index sweep.
  IndexRangeScanOp(const Table* table, const BPlusTree* index,
                   std::vector<Segment> segments);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  size_t output_width() const override {
    return table_->schema().num_columns();
  }

  /// Index entries visited during the last Open/odrain cycle.
  uint64_t entries_visited() const { return entries_visited_; }
  /// B+-tree leaf nodes touched during the last Open.
  uint64_t nodes_visited() const { return nodes_visited_; }
  size_t segments_scanned() const { return segments_.size(); }

 private:
  const Table* table_;
  const BPlusTree* index_;
  std::vector<Segment> segments_;
  std::vector<RowId> row_ids_;
  size_t next_ = 0;
  uint64_t entries_visited_ = 0;
  uint64_t nodes_visited_ = 0;
};

/// Row predicate; errors propagate out of Next.
using Predicate = std::function<Result<bool>(const Row&)>;

class FilterOp final : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, Predicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  size_t output_width() const override { return child_->output_width(); }

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
};

/// Keeps the given column subset, in order.
class ProjectOp final : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<size_t> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  size_t output_width() const override { return columns_.size(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> columns_;
};

/// Hash join on int64 equality: builds on the right child, probes with the
/// left. Output rows are left columns followed by right columns.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
             size_t left_key_col, size_t right_key_col);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  size_t output_width() const override {
    return left_->output_width() + right_->output_width();
  }

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_key_col_;
  size_t right_key_col_;
  std::unordered_multimap<int64_t, Row> build_;
  Row current_left_;
  std::pair<std::unordered_multimap<int64_t, Row>::const_iterator,
            std::unordered_multimap<int64_t, Row>::const_iterator>
      probe_range_;
  bool probing_ = false;
};

/// Materializing sort. Keys are extracted per row; rows compare by the key
/// sequence (numeric promotion applies; ties keep input order — the sort is
/// stable).
class SortOp final : public Operator {
 public:
  struct SortKey {
    size_t column = 0;
    bool descending = false;
  };

  SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  size_t output_width() const override { return child_->output_width(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

/// Emits at most `limit` rows from its child.
class LimitOp final : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> Next(Row* out) override {
    if (emitted_ >= limit_) return false;
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (has) ++emitted_;
    return has;
  }

  size_t output_width() const override { return child_->output_width(); }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// Aggregate function kinds.
enum class AggKind : uint8_t { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate: a kind plus a numeric extractor evaluated per input row
/// (COUNT ignores the extractor, which may be null).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  std::function<Result<double>(const Row&)> extract;
};

/// Scalar or grouped aggregation. With no group-by column the output is a
/// single row of aggregate values (doubles, except COUNT which is int64).
/// With a group-by column the output is (group_key, aggs...) per group, in
/// ascending group-key order.
class AggregateOp final : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> child, std::vector<AggSpec> aggs);
  AggregateOp(std::unique_ptr<Operator> child, size_t group_by_col,
              std::vector<AggSpec> aggs);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  size_t output_width() const override {
    return aggs_.size() + (has_group_by_ ? 1 : 0);
  }

 private:
  struct AggState {
    double sum = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    bool seen = false;
  };

  Row Finalize(int64_t group_key, const std::vector<AggState>& states) const;

  std::unique_ptr<Operator> child_;
  std::vector<AggSpec> aggs_;
  bool has_group_by_ = false;
  size_t group_by_col_ = 0;
  std::vector<Row> results_;
  size_t next_ = 0;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_EXECUTOR_H_
