#ifndef MOPE_ENGINE_EXECUTOR_H_
#define MOPE_ENGINE_EXECUTOR_H_

/// \file executor.h
/// Volcano-style (pull-based) physical operators over engine tables.
///
/// The subset matches what the paper's workload needs: sequential and
/// B+-tree index range scans, *multi-range* scans (the Section 5.1
/// multiple-query optimization: many OR-ed range predicates answered in one
/// pass over a shared index), filters, hash joins (TPC-H Q14 joins LINEITEM
/// with PART), projections, and scalar/grouped aggregation (SUM / COUNT /
/// AVG / MIN / MAX).
///
/// Every operator is instrumented for EXPLAIN ANALYZE: the public
/// `Open()` / `Next()` entry points are non-virtual hooks that dispatch to
/// the per-operator `OpenImpl()` / `NextImpl()` overrides. With profiling
/// off the hook is a single pointer test (no clock reads, no counter
/// traffic); with profiling on it fills the operator's `OpStats` block —
/// rows out, `Next()` calls, cumulative wall time from the injectable
/// `obs::Clock`, and buffer-pool-miss / WAL-byte deltas snapshotted from
/// registry counters around each call. Timings and counter deltas are
/// *inclusive* of children, as in PostgreSQL's EXPLAIN ANALYZE; subtract a
/// child's numbers to get an operator's self cost.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/table.h"

namespace mope::obs {
class Clock;
class Counter;
class MetricsRegistry;
}  // namespace mope::obs

namespace mope::engine {

/// Per-operator execution actuals, filled only while profiling is enabled
/// (see Operator::EnableProfiling). Reset on every profiled Open().
struct OpStats {
  uint64_t rows_out = 0;       ///< Rows produced by Next().
  uint64_t next_calls = 0;     ///< Next() invocations (incl. the final miss).
  uint64_t open_ns = 0;        ///< Wall time inside Open(), incl. children.
  uint64_t next_ns = 0;        ///< Cumulative Next() time, incl. children.
  uint64_t entries_visited = 0;    ///< Index entries touched (index scans).
  uint64_t nodes_visited = 0;      ///< B+-tree leaf nodes touched.
  uint64_t pool_misses = 0;    ///< Buffer-pool miss delta attributed here.
  uint64_t wal_bytes = 0;      ///< WAL byte delta attributed here.
};

/// Shared profiling context threaded through an operator tree. The clock is
/// required; the counters are optional delta sources (pass the live
/// `storage.pool.misses` / `storage.wal.bytes` registry counters to
/// attribute storage work to the operators that triggered it).
struct ProfileContext {
  obs::Clock* clock = nullptr;
  const obs::Counter* pool_misses = nullptr;
  const obs::Counter* wal_bytes = nullptr;
};

/// Pull-based operator interface.
///
/// Subclasses implement the protected `OpenImpl()` / `NextImpl()` hooks and
/// never override the public entry points (linter rule R12 enforces this):
/// routing every call through the base keeps the profiling contract — one
/// branch when off, complete actuals when on — true for every operator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration.
  Status Open();

  /// Produces the next row into *out; returns false when exhausted.
  Result<bool> Next(Row* out);

  /// Number of output columns.
  virtual size_t output_width() const = 0;

  /// Stable operator-type name ("SeqScan", "HashJoin", ...). Used as the
  /// EXPLAIN node label and the per-operator-type metrics key.
  virtual const char* name() const = 0;

  /// Direct children, outermost input first. EXPLAIN renders this shape and
  /// EnableProfiling recurses over it.
  virtual std::vector<Operator*> children() { return {}; }

  /// One-line EXPLAIN label: the type name plus the planner's annotation
  /// (predicate text, segment list, ...), when one was attached.
  std::string describe() const {
    return annotation_.empty() ? std::string(name())
                               : std::string(name()) + " " + annotation_;
  }
  void set_annotation(std::string annotation) {
    annotation_ = std::move(annotation);
  }

  /// Planner cardinality estimate for EXPLAIN (`rows=` in the plan output).
  void set_estimated_rows(uint64_t rows) { estimated_rows_ = rows; }
  uint64_t estimated_rows() const { return estimated_rows_; }

  /// Turns profiling on (ctx != nullptr) or off for this subtree. The
  /// context must outlive execution. Resets accumulated stats.
  void EnableProfiling(const ProfileContext* ctx);

  /// Actuals from the last profiled execution.
  const OpStats& stats() const { return stats_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* out) = 0;

  /// Lets OpImpl code (index scans) attribute data-access detail.
  OpStats* mutable_stats() { return &stats_; }
  bool profiling_enabled() const { return profile_ != nullptr; }

 private:
  Status OpenProfiled();
  Result<bool> NextProfiled(Row* out);

  const ProfileContext* profile_ = nullptr;
  OpStats stats_;
  uint64_t estimated_rows_ = 0;
  std::string annotation_;
};

inline Status Operator::Open() {
  // Fast path: profiling off costs one predicted-not-taken branch.
  if (profile_ == nullptr) return OpenImpl();
  return OpenProfiled();
}

inline Result<bool> Operator::Next(Row* out) {
  if (profile_ == nullptr) return NextImpl(out);
  return NextProfiled(out);
}

/// Drains an operator tree into a materialized vector of rows.
Result<std::vector<Row>> Collect(Operator* op);

/// Folds a profiled tree's actuals into per-operator-type histograms in
/// `registry`: `executor.op.<name>.ns` (inclusive wall time) and
/// `executor.op.<name>.rows` (rows produced) per operator, recursively. The
/// /metrics endpoint then serves latency/row distributions by operator type
/// across all profiled queries. No-op for operators that were not profiled.
void FoldOpStatsIntoRegistry(Operator* root, obs::MetricsRegistry* registry);

/// Sorts segments and merges overlapping or adjacent ones — the shared-scan
/// preparation for disjunctive range predicates. The result is disjoint and
/// ascending, so a multi-range scan touches every qualifying row exactly once.
std::vector<Segment> CoalesceSegments(std::vector<Segment> segments);

/// Full-table scan.
class SeqScanOp final : public Operator {
 public:
  explicit SeqScanOp(const Table* table) : table_(table) {}

  size_t output_width() const override {
    return table_->schema().num_columns();
  }
  const char* name() const override { return "SeqScan"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  const Table* table_;
  RowId next_ = 0;
};

/// B+-tree range scan over one or more (coalesced) key segments. Emits full
/// rows in key order; per-scan statistics are exposed for the benches.
class IndexRangeScanOp final : public Operator {
 public:
  /// `segments` are inclusive ciphertext intervals; they are coalesced at
  /// construction so overlapping query ranges share one index sweep.
  IndexRangeScanOp(const Table* table, const BPlusTree* index,
                   std::vector<Segment> segments);

  size_t output_width() const override {
    return table_->schema().num_columns();
  }
  const char* name() const override { return "IndexRangeScan"; }

  /// Index entries visited during the last Open/drain cycle.
  uint64_t entries_visited() const { return entries_visited_; }
  /// B+-tree leaf nodes touched during the last Open, summed over sweeps.
  uint64_t nodes_visited() const { return nodes_visited_; }
  size_t segments_scanned() const { return segments_.size(); }
  /// Leaf nodes touched by each executed sweep, in segment order. Every
  /// coalesced segment runs its own sweep, and every sweep's visits are
  /// attributed individually (not just the first range's), so ANALYZE
  /// actuals stay exact for multi-range scans.
  const std::vector<uint64_t>& nodes_per_sweep() const {
    return nodes_per_sweep_;
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  const Table* table_;
  const BPlusTree* index_;
  std::vector<Segment> segments_;
  std::vector<RowId> row_ids_;
  size_t next_ = 0;
  uint64_t entries_visited_ = 0;
  uint64_t nodes_visited_ = 0;
  std::vector<uint64_t> nodes_per_sweep_;
};

/// Row predicate; errors propagate out of Next.
using Predicate = std::function<Result<bool>(const Row&)>;

class FilterOp final : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, Predicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  size_t output_width() const override { return child_->output_width(); }
  const char* name() const override { return "Filter"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
};

/// Keeps the given column subset, in order.
class ProjectOp final : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<size_t> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  size_t output_width() const override { return columns_.size(); }
  const char* name() const override { return "Project"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> columns_;
};

/// Hash join on int64 equality: builds on the right child, probes with the
/// left. Output rows are left columns followed by right columns.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
             size_t left_key_col, size_t right_key_col);

  size_t output_width() const override {
    return left_->output_width() + right_->output_width();
  }
  const char* name() const override { return "HashJoin"; }
  std::vector<Operator*> children() override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_key_col_;
  size_t right_key_col_;
  std::unordered_multimap<int64_t, Row> build_;
  Row current_left_;
  std::pair<std::unordered_multimap<int64_t, Row>::const_iterator,
            std::unordered_multimap<int64_t, Row>::const_iterator>
      probe_range_;
  bool probing_ = false;
};

/// Materializing sort. Keys are extracted per row; rows compare by the key
/// sequence (numeric promotion applies; ties keep input order — the sort is
/// stable).
class SortOp final : public Operator {
 public:
  struct SortKey {
    size_t column = 0;
    bool descending = false;
  };

  SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  size_t output_width() const override { return child_->output_width(); }
  const char* name() const override { return "Sort"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

/// Emits at most `limit` rows from its child.
class LimitOp final : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  size_t output_width() const override { return child_->output_width(); }
  const char* name() const override { return "Limit"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> NextImpl(Row* out) override {
    if (emitted_ >= limit_) return false;
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (has) ++emitted_;
    return has;
  }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// Aggregate function kinds.
enum class AggKind : uint8_t { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate: a kind plus a numeric extractor evaluated per input row
/// (COUNT ignores the extractor, which may be null).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  std::function<Result<double>(const Row&)> extract;
};

/// Scalar or grouped aggregation. With no group-by column the output is a
/// single row of aggregate values (doubles, except COUNT which is int64).
/// With a group-by column the output is (group_key, aggs...) per group, in
/// ascending group-key order.
class AggregateOp final : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> child, std::vector<AggSpec> aggs);
  AggregateOp(std::unique_ptr<Operator> child, size_t group_by_col,
              std::vector<AggSpec> aggs);

  size_t output_width() const override {
    return aggs_.size() + (has_group_by_ ? 1 : 0);
  }
  const char* name() const override { return "Aggregate"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  struct AggState {
    double sum = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    bool seen = false;
  };

  Row Finalize(int64_t group_key, const std::vector<AggState>& states) const;

  std::unique_ptr<Operator> child_;
  std::vector<AggSpec> aggs_;
  bool has_group_by_ = false;
  size_t group_by_col_ = 0;
  std::vector<Row> results_;
  size_t next_ = 0;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_EXECUTOR_H_
