#include "engine/executor.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::engine {

void Operator::EnableProfiling(const ProfileContext* ctx) {
  profile_ = ctx;
  stats_ = OpStats{};
  for (Operator* child : children()) child->EnableProfiling(ctx);
}

Status Operator::OpenProfiled() {
  // A profiled execution starts here: drop actuals from any previous run so
  // re-executing a cached plan reports this run, not the sum of all runs.
  stats_ = OpStats{};
  const uint64_t t0 = profile_->clock->NowNanos();
  const uint64_t misses0 =
      profile_->pool_misses != nullptr ? profile_->pool_misses->Value() : 0;
  const uint64_t wal0 =
      profile_->wal_bytes != nullptr ? profile_->wal_bytes->Value() : 0;
  const Status s = OpenImpl();
  stats_.open_ns += profile_->clock->NowNanos() - t0;
  if (profile_->pool_misses != nullptr) {
    stats_.pool_misses += profile_->pool_misses->Value() - misses0;
  }
  if (profile_->wal_bytes != nullptr) {
    stats_.wal_bytes += profile_->wal_bytes->Value() - wal0;
  }
  return s;
}

Result<bool> Operator::NextProfiled(Row* out) {
  const uint64_t t0 = profile_->clock->NowNanos();
  const uint64_t misses0 =
      profile_->pool_misses != nullptr ? profile_->pool_misses->Value() : 0;
  const uint64_t wal0 =
      profile_->wal_bytes != nullptr ? profile_->wal_bytes->Value() : 0;
  Result<bool> r = NextImpl(out);
  stats_.next_ns += profile_->clock->NowNanos() - t0;
  ++stats_.next_calls;
  if (r.ok() && r.value()) ++stats_.rows_out;
  if (profile_->pool_misses != nullptr) {
    stats_.pool_misses += profile_->pool_misses->Value() - misses0;
  }
  if (profile_->wal_bytes != nullptr) {
    stats_.wal_bytes += profile_->wal_bytes->Value() - wal0;
  }
  return r;
}

void FoldOpStatsIntoRegistry(Operator* root, obs::MetricsRegistry* registry) {
  const OpStats& stats = root->stats();
  // An unprofiled (or never-opened) operator carries all-zero stats; folding
  // those in would skew the per-type distributions toward zero.
  if (stats.next_calls != 0 || stats.open_ns != 0 || stats.rows_out != 0) {
    const std::string prefix = std::string("executor.op.") + root->name();
    registry->GetHistogram(prefix + ".ns")
        ->Observe(stats.open_ns + stats.next_ns);
    registry->GetHistogram(prefix + ".rows")->Observe(stats.rows_out);
  }
  for (Operator* child : root->children()) {
    FoldOpStatsIntoRegistry(child, registry);
  }
}

Result<std::vector<Row>> Collect(Operator* op) {
  MOPE_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    MOPE_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Segment> CoalesceSegments(std::vector<Segment> segments) {
  if (segments.empty()) return segments;
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  std::vector<Segment> merged;
  merged.push_back(segments.front());
  for (size_t i = 1; i < segments.size(); ++i) {
    Segment& last = merged.back();
    // Merge overlapping or exactly-adjacent segments.
    if (segments[i].lo <= last.hi || segments[i].lo == last.hi + 1) {
      last.hi = std::max(last.hi, segments[i].hi);
    } else {
      merged.push_back(segments[i]);
    }
  }
  return merged;
}

Status SeqScanOp::OpenImpl() {
  next_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOp::NextImpl(Row* out) {
  if (next_ >= table_->row_count()) return false;
  *out = table_->row(next_++);
  return true;
}

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const BPlusTree* index,
                                   std::vector<Segment> segments)
    : table_(table),
      index_(index),
      segments_(CoalesceSegments(std::move(segments))) {}

Status IndexRangeScanOp::OpenImpl() {
  row_ids_.clear();
  next_ = 0;
  entries_visited_ = 0;
  nodes_visited_ = 0;
  nodes_per_sweep_.clear();
  nodes_per_sweep_.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    // Fresh stats per executed sweep: every coalesced segment's node visits
    // are attributed, not just the first range's, so multi-range ANALYZE
    // actuals are exact.
    engine::BPlusTree::ScanStats sweep_stats;
    entries_visited_ += index_->ScanRange(
        seg.lo, seg.hi,
        [this](uint64_t, uint64_t rid) { row_ids_.push_back(rid); },
        &sweep_stats);
    nodes_per_sweep_.push_back(sweep_stats.nodes_visited);
    nodes_visited_ += sweep_stats.nodes_visited;
  }
  mutable_stats()->entries_visited += entries_visited_;
  mutable_stats()->nodes_visited += nodes_visited_;
  return Status::OK();
}

Result<bool> IndexRangeScanOp::NextImpl(Row* out) {
  if (next_ >= row_ids_.size()) return false;
  *out = table_->row(row_ids_[next_++]);
  return true;
}

Result<bool> FilterOp::NextImpl(Row* out) {
  while (true) {
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    MOPE_ASSIGN_OR_RETURN(bool pass, pred_(*out));
    if (pass) return true;
  }
}

Result<bool> ProjectOp::NextImpl(Row* out) {
  Row row;
  MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
  if (!has) return false;
  out->clear();
  out->reserve(columns_.size());
  for (size_t col : columns_) {
    if (col >= row.size()) {
      return Status::Internal("projection column out of range");
    }
    out->push_back(std::move(row[col]));
  }
  return true;
}

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> left,
                       std::unique_ptr<Operator> right, size_t left_key_col,
                       size_t right_key_col)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_col_(left_key_col),
      right_key_col_(right_key_col) {}

Status HashJoinOp::OpenImpl() {
  MOPE_RETURN_NOT_OK(left_->Open());
  MOPE_RETURN_NOT_OK(right_->Open());
  build_.clear();
  probing_ = false;
  // Build phase over the right child.
  Row row;
  while (true) {
    auto has = right_->Next(&row);
    MOPE_RETURN_NOT_OK(has.status());
    if (!has.value()) break;
    if (right_key_col_ >= row.size() ||
        !std::holds_alternative<int64_t>(row[right_key_col_])) {
      return Status::InvalidArgument("join key must be an int column");
    }
    build_.emplace(std::get<int64_t>(row[right_key_col_]), row);
  }
  return Status::OK();
}

Result<bool> HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (probing_) {
      if (probe_range_.first != probe_range_.second) {
        *out = current_left_;
        const Row& right_row = probe_range_.first->second;
        out->insert(out->end(), right_row.begin(), right_row.end());
        ++probe_range_.first;
        return true;
      }
      probing_ = false;
    }
    MOPE_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    if (left_key_col_ >= current_left_.size() ||
        !std::holds_alternative<int64_t>(current_left_[left_key_col_])) {
      return Status::InvalidArgument("join key must be an int column");
    }
    probe_range_ =
        build_.equal_range(std::get<int64_t>(current_left_[left_key_col_]));
    probing_ = true;
  }
}

namespace {

/// Three-way value comparison for sorting: numbers before strings; numbers
/// compare with promotion, strings lexicographically.
int CompareForSort(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) return a_str ? 1 : -1;
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  const double da = std::holds_alternative<int64_t>(a)
                        ? static_cast<double>(std::get<int64_t>(a))
                        : std::get<double>(a);
  const double db = std::holds_alternative<int64_t>(b)
                        ? static_cast<double>(std::get<int64_t>(b))
                        : std::get<double>(b);
  return da < db ? -1 : (da == db ? 0 : 1);
}

}  // namespace

Status SortOp::OpenImpl() {
  MOPE_ASSIGN_OR_RETURN(rows_, Collect(child_.get()));
  next_ = 0;
  for (const SortKey& key : keys_) {
    if (rows_.empty()) break;
    if (key.column >= rows_.front().size()) {
      return Status::InvalidArgument("sort column out of range");
    }
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& key : keys_) {
                       const int cmp =
                           CompareForSort(a[key.column], b[key.column]);
                       if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = rows_[next_++];
  return true;
}

AggregateOp::AggregateOp(std::unique_ptr<Operator> child,
                         std::vector<AggSpec> aggs)
    : child_(std::move(child)), aggs_(std::move(aggs)) {}

AggregateOp::AggregateOp(std::unique_ptr<Operator> child, size_t group_by_col,
                         std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      aggs_(std::move(aggs)),
      has_group_by_(true),
      group_by_col_(group_by_col) {}

Row AggregateOp::Finalize(int64_t group_key,
                          const std::vector<AggState>& states) const {
  Row out;
  out.reserve(aggs_.size() + (has_group_by_ ? 1 : 0));
  if (has_group_by_) out.emplace_back(group_key);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs_[i].kind) {
      case AggKind::kCount:
        out.emplace_back(static_cast<int64_t>(st.count));
        break;
      case AggKind::kSum:
        out.emplace_back(st.sum);
        break;
      case AggKind::kAvg:
        out.emplace_back(st.count == 0 ? 0.0
                                       : st.sum / static_cast<double>(st.count));
        break;
      case AggKind::kMin:
        out.emplace_back(st.seen ? st.min : 0.0);
        break;
      case AggKind::kMax:
        out.emplace_back(st.seen ? st.max : 0.0);
        break;
    }
  }
  return out;
}

Status AggregateOp::OpenImpl() {
  MOPE_RETURN_NOT_OK(child_->Open());
  results_.clear();
  next_ = 0;

  std::map<int64_t, std::vector<AggState>> groups;
  std::vector<AggState> scalar(aggs_.size());

  Row row;
  while (true) {
    auto has = child_->Next(&row);
    MOPE_RETURN_NOT_OK(has.status());
    if (!has.value()) break;

    std::vector<AggState>* states = &scalar;
    int64_t key = 0;
    if (has_group_by_) {
      if (group_by_col_ >= row.size() ||
          !std::holds_alternative<int64_t>(row[group_by_col_])) {
        return Status::InvalidArgument("group-by column must be int");
      }
      key = std::get<int64_t>(row[group_by_col_]);
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) it->second.resize(aggs_.size());
      states = &it->second;
    }

    for (size_t i = 0; i < aggs_.size(); ++i) {
      AggState& st = (*states)[i];
      ++st.count;
      if (aggs_[i].kind == AggKind::kCount) continue;
      if (!aggs_[i].extract) {
        return Status::InvalidArgument("aggregate needs a value extractor");
      }
      auto v = aggs_[i].extract(row);
      MOPE_RETURN_NOT_OK(v.status());
      st.sum += v.value();
      if (!st.seen || v.value() < st.min) st.min = v.value();
      if (!st.seen || v.value() > st.max) st.max = v.value();
      st.seen = true;
    }
  }

  if (has_group_by_) {
    for (const auto& [key, states] : groups) {
      results_.push_back(Finalize(key, states));
    }
  } else {
    // Scalar aggregation yields one row even over empty input (COUNT = 0).
    results_.push_back(Finalize(0, scalar));
  }
  return Status::OK();
}

Result<bool> AggregateOp::NextImpl(Row* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_++];
  return true;
}

}  // namespace mope::engine
