#include "engine/executor.h"

#include <algorithm>

namespace mope::engine {

Result<std::vector<Row>> Collect(Operator* op) {
  MOPE_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    MOPE_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Segment> CoalesceSegments(std::vector<Segment> segments) {
  if (segments.empty()) return segments;
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  std::vector<Segment> merged;
  merged.push_back(segments.front());
  for (size_t i = 1; i < segments.size(); ++i) {
    Segment& last = merged.back();
    // Merge overlapping or exactly-adjacent segments.
    if (segments[i].lo <= last.hi || segments[i].lo == last.hi + 1) {
      last.hi = std::max(last.hi, segments[i].hi);
    } else {
      merged.push_back(segments[i]);
    }
  }
  return merged;
}

Status SeqScanOp::Open() {
  next_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOp::Next(Row* out) {
  if (next_ >= table_->row_count()) return false;
  *out = table_->row(next_++);
  return true;
}

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const BPlusTree* index,
                                   std::vector<Segment> segments)
    : table_(table),
      index_(index),
      segments_(CoalesceSegments(std::move(segments))) {}

Status IndexRangeScanOp::Open() {
  row_ids_.clear();
  next_ = 0;
  entries_visited_ = 0;
  nodes_visited_ = 0;
  engine::BPlusTree::ScanStats scan_stats;
  for (const Segment& seg : segments_) {
    entries_visited_ += index_->ScanRange(
        seg.lo, seg.hi,
        [this](uint64_t, uint64_t rid) { row_ids_.push_back(rid); },
        &scan_stats);
  }
  nodes_visited_ = scan_stats.nodes_visited;
  return Status::OK();
}

Result<bool> IndexRangeScanOp::Next(Row* out) {
  if (next_ >= row_ids_.size()) return false;
  *out = table_->row(row_ids_[next_++]);
  return true;
}

Result<bool> FilterOp::Next(Row* out) {
  while (true) {
    MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    MOPE_ASSIGN_OR_RETURN(bool pass, pred_(*out));
    if (pass) return true;
  }
}

Result<bool> ProjectOp::Next(Row* out) {
  Row row;
  MOPE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
  if (!has) return false;
  out->clear();
  out->reserve(columns_.size());
  for (size_t col : columns_) {
    if (col >= row.size()) {
      return Status::Internal("projection column out of range");
    }
    out->push_back(std::move(row[col]));
  }
  return true;
}

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> left,
                       std::unique_ptr<Operator> right, size_t left_key_col,
                       size_t right_key_col)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_col_(left_key_col),
      right_key_col_(right_key_col) {}

Status HashJoinOp::Open() {
  MOPE_RETURN_NOT_OK(left_->Open());
  MOPE_RETURN_NOT_OK(right_->Open());
  build_.clear();
  probing_ = false;
  // Build phase over the right child.
  Row row;
  while (true) {
    auto has = right_->Next(&row);
    MOPE_RETURN_NOT_OK(has.status());
    if (!has.value()) break;
    if (right_key_col_ >= row.size() ||
        !std::holds_alternative<int64_t>(row[right_key_col_])) {
      return Status::InvalidArgument("join key must be an int column");
    }
    build_.emplace(std::get<int64_t>(row[right_key_col_]), row);
  }
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* out) {
  while (true) {
    if (probing_) {
      if (probe_range_.first != probe_range_.second) {
        *out = current_left_;
        const Row& right_row = probe_range_.first->second;
        out->insert(out->end(), right_row.begin(), right_row.end());
        ++probe_range_.first;
        return true;
      }
      probing_ = false;
    }
    MOPE_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    if (left_key_col_ >= current_left_.size() ||
        !std::holds_alternative<int64_t>(current_left_[left_key_col_])) {
      return Status::InvalidArgument("join key must be an int column");
    }
    probe_range_ =
        build_.equal_range(std::get<int64_t>(current_left_[left_key_col_]));
    probing_ = true;
  }
}

namespace {

/// Three-way value comparison for sorting: numbers before strings; numbers
/// compare with promotion, strings lexicographically.
int CompareForSort(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) return a_str ? 1 : -1;
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  const double da = std::holds_alternative<int64_t>(a)
                        ? static_cast<double>(std::get<int64_t>(a))
                        : std::get<double>(a);
  const double db = std::holds_alternative<int64_t>(b)
                        ? static_cast<double>(std::get<int64_t>(b))
                        : std::get<double>(b);
  return da < db ? -1 : (da == db ? 0 : 1);
}

}  // namespace

Status SortOp::Open() {
  MOPE_ASSIGN_OR_RETURN(rows_, Collect(child_.get()));
  next_ = 0;
  for (const SortKey& key : keys_) {
    if (rows_.empty()) break;
    if (key.column >= rows_.front().size()) {
      return Status::InvalidArgument("sort column out of range");
    }
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& key : keys_) {
                       const int cmp =
                           CompareForSort(a[key.column], b[key.column]);
                       if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::Next(Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = rows_[next_++];
  return true;
}

AggregateOp::AggregateOp(std::unique_ptr<Operator> child,
                         std::vector<AggSpec> aggs)
    : child_(std::move(child)), aggs_(std::move(aggs)) {}

AggregateOp::AggregateOp(std::unique_ptr<Operator> child, size_t group_by_col,
                         std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      aggs_(std::move(aggs)),
      has_group_by_(true),
      group_by_col_(group_by_col) {}

Row AggregateOp::Finalize(int64_t group_key,
                          const std::vector<AggState>& states) const {
  Row out;
  out.reserve(aggs_.size() + (has_group_by_ ? 1 : 0));
  if (has_group_by_) out.emplace_back(group_key);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs_[i].kind) {
      case AggKind::kCount:
        out.emplace_back(static_cast<int64_t>(st.count));
        break;
      case AggKind::kSum:
        out.emplace_back(st.sum);
        break;
      case AggKind::kAvg:
        out.emplace_back(st.count == 0 ? 0.0
                                       : st.sum / static_cast<double>(st.count));
        break;
      case AggKind::kMin:
        out.emplace_back(st.seen ? st.min : 0.0);
        break;
      case AggKind::kMax:
        out.emplace_back(st.seen ? st.max : 0.0);
        break;
    }
  }
  return out;
}

Status AggregateOp::Open() {
  MOPE_RETURN_NOT_OK(child_->Open());
  results_.clear();
  next_ = 0;

  std::map<int64_t, std::vector<AggState>> groups;
  std::vector<AggState> scalar(aggs_.size());

  Row row;
  while (true) {
    auto has = child_->Next(&row);
    MOPE_RETURN_NOT_OK(has.status());
    if (!has.value()) break;

    std::vector<AggState>* states = &scalar;
    int64_t key = 0;
    if (has_group_by_) {
      if (group_by_col_ >= row.size() ||
          !std::holds_alternative<int64_t>(row[group_by_col_])) {
        return Status::InvalidArgument("group-by column must be int");
      }
      key = std::get<int64_t>(row[group_by_col_]);
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) it->second.resize(aggs_.size());
      states = &it->second;
    }

    for (size_t i = 0; i < aggs_.size(); ++i) {
      AggState& st = (*states)[i];
      ++st.count;
      if (aggs_[i].kind == AggKind::kCount) continue;
      if (!aggs_[i].extract) {
        return Status::InvalidArgument("aggregate needs a value extractor");
      }
      auto v = aggs_[i].extract(row);
      MOPE_RETURN_NOT_OK(v.status());
      st.sum += v.value();
      if (!st.seen || v.value() < st.min) st.min = v.value();
      if (!st.seen || v.value() > st.max) st.max = v.value();
      st.seen = true;
    }
  }

  if (has_group_by_) {
    for (const auto& [key, states] : groups) {
      results_.push_back(Finalize(key, states));
    }
  } else {
    // Scalar aggregation yields one row even over empty input (COUNT = 0).
    results_.push_back(Finalize(0, scalar));
  }
  return Status::OK();
}

Result<bool> AggregateOp::Next(Row* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_++];
  return true;
}

}  // namespace mope::engine
