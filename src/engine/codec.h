#ifndef MOPE_ENGINE_CODEC_H_
#define MOPE_ENGINE_CODEC_H_

/// \file codec.h
/// Little-endian binary encoding of the engine's value types.
///
/// One codec, two consumers: the catalog snapshot format (engine/snapshot.h)
/// and the client/server wire protocol (net/wire.h) serialize `Value`s,
/// `Row`s and `Schema`s through these helpers, so a row laid down in a
/// snapshot and a row shipped over the wire are byte-identical. Writers are
/// infallible appends; the reader returns Corruption for every malformed
/// input (truncation, bad tags, out-of-bounds lengths) — it never aborts,
/// because both consumers decode bytes from untrusted media.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/table.h"

namespace mope::engine {

// --- Writers (append to `out`) --------------------------------------------

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);

/// u64 length prefix + raw bytes.
void PutString(std::string* out, const std::string& s);

/// 1-byte type tag (== ValueType) + payload: u64 for ints, IEEE-754 bits for
/// doubles, length-prefixed bytes for strings.
void PutValue(std::string* out, const Value& v);

// --- Reader ---------------------------------------------------------------

/// Sequential decoder over a byte buffer. Every accessor bounds-checks and
/// returns Corruption on truncated or malformed input; `context` names the
/// medium ("snapshot", "wire frame") in error messages.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, const char* context = "buffer")
      : bytes_(bytes), context_(context) {}

  Result<uint8_t> Byte();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::string> String();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Truncated() const {
    return Status::Corruption(std::string(context_) + " truncated");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  const char* context_;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_CODEC_H_
