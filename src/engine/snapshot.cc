#include "engine/snapshot.h"

#include <cstring>

#include "engine/codec.h"

namespace mope::engine {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'P', 'E', 'S', 'N', 'P', '1'};

}  // namespace

Result<std::string> SerializeCatalog(const Catalog& catalog) {
  std::string out(kMagic, sizeof(kMagic));
  const auto names = catalog.TableNames();
  PutU64(&out, names.size());
  for (const std::string& name : names) {
    MOPE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    PutString(&out, name);

    const Schema& schema = table->schema();
    PutU64(&out, schema.num_columns());
    for (const Column& col : schema.columns()) {
      PutString(&out, col.name);
      out.push_back(static_cast<char>(col.type));
    }

    std::string indexed;
    uint64_t index_count = 0;
    for (const Column& col : schema.columns()) {
      if (table->HasIndex(col.name)) {
        PutString(&indexed, col.name);
        ++index_count;
      }
    }
    PutU64(&out, index_count);
    out.append(indexed);

    PutU64(&out, table->row_count());
    for (RowId r = 0; r < table->row_count(); ++r) {
      for (const Value& v : table->row(r)) PutValue(&out, v);
    }
  }
  return out;
}

Result<Catalog> DeserializeCatalog(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a MOPE snapshot");
  }
  ByteReader reader(std::string_view(bytes).substr(sizeof(kMagic)),
                    "snapshot");

  Catalog catalog;
  MOPE_ASSIGN_OR_RETURN(uint64_t num_tables, reader.U64());
  for (uint64_t t = 0; t < num_tables; ++t) {
    MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());

    MOPE_ASSIGN_OR_RETURN(uint64_t num_columns, reader.U64());
    if (num_columns == 0 || num_columns > 4096) {
      return Status::Corruption("implausible column count in snapshot");
    }
    std::vector<Column> columns;
    for (uint64_t c = 0; c < num_columns; ++c) {
      Column col;
      MOPE_ASSIGN_OR_RETURN(col.name, reader.String());
      MOPE_ASSIGN_OR_RETURN(uint8_t type, reader.Byte());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::Corruption("unknown column type in snapshot");
      }
      col.type = static_cast<ValueType>(type);
      columns.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(uint64_t index_count, reader.U64());
    std::vector<std::string> indexed;
    for (uint64_t i = 0; i < index_count; ++i) {
      MOPE_ASSIGN_OR_RETURN(std::string col, reader.String());
      indexed.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(Table * table,
                          catalog.CreateTable(name, Schema(columns)));
    MOPE_ASSIGN_OR_RETURN(uint64_t num_rows, reader.U64());
    for (uint64_t r = 0; r < num_rows; ++r) {
      Row row;
      row.reserve(num_columns);
      for (uint64_t c = 0; c < num_columns; ++c) {
        MOPE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        row.push_back(std::move(v));
      }
      MOPE_RETURN_NOT_OK(table->Insert(std::move(row)).status());
    }
    // Indexes are rebuilt from the restored rows.
    for (const std::string& col : indexed) {
      MOPE_RETURN_NOT_OK(table->CreateIndex(col));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  return catalog;
}

Status ImportCatalog(const Catalog& src, Catalog* dst) {
  for (const std::string& name : src.TableNames()) {
    MOPE_ASSIGN_OR_RETURN(const Table* table, src.GetTable(name));
    MOPE_ASSIGN_OR_RETURN(Table * copy,
                          dst->CreateTable(name, table->schema()));
    for (RowId r = 0; r < table->row_count(); ++r) {
      MOPE_RETURN_NOT_OK(copy->Insert(table->row(r)).status());
    }
    for (const Column& col : table->schema().columns()) {
      if (table->HasIndex(col.name)) {
        MOPE_RETURN_NOT_OK(copy->CreateIndex(col.name));
      }
    }
  }
  return Status::OK();
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  return SaveCatalog(catalog, path, storage::Env::Posix());
}

Status SaveCatalog(const Catalog& catalog, const std::string& path,
                   storage::Env* env) {
  MOPE_ASSIGN_OR_RETURN(std::string bytes, SerializeCatalog(catalog));
  // Atomic replace: a crash leaves the previous snapshot, never a prefix.
  return env->WriteFileAtomic(path, bytes);
}

Result<Catalog> LoadCatalog(const std::string& path) {
  return LoadCatalog(path, storage::Env::Posix());
}

Result<Catalog> LoadCatalog(const std::string& path, storage::Env* env) {
  MOPE_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  return DeserializeCatalog(bytes);
}

}  // namespace mope::engine
