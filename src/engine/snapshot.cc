#include "engine/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "engine/codec.h"

namespace mope::engine {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'P', 'E', 'S', 'N', 'P', '1'};

}  // namespace

Result<std::string> SerializeCatalog(const Catalog& catalog) {
  std::string out(kMagic, sizeof(kMagic));
  const auto names = catalog.TableNames();
  PutU64(&out, names.size());
  for (const std::string& name : names) {
    MOPE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    PutString(&out, name);

    const Schema& schema = table->schema();
    PutU64(&out, schema.num_columns());
    for (const Column& col : schema.columns()) {
      PutString(&out, col.name);
      out.push_back(static_cast<char>(col.type));
    }

    std::string indexed;
    uint64_t index_count = 0;
    for (const Column& col : schema.columns()) {
      if (table->HasIndex(col.name)) {
        PutString(&indexed, col.name);
        ++index_count;
      }
    }
    PutU64(&out, index_count);
    out.append(indexed);

    PutU64(&out, table->row_count());
    for (RowId r = 0; r < table->row_count(); ++r) {
      for (const Value& v : table->row(r)) PutValue(&out, v);
    }
  }
  return out;
}

Result<Catalog> DeserializeCatalog(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a MOPE snapshot");
  }
  ByteReader reader(std::string_view(bytes).substr(sizeof(kMagic)),
                    "snapshot");

  Catalog catalog;
  MOPE_ASSIGN_OR_RETURN(uint64_t num_tables, reader.U64());
  for (uint64_t t = 0; t < num_tables; ++t) {
    MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());

    MOPE_ASSIGN_OR_RETURN(uint64_t num_columns, reader.U64());
    if (num_columns == 0 || num_columns > 4096) {
      return Status::Corruption("implausible column count in snapshot");
    }
    std::vector<Column> columns;
    for (uint64_t c = 0; c < num_columns; ++c) {
      Column col;
      MOPE_ASSIGN_OR_RETURN(col.name, reader.String());
      MOPE_ASSIGN_OR_RETURN(uint8_t type, reader.Byte());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::Corruption("unknown column type in snapshot");
      }
      col.type = static_cast<ValueType>(type);
      columns.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(uint64_t index_count, reader.U64());
    std::vector<std::string> indexed;
    for (uint64_t i = 0; i < index_count; ++i) {
      MOPE_ASSIGN_OR_RETURN(std::string col, reader.String());
      indexed.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(Table * table,
                          catalog.CreateTable(name, Schema(columns)));
    MOPE_ASSIGN_OR_RETURN(uint64_t num_rows, reader.U64());
    for (uint64_t r = 0; r < num_rows; ++r) {
      Row row;
      row.reserve(num_columns);
      for (uint64_t c = 0; c < num_columns; ++c) {
        MOPE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        row.push_back(std::move(v));
      }
      MOPE_RETURN_NOT_OK(table->Insert(std::move(row)).status());
    }
    // Indexes are rebuilt from the restored rows.
    for (const std::string& col : indexed) {
      MOPE_RETURN_NOT_OK(table->CreateIndex(col));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  MOPE_ASSIGN_OR_RETURN(std::string bytes, SerializeCatalog(catalog));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

Result<Catalog> LoadCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeCatalog(buffer.str());
}

}  // namespace mope::engine
