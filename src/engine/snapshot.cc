#include "engine/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace mope::engine {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'P', 'E', 'S', 'N', 'P', '1'};

// --- Writer helpers -------------------------------------------------------

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      out->push_back(0);
      PutU64(out, static_cast<uint64_t>(std::get<int64_t>(v)));
      break;
    case ValueType::kDouble: {
      out->push_back(1);
      uint64_t bits;
      const double d = std::get<double>(v);
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      out->push_back(2);
      PutString(out, std::get<std::string>(v));
      break;
  }
}

// --- Reader helpers -------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Status::Corruption("snapshot truncated");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<uint8_t> Byte() {
    if (pos_ >= bytes_.size()) {
      return Status::Corruption("snapshot truncated");
    }
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  Result<std::string> String() {
    MOPE_ASSIGN_OR_RETURN(uint64_t len, U64());
    if (len > bytes_.size() - pos_) {
      return Status::Corruption("snapshot string length out of bounds");
    }
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  Result<Value> ReadValue() {
    MOPE_ASSIGN_OR_RETURN(uint8_t tag, Byte());
    Value out;
    switch (tag) {
      case 0: {
        MOPE_ASSIGN_OR_RETURN(uint64_t bits, U64());
        out = static_cast<int64_t>(bits);
        break;
      }
      case 1: {
        MOPE_ASSIGN_OR_RETURN(uint64_t bits, U64());
        double d;
        std::memcpy(&d, &bits, 8);
        out = d;
        break;
      }
      case 2: {
        MOPE_ASSIGN_OR_RETURN(std::string s, String());
        out = std::move(s);
        break;
      }
      default:
        return Status::Corruption("unknown value tag in snapshot");
    }
    return out;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> SerializeCatalog(const Catalog& catalog) {
  std::string out(kMagic, sizeof(kMagic));
  const auto names = catalog.TableNames();
  PutU64(&out, names.size());
  for (const std::string& name : names) {
    MOPE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    PutString(&out, name);

    const Schema& schema = table->schema();
    PutU64(&out, schema.num_columns());
    for (const Column& col : schema.columns()) {
      PutString(&out, col.name);
      out.push_back(static_cast<char>(col.type));
    }

    std::string indexed;
    uint64_t index_count = 0;
    for (const Column& col : schema.columns()) {
      if (table->HasIndex(col.name)) {
        PutString(&indexed, col.name);
        ++index_count;
      }
    }
    PutU64(&out, index_count);
    out.append(indexed);

    PutU64(&out, table->row_count());
    for (RowId r = 0; r < table->row_count(); ++r) {
      for (const Value& v : table->row(r)) PutValue(&out, v);
    }
  }
  return out;
}

Result<Catalog> DeserializeCatalog(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a MOPE snapshot");
  }
  const std::string body = bytes.substr(sizeof(kMagic));
  Reader reader(body);

  Catalog catalog;
  MOPE_ASSIGN_OR_RETURN(uint64_t num_tables, reader.U64());
  for (uint64_t t = 0; t < num_tables; ++t) {
    MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());

    MOPE_ASSIGN_OR_RETURN(uint64_t num_columns, reader.U64());
    if (num_columns == 0 || num_columns > 4096) {
      return Status::Corruption("implausible column count in snapshot");
    }
    std::vector<Column> columns;
    for (uint64_t c = 0; c < num_columns; ++c) {
      Column col;
      MOPE_ASSIGN_OR_RETURN(col.name, reader.String());
      MOPE_ASSIGN_OR_RETURN(uint8_t type, reader.Byte());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::Corruption("unknown column type in snapshot");
      }
      col.type = static_cast<ValueType>(type);
      columns.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(uint64_t index_count, reader.U64());
    std::vector<std::string> indexed;
    for (uint64_t i = 0; i < index_count; ++i) {
      MOPE_ASSIGN_OR_RETURN(std::string col, reader.String());
      indexed.push_back(std::move(col));
    }

    MOPE_ASSIGN_OR_RETURN(Table * table,
                          catalog.CreateTable(name, Schema(columns)));
    MOPE_ASSIGN_OR_RETURN(uint64_t num_rows, reader.U64());
    for (uint64_t r = 0; r < num_rows; ++r) {
      Row row;
      row.reserve(num_columns);
      for (uint64_t c = 0; c < num_columns; ++c) {
        MOPE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        row.push_back(std::move(v));
      }
      MOPE_RETURN_NOT_OK(table->Insert(std::move(row)).status());
    }
    // Indexes are rebuilt from the restored rows.
    for (const std::string& col : indexed) {
      MOPE_RETURN_NOT_OK(table->CreateIndex(col));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  MOPE_ASSIGN_OR_RETURN(std::string bytes, SerializeCatalog(catalog));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

Result<Catalog> LoadCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeCatalog(buffer.str());
}

}  // namespace mope::engine
