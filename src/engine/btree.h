#ifndef MOPE_ENGINE_BTREE_H_
#define MOPE_ENGINE_BTREE_H_

/// \file btree.h
/// In-memory B+-tree from uint64 keys to uint64 row ids.
///
/// This is the secondary index the database server builds over the MOPE
/// ciphertext column — exactly the structure the paper points at when it
/// argues OPE/MOPE needs no DBMS modifications ("the database system can
/// still build index structures, like B+-trees, on the encrypted
/// attributes"). Duplicate keys are supported — deterministic encryption
/// maps equal plaintexts to equal ciphertexts, so e.g. thousands of TPC-H
/// rows share each date's ciphertext. Entries are compared as (key, row_id)
/// pairs; a given pair must be inserted at most once (a row is indexed once
/// per index — the Table layer guarantees this). Deletion rebalances via
/// borrow/merge so the occupancy invariant holds under mixed workloads.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"

namespace mope::engine {

class BPlusTree {
 public:
  /// Maximum number of keys per node (fan-out - 1 for internals).
  static constexpr int kMaxKeys = 64;
  static constexpr int kMinKeys = kMaxKeys / 2;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts an entry. Precondition: the (key, row_id) pair is not already
  /// present (duplicate *keys* with distinct row ids are fine).
  void Insert(uint64_t key, uint64_t row_id);

  /// Removes one entry matching (key, row_id); false when absent.
  bool Erase(uint64_t key, uint64_t row_id);

  /// Number of entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (1 for a single leaf).
  int height() const { return height_; }

  /// Per-sweep cost accounting, filled by the instrumented ScanRange
  /// overload. Nodes are what a disk-backed DBMS would pay I/O for, so this
  /// is the number the server-side cost model (and stats endpoint) reports.
  struct ScanStats {
    size_t nodes_visited = 0;  ///< Leaf nodes touched (descent excluded).
  };

  /// Calls fn(key, row_id) for every entry with lo <= key <= hi, in
  /// ascending key order. Returns the number of entries visited.
  size_t ScanRange(uint64_t lo, uint64_t hi,
                   const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// As above, additionally accumulating (not resetting) node-visit counts
  /// into `*stats`.
  size_t ScanRange(uint64_t lo, uint64_t hi,
                   const std::function<void(uint64_t, uint64_t)>& fn,
                   ScanStats* stats) const;

  /// Counts entries in [lo, hi] without invoking a callback.
  size_t CountRange(uint64_t lo, uint64_t hi) const;

  /// Verifies structural invariants (ordering, occupancy, linked leaves);
  /// used by property tests. Returns Internal on violation.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct InsertResult;

  Node* FindLeaf(uint64_t key) const;
  InsertResult InsertRec(Node* node, uint64_t key, uint64_t row_id);
  bool EraseRec(Node* node, uint64_t key, uint64_t row_id);
  void RebalanceChild(Node* parent, int child_idx);
  void FreeTree(Node* node);
  Status CheckNode(const Node* node, int depth, uint64_t lo_bound,
                   bool has_lo, uint64_t hi_bound, bool has_hi,
                   const Node** leftmost_leaf) const;

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_BTREE_H_
