#include "engine/server.h"

#include <array>

namespace mope::engine {

Result<std::vector<Segment>> DbServer::PrepareSegments(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges, const Table** table_out,
    const BPlusTree** index_out) {
  MOPE_ASSIGN_OR_RETURN(Table * tbl, catalog_.GetTable(table));
  MOPE_ASSIGN_OR_RETURN(const BPlusTree* index, tbl->GetIndex(column));
  *table_out = tbl;
  *index_out = index;

  std::vector<Segment> segments;
  segments.reserve(ranges.size());
  for (const ModularInterval& range : ranges) {
    std::array<Segment, 2> parts;
    const int n = range.ToSegments(&parts);
    for (int i = 0; i < n; ++i) segments.push_back(parts[i]);
  }

  ++stats_.batches_received;
  stats_.ranges_received += ranges.size();
  return segments;
}

Result<std::vector<Row>> DbServer::ExecuteRangeBatch(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  IndexRangeScanOp scan(tbl, index, std::move(segments));
  MOPE_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(&scan));
  stats_.segments_scanned += scan.segments_scanned();
  stats_.entries_visited += scan.entries_visited();
  stats_.rows_returned += rows.size();
  return rows;
}

Result<std::vector<std::pair<RowId, Row>>> DbServer::ExecuteRangeBatchWithIds(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  std::vector<std::pair<RowId, Row>> rows;
  for (const Segment& seg : CoalesceSegments(std::move(segments))) {
    stats_.entries_visited += index->ScanRange(
        seg.lo, seg.hi, [&rows, tbl](uint64_t, uint64_t rid) {
          rows.emplace_back(rid, tbl->row(rid));
        });
    ++stats_.segments_scanned;
  }
  stats_.rows_returned += rows.size();
  return rows;
}

Result<uint64_t> DbServer::CountRangeBatch(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  uint64_t count = 0;
  for (const Segment& seg : CoalesceSegments(std::move(segments))) {
    count += index->ScanRange(seg.lo, seg.hi, [](uint64_t, uint64_t) {});
    ++stats_.segments_scanned;
  }
  stats_.entries_visited += count;
  stats_.rows_returned += count;
  return count;
}

Result<std::vector<Row>> DbServer::ExecutePlan(Operator* plan) {
  MOPE_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(plan));
  ++stats_.batches_received;
  stats_.rows_returned += rows.size();
  return rows;
}

}  // namespace mope::engine
