#include "engine/server.h"

#include <array>

namespace mope::engine {

DbServer::DbServer()
    : catalog_(std::make_unique<Catalog>()),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      batches_received_(metrics_->GetCounter("engine.batches_received")),
      ranges_received_(metrics_->GetCounter("engine.ranges_received")),
      segments_scanned_(metrics_->GetCounter("engine.segments_scanned")),
      entries_visited_(metrics_->GetCounter("engine.entries_visited")),
      index_nodes_visited_(metrics_->GetCounter("engine.index_nodes_visited")),
      rows_returned_(metrics_->GetCounter("engine.rows_returned")),
      bytes_received_(metrics_->GetCounter("engine.bytes_received")),
      bytes_sent_(metrics_->GetCounter("engine.bytes_sent")),
      batch_ranges_hist_(metrics_->GetHistogram("engine.batch_ranges")) {}

const std::vector<std::string>& ServerProfileProbe::CounterNames() {
  // Kept small and stable: the engine work counters plus the storage-layer
  // cost drivers. GetCounter creates absent ones at zero, so a server
  // without attached storage still reports the storage fields (as zeros).
  static const std::vector<std::string> kNames = {
      "engine.batches_received", "engine.segments_scanned",
      "engine.entries_visited",  "engine.index_nodes_visited",
      "engine.rows_returned",    "storage.pool.misses",
      "storage.wal.bytes",       "storage.wal.records",
  };
  return kNames;
}

ServerProfileProbe::ServerProfileProbe(DbServer* server) {
  obs::MetricsRegistry* metrics = server->metrics();
  baseline_.reserve(CounterNames().size());
  for (const std::string& name : CounterNames()) {
    obs::Counter* counter = metrics->GetCounter(name);
    baseline_.emplace_back(counter, counter->Value());
  }
}

std::vector<std::pair<std::string, uint64_t>> ServerProfileProbe::Delta()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(baseline_.size());
  for (size_t i = 0; i < baseline_.size(); ++i) {
    out.emplace_back("srv." + CounterNames()[i],
                     baseline_[i].first->Value() - baseline_[i].second);
  }
  return out;
}

ServerStats DbServer::stats() const {
  ServerStats s;
  s.batches_received = batches_received_->Value();
  s.ranges_received = ranges_received_->Value();
  s.segments_scanned = segments_scanned_->Value();
  s.entries_visited = entries_visited_->Value();
  s.index_nodes_visited = index_nodes_visited_->Value();
  s.rows_returned = rows_returned_->Value();
  s.bytes_received = bytes_received_->Value();
  s.bytes_sent = bytes_sent_->Value();
  return s;
}

Result<std::vector<Segment>> DbServer::PrepareSegments(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges, const Table** table_out,
    const BPlusTree** index_out) {
  MOPE_ASSIGN_OR_RETURN(Table * tbl, catalog_->GetTable(table));
  MOPE_ASSIGN_OR_RETURN(const BPlusTree* index, tbl->GetIndex(column));
  *table_out = tbl;
  *index_out = index;

  std::vector<Segment> segments;
  segments.reserve(ranges.size());
  for (const ModularInterval& range : ranges) {
    std::array<Segment, 2> parts;
    const int n = range.ToSegments(&parts);
    for (int i = 0; i < n; ++i) segments.push_back(parts[i]);
  }

  batches_received_->Increment();
  ranges_received_->Increment(ranges.size());
  batch_ranges_hist_->Observe(ranges.size());
  if (leakage_auditor_ != nullptr) {
    for (const ModularInterval& range : ranges) {
      leakage_auditor_->ObserveStart(range.start());
    }
    leakage_auditor_->Publish();
  }
  return segments;
}

Status DbServer::OpenStorage(const std::string& data_dir,
                             const DurableCatalog::Options& options) {
  if (durable_ != nullptr) {
    return Status::InvalidArgument("storage is already attached");
  }
  DurableCatalog::Options opts = options;
  if (opts.metrics == nullptr) opts.metrics = metrics_.get();
  MOPE_ASSIGN_OR_RETURN(durable_,
                        DurableCatalog::Open(data_dir, catalog_.get(), opts));
  return Status::OK();
}

Status DbServer::CheckpointStorage() {
  if (durable_ == nullptr) {
    return Status::InvalidArgument("no storage attached");
  }
  return durable_->Checkpoint();
}

Status DbServer::SyncStorage() {
  if (durable_ == nullptr) {
    return Status::InvalidArgument("no storage attached");
  }
  return durable_->Sync();
}

Status DbServer::EnableLeakageAudit(const obs::LeakageAuditConfig& config) {
  MOPE_ASSIGN_OR_RETURN(leakage_auditor_,
                        obs::LeakageAuditor::Create(config, metrics_.get()));
  return Status();
}

Result<std::vector<Row>> DbServer::ExecuteRangeBatch(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  IndexRangeScanOp scan(tbl, index, std::move(segments));
  MOPE_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(&scan));
  segments_scanned_->Increment(scan.segments_scanned());
  entries_visited_->Increment(scan.entries_visited());
  index_nodes_visited_->Increment(scan.nodes_visited());
  rows_returned_->Increment(rows.size());
  return rows;
}

Result<std::vector<std::pair<RowId, Row>>> DbServer::ExecuteRangeBatchWithIds(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  std::vector<std::pair<RowId, Row>> rows;
  for (const Segment& seg : CoalesceSegments(std::move(segments))) {
    // Fresh stats per executed sweep so every merged range's node visits
    // are attributed as they happen — the trace-scoped delta snapshots that
    // EXPLAIN ANALYZE takes around a request see the full per-sweep cost,
    // not just the first range's.
    BPlusTree::ScanStats sweep_stats;
    entries_visited_->Increment(index->ScanRange(
        seg.lo, seg.hi,
        [&rows, tbl](uint64_t, uint64_t rid) {
          rows.emplace_back(rid, tbl->row(rid));
        },
        &sweep_stats));
    segments_scanned_->Increment();
    index_nodes_visited_->Increment(sweep_stats.nodes_visited);
  }
  rows_returned_->Increment(rows.size());
  return rows;
}

Result<uint64_t> DbServer::CountRangeBatch(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  const Table* tbl = nullptr;
  const BPlusTree* index = nullptr;
  MOPE_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        PrepareSegments(table, column, ranges, &tbl, &index));

  uint64_t count = 0;
  for (const Segment& seg : CoalesceSegments(std::move(segments))) {
    BPlusTree::ScanStats sweep_stats;
    count += index->ScanRange(seg.lo, seg.hi, [](uint64_t, uint64_t) {},
                              &sweep_stats);
    segments_scanned_->Increment();
    index_nodes_visited_->Increment(sweep_stats.nodes_visited);
  }
  entries_visited_->Increment(count);
  rows_returned_->Increment(count);
  return count;
}

Result<std::vector<Row>> DbServer::ExecutePlan(Operator* plan) {
  MOPE_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(plan));
  batches_received_->Increment();
  rows_returned_->Increment(rows.size());
  // Profiled plans contribute per-operator-type latency/row distributions
  // to this server's /metrics; unprofiled ones skip out immediately.
  FoldOpStatsIntoRegistry(plan, metrics_.get());
  return rows;
}

}  // namespace mope::engine
