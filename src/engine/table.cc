#include "engine/table.h"

#include <utility>

namespace mope::engine {

ValueType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ValueType::kInt;
  if (std::holds_alternative<double>(v)) return ValueType::kDouble;
  return ValueType::kString;
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::to_string(std::get<double>(v));
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_[columns_[i].name] = i;
  }
  MOPE_CHECK(by_name_.size() == columns_.size(), "duplicate column names");
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

Status Schema::Validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema expects " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (TypeOf(row[i]) != columns_[i].type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     columns_[i].name + "'");
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  MOPE_RETURN_NOT_OK(schema_.Validate(row));
  // Validate every indexed column before touching any index: failing after a
  // partial index update would leave a dangling entry for a RowId that the
  // next successful insert then reuses.
  for (const auto& [col, index] : indexes_) {
    if (std::get<int64_t>(row[col]) < 0) {
      return Status::InvalidArgument("indexed column value must be >= 0");
    }
  }
  const RowId id = rows_.size();
  if (hooks_ != nullptr) {
    // Write-ahead: the row reaches the log and the heap page before memory.
    MOPE_RETURN_NOT_OK(hooks_->OnInsert(id, row));
  }
  for (auto& [col, index] : indexes_) {
    index->Insert(static_cast<uint64_t>(std::get<int64_t>(row[col])), id);
  }
  rows_.push_back(std::move(row));
  return id;
}

const Row& Table::row(RowId id) const {
  MOPE_CHECK(id < rows_.size(), "row id out of range");
  return rows_[id];
}

Status Table::UpdateValue(RowId id, size_t column, Value value) {
  if (id >= rows_.size()) {
    return Status::OutOfRange("row id out of range");
  }
  if (column >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (TypeOf(value) != schema_.column(column).type) {
    return Status::InvalidArgument("type mismatch in column '" +
                                   schema_.column(column).name + "'");
  }
  const auto it = indexes_.find(column);
  if (it != indexes_.end() && std::get<int64_t>(value) < 0) {
    return Status::InvalidArgument("indexed column value must be >= 0");
  }
  if (hooks_ != nullptr) {
    MOPE_RETURN_NOT_OK(hooks_->OnUpdateValue(id, column, value));
  }
  if (it != indexes_.end()) {
    const int64_t new_key = std::get<int64_t>(value);
    const int64_t old_key = std::get<int64_t>(rows_[id][column]);
    if (!it->second->Erase(static_cast<uint64_t>(old_key), id)) {
      return Status::Internal("index entry missing during update");
    }
    it->second->Insert(static_cast<uint64_t>(new_key), id);
  }
  rows_[id][column] = std::move(value);
  return Status::OK();
}

Status Table::CreateIndex(const std::string& column_name) {
  MOPE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column_name));
  if (schema_.column(col).type != ValueType::kInt) {
    return Status::NotSupported("indexes are supported on int columns only");
  }
  if (indexes_.contains(col)) {
    return Status::AlreadyExists("index on '" + column_name + "' exists");
  }
  // Validate every existing row before the hook fires: a durable
  // create-index record must never describe an index the build then
  // abandons halfway.
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (std::get<int64_t>(rows_[id][col]) < 0) {
      return Status::InvalidArgument("indexed column value must be >= 0");
    }
  }
  if (hooks_ != nullptr) {
    MOPE_RETURN_NOT_OK(hooks_->OnCreateIndex(col));
  }
  auto index = std::make_unique<BPlusTree>();
  for (RowId id = 0; id < rows_.size(); ++id) {
    index->Insert(static_cast<uint64_t>(std::get<int64_t>(rows_[id][col])),
                  id);
  }
  indexes_[col] = std::move(index);
  return Status::OK();
}

Result<const BPlusTree*> Table::GetIndex(const std::string& column_name) const {
  MOPE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column_name));
  const auto it = indexes_.find(col);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on '" + column_name + "'");
  }
  return static_cast<const BPlusTree*>(it->second.get());
}

bool Table::HasIndex(const std::string& column_name) const {
  const auto col = schema_.IndexOf(column_name);
  return col.ok() && indexes_.contains(col.value());
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  if (hooks_ != nullptr) {
    MOPE_ASSIGN_OR_RETURN(TableDurabilityHooks * table_hooks,
                          hooks_->OnCreateTable(name, table->schema()));
    table->set_durability_hooks(table_hooks);
  }
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  if (!tables_.contains(name)) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (hooks_ != nullptr) {
    MOPE_RETURN_NOT_OK(hooks_->OnDropTable(name));
  }
  tables_.erase(name);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace mope::engine
