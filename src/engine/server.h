#ifndef MOPE_ENGINE_SERVER_H_
#define MOPE_ENGINE_SERVER_H_

/// \file server.h
/// The untrusted database server of the paper's architecture (Figure 4).
///
/// The server is an *unmodified* DBMS: it holds tables whose range-queryable
/// columns contain MOPE ciphertexts (plain integers from its point of view),
/// maintains ordinary B+-tree indexes over them, and answers batches of
/// (possibly wrap-around) range queries — including many ranges OR-ed into a
/// single request, which it answers with one shared coalesced index sweep
/// (the Section 5.1 multiple-query optimization). It never sees a key, a
/// plaintext, or which queries are real.
///
/// Accounting lives in a per-server obs::MetricsRegistry (the one the wire
/// protocol's stats endpoint serves). Every counter is atomic, so the stats
/// can be read — and wire bytes credited — from any thread without a lock;
/// the engine's *data* operations still require external serialization
/// (net::WireDispatcher provides it for the daemon).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/durability.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "obs/leakage.h"
#include "obs/registry.h"

namespace mope::engine {

/// Snapshot of the cumulative server-side counters (what a cloud provider
/// would bill). Plain values: read once, carry around freely. The live,
/// race-free storage is the server's metrics registry.
struct ServerStats {
  uint64_t batches_received = 0;  ///< Requests (one per server round trip).
  uint64_t ranges_received = 0;   ///< Individual range predicates seen.
  uint64_t segments_scanned = 0;  ///< Coalesced index sweeps performed.
  uint64_t entries_visited = 0;   ///< Index entries touched.
  uint64_t index_nodes_visited = 0;  ///< B+-tree leaf nodes touched.
  uint64_t rows_returned = 0;     ///< Result rows shipped back (bandwidth).
  uint64_t bytes_received = 0;    ///< Wire bytes in (0 for direct calls).
  uint64_t bytes_sent = 0;        ///< Wire bytes out (0 for direct calls).
};

class DbServer {
 public:
  DbServer();

  Catalog* catalog() { return catalog_.get(); }
  const Catalog& catalog() const { return *catalog_; }

  /// Attaches a disk-backed storage engine rooted at `data_dir`. On an
  /// existing directory this runs WAL redo + catalog recovery, repopulating
  /// this server's (must-be-empty) catalog; on a fresh one it just creates
  /// the files. Afterwards every catalog mutation is WAL-logged and applied
  /// to heap/index pages before it lands in memory; the pages hold the same
  /// MOPE ciphertexts the in-memory tables do, so the disk is inside the
  /// same trust boundary as the server's RAM. The storage `storage.*`
  /// counters land in this server's metrics registry (unless the options
  /// name another one). Call before serving starts; not thread-safe against
  /// concurrent queries.
  Status OpenStorage(const std::string& data_dir,
                     const DurableCatalog::Options& options = {});

  /// True after OpenStorage succeeded.
  bool has_storage() const { return durable_ != nullptr; }

  /// The durable catalog, or nullptr when OpenStorage was never called.
  DurableCatalog* durable_catalog() { return durable_.get(); }

  /// Flushes all pages + catalog blob and truncates the WAL. Requires
  /// writer quiescence (the daemon's dispatcher serializes writes).
  /// InvalidArgument when storage is not attached.
  Status CheckpointStorage();

  /// Group-commit barrier: all logged mutations become durable.
  /// InvalidArgument when storage is not attached.
  Status SyncStorage();

  /// Executes one batch of ciphertext range predicates (each an interval on
  /// the ciphertext space, wrapping allowed) against the index on `column`
  /// of `table`. All ranges in the batch share a single coalesced sweep and
  /// each qualifying row is returned exactly once.
  Result<std::vector<Row>> ExecuteRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges);

  /// Like ExecuteRangeBatch, but each row is returned together with its
  /// stable row id (DBMSes expose this as ctid/rowid); the proxy uses the
  /// ids to deduplicate rows that multiple overlapping requests returned.
  Result<std::vector<std::pair<RowId, Row>>> ExecuteRangeBatchWithIds(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges);

  /// Like ExecuteRangeBatch but only returns the number of qualifying rows
  /// (still updates the counters; used by benches that do not need rows).
  Result<uint64_t> CountRangeBatch(const std::string& table,
                                   const std::string& column,
                                   const std::vector<ModularInterval>& ranges);

  /// Runs an arbitrary operator tree (the SQL path uses this).
  Result<std::vector<Row>> ExecutePlan(Operator* plan);

  /// This server's metrics registry: the `engine.*` counters backing
  /// stats(), plus whatever the network layer (`net.server.*`) contributes.
  /// A live daemon serves exactly this over the wire (kStatsRequest).
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Consistent-enough snapshot of the engine counters (each counter is
  /// individually atomic; the set is not read under one lock).
  ServerStats stats() const;
  void ResetStats() { metrics_->ResetAll(); }

  /// Credits wire traffic against this server. Thread-safe (atomic
  /// counters); only the network layer calls it — a DirectConnection moves
  /// no bytes.
  void AddTransferBytes(uint64_t received, uint64_t sent) {
    bytes_received_->Increment(received);
    bytes_sent_->Increment(sent);
  }

  /// Turns on the live leakage auditor: from now on every range start this
  /// server observes (direct calls and the wire path both funnel through the
  /// same batch entry points) feeds the auditor, and its leakage.* gauges
  /// appear in metrics() — hence in the stats endpoint. Ciphertext-only by
  /// construction: the auditor gets the config's public parameters and the
  /// ciphertext stream, nothing else. Idempotent per server (second call
  /// replaces the auditor and its statistics).
  Status EnableLeakageAudit(const obs::LeakageAuditConfig& config);

  /// The auditor, or nullptr when auditing is off. The pointer is stable
  /// until the next EnableLeakageAudit call.
  obs::LeakageAuditor* leakage_auditor() { return leakage_auditor_.get(); }

 private:
  Result<std::vector<Segment>> PrepareSegments(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges, const Table** table_out,
      const BPlusTree** index_out);

  // Heap-held so DbServer stays movable (tests build servers in value-
  // returning factories) and so DurableCatalog's Catalog* plus the cached
  // handles below survive the move.
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  // Hot-path handles into *metrics_ (stable for the registry's lifetime).
  obs::Counter* batches_received_;
  obs::Counter* ranges_received_;
  obs::Counter* segments_scanned_;
  obs::Counter* entries_visited_;
  obs::Counter* index_nodes_visited_;
  obs::Counter* rows_returned_;
  obs::Counter* bytes_received_;
  obs::Counter* bytes_sent_;
  obs::ExpHistogram* batch_ranges_hist_;  ///< Ranges per received batch.
  // The live leakage auditor (see obs/leakage.h); null until enabled. Its
  // thread-safety contract is in its annotations (ObserveStart excludes the
  // auditor's own lock); the one thing the types can't say is that this
  // *pointer* is only written by EnableLeakageAudit before serving starts.
  std::unique_ptr<obs::LeakageAuditor> leakage_auditor_;
  // Declared after catalog_: the DurableCatalog destructor uninstalls its
  // hooks from the catalog's tables, so it must be destroyed first.
  std::unique_ptr<DurableCatalog> durable_;
};

/// Attributes one request's server-side resource consumption by delta: built
/// immediately before the engine call, it snapshots a fixed set of counters
/// from the server's metrics registry; Delta() afterwards yields the
/// differences as "srv."-prefixed name/value pairs. Zero deltas are included
/// so the profile's field set is identical on every request — the remote
/// EXPLAIN ANALYZE test compares an embedded profile to a TCP one field by
/// field. Single-threaded use around one request (the dispatcher serializes
/// data operations; DirectConnection is single-threaded by contract).
class ServerProfileProbe {
 public:
  explicit ServerProfileProbe(DbServer* server);

  /// Counter deltas since construction, name-ordered, zeros included.
  std::vector<std::pair<std::string, uint64_t>> Delta() const;

  /// The fixed counter set a probe attributes, in Delta() order and without
  /// the "srv." prefix (shared with tests and the /metrics reconciliation
  /// in smoke_remote.sh).
  static const std::vector<std::string>& CounterNames();

 private:
  std::vector<std::pair<obs::Counter*, uint64_t>> baseline_;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_SERVER_H_
