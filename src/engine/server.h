#ifndef MOPE_ENGINE_SERVER_H_
#define MOPE_ENGINE_SERVER_H_

/// \file server.h
/// The untrusted database server of the paper's architecture (Figure 4).
///
/// The server is an *unmodified* DBMS: it holds tables whose range-queryable
/// columns contain MOPE ciphertexts (plain integers from its point of view),
/// maintains ordinary B+-tree indexes over them, and answers batches of
/// (possibly wrap-around) range queries — including many ranges OR-ed into a
/// single request, which it answers with one shared coalesced index sweep
/// (the Section 5.1 multiple-query optimization). It never sees a key, a
/// plaintext, or which queries are real.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/table.h"

namespace mope::engine {

/// Cumulative server-side counters (what a cloud provider would bill).
struct ServerStats {
  uint64_t batches_received = 0;  ///< Requests (one per server round trip).
  uint64_t ranges_received = 0;   ///< Individual range predicates seen.
  uint64_t segments_scanned = 0;  ///< Coalesced index sweeps performed.
  uint64_t entries_visited = 0;   ///< Index entries touched.
  uint64_t rows_returned = 0;     ///< Result rows shipped back (bandwidth).
  uint64_t bytes_received = 0;    ///< Wire bytes in (0 for direct calls).
  uint64_t bytes_sent = 0;        ///< Wire bytes out (0 for direct calls).
};

class DbServer {
 public:
  DbServer() = default;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Executes one batch of ciphertext range predicates (each an interval on
  /// the ciphertext space, wrapping allowed) against the index on `column`
  /// of `table`. All ranges in the batch share a single coalesced sweep and
  /// each qualifying row is returned exactly once.
  Result<std::vector<Row>> ExecuteRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges);

  /// Like ExecuteRangeBatch, but each row is returned together with its
  /// stable row id (DBMSes expose this as ctid/rowid); the proxy uses the
  /// ids to deduplicate rows that multiple overlapping requests returned.
  Result<std::vector<std::pair<RowId, Row>>> ExecuteRangeBatchWithIds(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges);

  /// Like ExecuteRangeBatch but only returns the number of qualifying rows
  /// (still updates the counters; used by benches that do not need rows).
  Result<uint64_t> CountRangeBatch(const std::string& table,
                                   const std::string& column,
                                   const std::vector<ModularInterval>& ranges);

  /// Runs an arbitrary operator tree (the SQL path uses this).
  Result<std::vector<Row>> ExecutePlan(Operator* plan);

  const ServerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ServerStats{}; }

  /// Credits wire traffic against this server. Only the network layer calls
  /// this (a DirectConnection moves no bytes); like every other DbServer
  /// entry point it must be externally serialized — net::WireDispatcher
  /// holds its dispatch mutex across the request and this accounting.
  void AddTransferBytes(uint64_t received, uint64_t sent) {
    stats_.bytes_received += received;
    stats_.bytes_sent += sent;
  }

 private:
  Result<std::vector<Segment>> PrepareSegments(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges, const Table** table_out,
      const BPlusTree** index_out);

  Catalog catalog_;
  ServerStats stats_;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_SERVER_H_
