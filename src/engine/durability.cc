#include "engine/durability.h"

#include <utility>

#include "engine/codec.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace mope::engine {

namespace {

using storage::kInvalidPageId;
using storage::PageId;
using storage::RecordId;
using storage::WalRecord;
using storage::WalRecordType;

// --- DDL record / catalog blob codecs -------------------------------------
// kCatalog WAL payloads: 1-byte op tag, then op-specific fields.
constexpr uint8_t kOpCreateTable = 1;  // [name][schema][u64 heap_head]
constexpr uint8_t kOpDropTable = 2;    // [name]
constexpr uint8_t kOpCreateIndex = 3;  // [name][u64 column]

void PutSchema(std::string* out, const Schema& schema) {
  PutU64(out, schema.num_columns());
  for (const Column& col : schema.columns()) {
    PutString(out, col.name);
    out->push_back(static_cast<char>(col.type));
  }
}

Result<Schema> ReadSchema(ByteReader& reader) {
  MOPE_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Column col;
    MOPE_ASSIGN_OR_RETURN(col.name, reader.String());
    MOPE_ASSIGN_OR_RETURN(uint8_t type, reader.Byte());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("durable catalog: bad column type tag");
    }
    col.type = static_cast<ValueType>(type);
    columns.push_back(std::move(col));
  }
  return Schema(std::move(columns));
}

std::string EncodeRow(const Row& row) {
  std::string out;
  PutU64(&out, row.size());
  for (const Value& v : row) PutValue(&out, v);
  return out;
}

Result<Row> DecodeRow(std::string_view bytes) {
  ByteReader reader(bytes, "heap record");
  MOPE_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
  Row row;
  row.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MOPE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
    row.push_back(std::move(v));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("heap record has trailing bytes");
  }
  return row;
}

/// Durable description of one table, as recovered from the catalog blob
/// plus replayed DDL records.
struct TableMeta {
  Schema schema;
  PageId heap_head = kInvalidPageId;
  // column index -> paged B+-tree root (kInvalidPageId: not checkpointed).
  std::map<size_t, PageId> index_roots;
};

using TableMetaMap = std::map<std::string, TableMeta>;

Result<TableMetaMap> DecodeCatalogBlob(const std::string& blob) {
  TableMetaMap metas;
  if (blob.empty()) return metas;
  ByteReader reader(blob, "durable catalog");
  MOPE_ASSIGN_OR_RETURN(uint64_t n_tables, reader.U64());
  for (uint64_t t = 0; t < n_tables; ++t) {
    MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());
    TableMeta meta;
    MOPE_ASSIGN_OR_RETURN(meta.schema, ReadSchema(reader));
    MOPE_ASSIGN_OR_RETURN(meta.heap_head, reader.U64());
    MOPE_ASSIGN_OR_RETURN(uint64_t n_indexes, reader.U64());
    for (uint64_t i = 0; i < n_indexes; ++i) {
      MOPE_ASSIGN_OR_RETURN(uint64_t col, reader.U64());
      MOPE_ASSIGN_OR_RETURN(uint64_t root, reader.U64());
      meta.index_roots[col] = root;
    }
    metas[std::move(name)] = std::move(meta);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("durable catalog has trailing bytes");
  }
  return metas;
}

Status ApplyCatalogRecord(const WalRecord& rec, TableMetaMap* metas) {
  ByteReader reader(rec.payload, "catalog WAL record");
  MOPE_ASSIGN_OR_RETURN(uint8_t op, reader.Byte());
  switch (op) {
    case kOpCreateTable: {
      MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());
      TableMeta meta;
      MOPE_ASSIGN_OR_RETURN(meta.schema, ReadSchema(reader));
      MOPE_ASSIGN_OR_RETURN(meta.heap_head, reader.U64());
      (*metas)[std::move(name)] = std::move(meta);
      return Status::OK();
    }
    case kOpDropTable: {
      MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());
      metas->erase(name);
      return Status::OK();
    }
    case kOpCreateIndex: {
      MOPE_ASSIGN_OR_RETURN(std::string name, reader.String());
      MOPE_ASSIGN_OR_RETURN(uint64_t col, reader.U64());
      const auto it = metas->find(name);
      if (it == metas->end()) {
        return Status::Corruption("create-index record for unknown table '" +
                                  name + "'");
      }
      it->second.index_roots[col] = kInvalidPageId;  // rebuilt from rows
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown catalog WAL op " +
                                std::to_string(op));
  }
}

uint64_t IndexKey(const Value& v) {
  return static_cast<uint64_t>(std::get<int64_t>(v));
}

}  // namespace

// --- Per-table durable state ----------------------------------------------

struct DurableCatalog::TableState : TableDurabilityHooks {
  TableState(DurableCatalog* owner, std::string name)
      : owner(owner), name(std::move(name)) {}

  Result<Table*> table() {
    return owner->catalog_->GetTable(name);
  }

  Status OnInsert(RowId id, const Row& row) override {
    if (id != row_rids.size()) {
      return Status::Internal("durable row ids out of step with table");
    }
    MOPE_ASSIGN_OR_RETURN(RecordId rid, heap->Append(EncodeRow(row)));
    row_rids.push_back(rid);
    for (auto& [col, btree] : indexes) {
      MOPE_RETURN_NOT_OK(btree->Insert(IndexKey(row[col]), id));
    }
    return Status::OK();
  }

  Status OnUpdateValue(RowId id, size_t column, const Value& value) override {
    if (id >= row_rids.size()) {
      return Status::Internal("durable update for unknown row");
    }
    MOPE_ASSIGN_OR_RETURN(Table * t, table());
    Row row = t->row(id);  // pre-update contents
    const auto it = indexes.find(column);
    if (it != indexes.end()) {
      MOPE_ASSIGN_OR_RETURN(bool erased,
                            it->second->Erase(IndexKey(row[column]), id));
      if (!erased) {
        return Status::Internal("paged index entry missing during update");
      }
      MOPE_RETURN_NOT_OK(it->second->Insert(IndexKey(value), id));
    }
    row[column] = value;
    return heap->Update(row_rids[id], EncodeRow(row));
  }

  Status OnCreateIndex(size_t column) override {
    MOPE_ASSIGN_OR_RETURN(Table * t, table());
    std::string payload;
    payload.push_back(static_cast<char>(kOpCreateIndex));
    PutString(&payload, name);
    PutU64(&payload, column);
    MOPE_RETURN_NOT_OK(
        owner->engine_->logger()->Log(WalRecordType::kCatalog, payload)
            .status());
    MOPE_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::BTreeFile> btree,
        storage::BTreeFile::Open(owner->engine_->pool(), kInvalidPageId));
    for (RowId id = 0; id < t->row_count(); ++id) {
      MOPE_RETURN_NOT_OK(btree->Insert(IndexKey(t->row(id)[column]), id));
    }
    indexes[column] = std::move(btree);
    return Status::OK();
  }

  DurableCatalog* const owner;
  const std::string name;
  std::unique_ptr<storage::TableHeap> heap;
  std::map<size_t, std::unique_ptr<storage::BTreeFile>> indexes;
  std::vector<RecordId> row_rids;  // RowId -> heap record
};

// --- DurableCatalog --------------------------------------------------------

DurableCatalog::DurableCatalog(Catalog* catalog,
                               std::unique_ptr<storage::StorageEngine> e)
    : catalog_(catalog), engine_(std::move(e)) {}

DurableCatalog::~DurableCatalog() {
  catalog_->set_durability_hooks(nullptr);
  for (const auto& [name, state] : tables_) {
    auto table = catalog_->GetTable(name);
    if (table.ok()) table.value()->set_durability_hooks(nullptr);
  }
}

Result<std::unique_ptr<DurableCatalog>> DurableCatalog::Open(
    const std::string& dir, Catalog* catalog, const Options& options) {
  if (!catalog->TableNames().empty()) {
    return Status::InvalidArgument(
        "DurableCatalog::Open requires an empty catalog");
  }
  storage::StorageOptions storage_options;
  storage_options.pool_frames = options.pool_frames;
  storage_options.wal_sync_every = options.wal_sync_every;
  storage_options.env = options.env;
  storage_options.metrics = options.metrics;
  storage_options.clock = options.clock;
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageEngine> engine,
                        storage::StorageEngine::Open(dir, storage_options));
  std::unique_ptr<DurableCatalog> durable(
      new DurableCatalog(catalog, std::move(engine)));
  MOPE_RETURN_NOT_OK(durable->Recover(options));
  return durable;
}

Status DurableCatalog::Recover(const Options& options) {
  (void)options;
  const obs::ScopedSpan span("engine.recovery");
  recovered_from_crash_ = engine_->crash_recovered();

  MOPE_ASSIGN_OR_RETURN(TableMetaMap metas,
                        DecodeCatalogBlob(engine_->catalog_blob()));
  for (const WalRecord& rec : engine_->TakeCatalogRecords()) {
    MOPE_RETURN_NOT_OK(ApplyCatalogRecord(rec, &metas));
  }

  for (auto& [name, meta] : metas) {
    MOPE_ASSIGN_OR_RETURN(Table * table,
                          catalog_->CreateTable(name, meta.schema));
    auto state = std::make_unique<TableState>(this, name);
    MOPE_ASSIGN_OR_RETURN(
        state->heap,
        storage::TableHeap::Open(engine_->pool(), engine_->logger(),
                                 meta.heap_head));
    MOPE_RETURN_NOT_OK(state->heap->Scan(
        [&](RecordId rid, std::string_view bytes) -> Status {
          MOPE_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes));
          MOPE_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row)));
          if (id != state->row_rids.size()) {
            return Status::Internal("heap scan out of step with row ids");
          }
          state->row_rids.push_back(rid);
          return Status::OK();
        }));
    for (const auto& [col, root] : meta.index_roots) {
      if (col >= meta.schema.num_columns()) {
        return Status::Corruption("durable index on unknown column");
      }
      // In-memory index: rebuilt from the rows, as always.
      MOPE_RETURN_NOT_OK(
          table->CreateIndex(meta.schema.column(col).name));
      // Paged index: reopened from its root after a clean shutdown; rebuilt
      // from the rows after a crash (its pages are not WAL-protected).
      std::unique_ptr<storage::BTreeFile> btree;
      if (!recovered_from_crash_ && root != kInvalidPageId) {
        MOPE_ASSIGN_OR_RETURN(btree,
                              storage::BTreeFile::Open(engine_->pool(), root));
      } else {
        MOPE_ASSIGN_OR_RETURN(
            btree, storage::BTreeFile::Open(engine_->pool(), kInvalidPageId));
        for (RowId id = 0; id < table->row_count(); ++id) {
          MOPE_RETURN_NOT_OK(btree->Insert(IndexKey(table->row(id)[col]), id));
        }
      }
      state->indexes[col] = std::move(btree);
    }
    tables_[name] = std::move(state);
  }

  // From here on, every mutation is write-ahead logged.
  catalog_->set_durability_hooks(this);
  for (const auto& [name, state] : tables_) {
    MOPE_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(name));
    table->set_durability_hooks(state.get());
  }

  // A crash recovery rebuilt the paged indexes in fresh pages; checkpoint
  // now so the new roots are durable and the replayed WAL is retired.
  if (recovered_from_crash_) {
    MOPE_RETURN_NOT_OK(Checkpoint());
  }
  obs::LogEvent(obs::Logger::Default(),
                recovered_from_crash_ ? obs::LogLevel::kInfo
                                      : obs::LogLevel::kDebug,
                "engine", "recovered")
      .Arg("tables", tables_.size())
      .Arg("crash_recovery", recovered_from_crash_)
      .Arg("wal_records", engine_->recovered_records());
  return Status::OK();
}

Result<TableDurabilityHooks*> DurableCatalog::OnCreateTable(
    const std::string& name, const Schema& schema) {
  auto state = std::make_unique<TableState>(this, name);
  MOPE_ASSIGN_OR_RETURN(
      state->heap,
      storage::TableHeap::Open(engine_->pool(), engine_->logger(),
                               kInvalidPageId));
  std::string payload;
  payload.push_back(static_cast<char>(kOpCreateTable));
  PutString(&payload, name);
  PutSchema(&payload, schema);
  PutU64(&payload, state->heap->head());
  MOPE_RETURN_NOT_OK(
      engine_->logger()->Log(WalRecordType::kCatalog, payload).status());
  TableDurabilityHooks* hooks = state.get();
  tables_[name] = std::move(state);
  return hooks;
}

Status DurableCatalog::OnDropTable(const std::string& name) {
  std::string payload;
  payload.push_back(static_cast<char>(kOpDropTable));
  PutString(&payload, name);
  MOPE_RETURN_NOT_OK(
      engine_->logger()->Log(WalRecordType::kCatalog, payload).status());
  // The table's heap and index pages are leaked until the next compaction
  // story lands (documented in DESIGN.md §9) — correctness first.
  tables_.erase(name);
  return Status::OK();
}

Result<std::string> DurableCatalog::EncodeCatalogBlob() const {
  std::string blob;
  PutU64(&blob, tables_.size());
  for (const auto& [name, state] : tables_) {
    MOPE_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(name));
    PutString(&blob, name);
    PutSchema(&blob, table->schema());
    PutU64(&blob, state->heap->head());
    PutU64(&blob, state->indexes.size());
    for (const auto& [col, btree] : state->indexes) {
      PutU64(&blob, col);
      PutU64(&blob, btree->root());
    }
  }
  return blob;
}

Status DurableCatalog::Checkpoint() {
  const obs::ScopedSpan span("engine.checkpoint");
  MOPE_ASSIGN_OR_RETURN(std::string blob, EncodeCatalogBlob());
  return engine_->Checkpoint(blob);
}

Status DurableCatalog::Sync() { return engine_->Sync(); }

}  // namespace mope::engine
