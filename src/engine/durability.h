#ifndef MOPE_ENGINE_DURABILITY_H_
#define MOPE_ENGINE_DURABILITY_H_

/// \file durability.h
/// DurableCatalog: re-homes the in-memory Catalog/Table engine onto the
/// storage subsystem (src/storage/) without changing any caller.
///
/// Architecture — dual representation, WAL-first:
///
///   - The in-memory Catalog stays the serving path: every query keeps
///     reading the same Table rows and BPlusTree indexes it always did.
///   - Durability rides the hook interfaces (TableDurabilityHooks /
///     CatalogDurabilityHooks): each mutation is logged to the WAL and
///     applied to the paged structures *before* the in-memory apply.
///     Rows live in slotted heap pages (storage::TableHeap); every index
///     is mirrored as a paged B+-tree (storage::BTreeFile) maintained
///     through the buffer pool; DDL is logged as kCatalog records.
///   - Recovery inverts the flow: page-level WAL redo (done by
///     storage::StorageEngine::Open) makes the heap pages right, then this
///     layer replays DDL records, scans each heap to rebuild rows and
///     in-memory indexes, rebuilds the paged indexes (their pages are not
///     WAL-logged — see btree_file.h) and checkpoints. A crash costs one
///     index rebuild, never a re-encryption: everything on disk is MOPE
///     ciphertext, so the proxy and its keys are not involved at all.
///
/// Trust boundary: this file lives in src/engine/ — server side. It moves
/// Values that are already ciphertext (or non-sensitive plaintext columns)
/// between memory and pages. Linter rule R8 keeps key material out of here,
/// and R10 keeps all file I/O below the storage::Env seam.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/btree_file.h"
#include "storage/storage_engine.h"
#include "storage/table_heap.h"

namespace mope::engine {

class DurableCatalog : public CatalogDurabilityHooks {
 public:
  struct Options {
    size_t pool_frames = 256;
    uint64_t wal_sync_every = 32;
    storage::Env* env = nullptr;            // default: Env::Posix()
    obs::MetricsRegistry* metrics = nullptr;  // default: global registry
    obs::Clock* clock = nullptr;              // default: SystemClock()
  };

  /// Opens `dir` (running recovery), rebuilds `*catalog` from the durable
  /// state and installs the hooks. `catalog` must be empty and must outlive
  /// the returned object; from here on every mutation through it is
  /// persisted.
  static Result<std::unique_ptr<DurableCatalog>> Open(const std::string& dir,
                                                      Catalog* catalog,
                                                      const Options& options);

  ~DurableCatalog() override;

  /// Checkpoints: flushes everything, persists the catalog blob (schemas,
  /// heap heads, index roots) and truncates the WAL. Call from the thread
  /// that owns writes (the protocol needs quiescence, which the engine's
  /// existing write serialization provides).
  Status Checkpoint();

  /// Group-commit barrier: everything logged so far becomes durable.
  Status Sync();

  storage::StorageEngine* storage() { return engine_.get(); }

  /// True when the last Open replayed WAL records (crash recovery).
  bool recovered_from_crash() const { return recovered_from_crash_; }

  // CatalogDurabilityHooks:
  Result<TableDurabilityHooks*> OnCreateTable(const std::string& name,
                                              const Schema& schema) override;
  Status OnDropTable(const std::string& name) override;

 private:
  struct TableState;

  DurableCatalog(Catalog* catalog, std::unique_ptr<storage::StorageEngine> e);

  Status Recover(const Options& options);
  Result<std::string> EncodeCatalogBlob() const;

  Catalog* const catalog_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::map<std::string, std::unique_ptr<TableState>> tables_;
  bool recovered_from_crash_ = false;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_DURABILITY_H_
