#ifndef MOPE_ENGINE_TABLE_H_
#define MOPE_ENGINE_TABLE_H_

/// \file table.h
/// Row-store tables with typed schemas and secondary B+-tree indexes.
///
/// The server-side storage substrate. In the MOPE architecture the server
/// stores ciphertext columns (uint64) for every attribute that supports
/// range predicates, plus ordinary columns for everything else; the engine
/// is agnostic — it just stores and indexes values.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "engine/btree.h"

namespace mope::engine {

/// Column types supported by the engine.
enum class ValueType : uint8_t { kInt, kDouble, kString };

/// A single cell. Int columns hold both plaintext integers and MOPE
/// ciphertexts (which are just integers to the server).
using Value = std::variant<int64_t, double, std::string>;

ValueType TypeOf(const Value& v);
std::string ValueToString(const Value& v);

/// A row: one Value per schema column.
using Row = std::vector<Value>;

/// Row identifier: dense index into the table's row vector.
using RowId = uint64_t;

struct Column {
  std::string name;
  ValueType type;
};

/// A table schema: ordered, named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// OK when the row matches the schema arity and column types.
  Status Validate(const Row& row) const;

 private:
  std::vector<Column> columns_;
  std::map<std::string, size_t> by_name_;
};

/// Durability hooks: a Table with hooks installed reports every mutation
/// *before* applying it in memory, after all validation has passed. The
/// implementation (engine::DurableCatalog) writes the mutation ahead into
/// the storage engine's WAL/heap; a hook failure aborts the mutation with
/// nothing applied on either side. A Table without hooks (the default) is
/// the original purely in-memory engine.
class TableDurabilityHooks {
 public:
  virtual ~TableDurabilityHooks() = default;

  /// `id` is the RowId the row is about to receive.
  virtual Status OnInsert(RowId id, const Row& row) = 0;
  virtual Status OnUpdateValue(RowId id, size_t column, const Value& value) = 0;
  virtual Status OnCreateIndex(size_t column) = 0;
};

/// An in-memory row-store table with optional secondary indexes.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t row_count() const { return rows_.size(); }

  /// Validates and appends a row; maintains all indexes. Returns the RowId.
  Result<RowId> Insert(Row row);

  /// Row access. Precondition: id < row_count().
  const Row& row(RowId id) const;

  /// Replaces one cell, keeping any index on that column consistent (used
  /// by MOPE key rotation, which rewrites the whole ciphertext column).
  Status UpdateValue(RowId id, size_t column, Value value);

  /// Creates a B+-tree index over an int column. Fails on non-int columns
  /// or negative stored values (MOPE ciphertexts are always non-negative).
  Status CreateIndex(const std::string& column_name);

  /// The index on the named column, or NotFound.
  Result<const BPlusTree*> GetIndex(const std::string& column_name) const;

  bool HasIndex(const std::string& column_name) const;

  /// Installs (or clears, with nullptr) the durability hooks. The hooks
  /// object must outlive the table or the next set_durability_hooks call.
  void set_durability_hooks(TableDurabilityHooks* hooks) { hooks_ = hooks; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  // column index -> B+-tree over that column's int values.
  std::map<size_t, std::unique_ptr<BPlusTree>> indexes_;
  TableDurabilityHooks* hooks_ = nullptr;
};

/// Catalog-level durability hooks: DDL counterparts of TableDurabilityHooks.
class CatalogDurabilityHooks {
 public:
  virtual ~CatalogDurabilityHooks() = default;

  /// Called before the table becomes visible. Returns the per-table hooks
  /// to install on it (the implementation allocates the table's heap here).
  virtual Result<TableDurabilityHooks*> OnCreateTable(const std::string& name,
                                                      const Schema& schema) = 0;
  virtual Status OnDropTable(const std::string& name) = 0;
};

/// The server's catalog of tables.
class Catalog {
 public:
  /// Creates a table; AlreadyExists when the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Removes a table (and its indexes); NotFound when absent. Used to roll
  /// back a partially populated table when a bulk load fails midway.
  Status DropTable(const std::string& name);

  /// Looks a table up; NotFound when absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Installs (or clears) the DDL durability hooks.
  void set_durability_hooks(CatalogDurabilityHooks* hooks) { hooks_ = hooks; }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  CatalogDurabilityHooks* hooks_ = nullptr;
};

}  // namespace mope::engine

#endif  // MOPE_ENGINE_TABLE_H_
