#ifndef MOPE_ENGINE_SNAPSHOT_H_
#define MOPE_ENGINE_SNAPSHOT_H_

/// \file snapshot.h
/// Binary persistence for the server catalog.
///
/// The encrypted database is exactly as safe on disk as it is in memory —
/// every range-queryable column is MOPE ciphertext — so the server can
/// snapshot its catalog (schemas, rows, which columns are indexed) and
/// restore it on restart without involving the proxy or any keys.
///
/// Format (little-endian): magic "MOPESNP1", table count, then per table:
/// name, schema, indexed-column list, row count, and length-prefixed typed
/// values. Indexes are rebuilt on load (cheaper than serializing tree
/// pages, and validates the data on the way in).

#include <string>

#include "common/status.h"
#include "engine/table.h"
#include "storage/env.h"

namespace mope::engine {

/// Serializes the whole catalog.
Result<std::string> SerializeCatalog(const Catalog& catalog);

/// Restores a catalog serialized by SerializeCatalog. Fails with Corruption
/// on magic/bounds/type violations (truncated or tampered snapshots).
Result<Catalog> DeserializeCatalog(const std::string& bytes);

/// File convenience wrappers. SaveCatalog is durable and atomic: the bytes
/// go to a temp file which is fsync'd and renamed over `path` (see
/// storage::Env::WriteFileAtomic), so a crash mid-save leaves the previous
/// snapshot intact — never a truncated one. The Env overloads exist for
/// fault-injection tests; the two-argument forms use the real file system.
Status SaveCatalog(const Catalog& catalog, const std::string& path);
Status SaveCatalog(const Catalog& catalog, const std::string& path,
                   storage::Env* env);
Result<Catalog> LoadCatalog(const std::string& path);
Result<Catalog> LoadCatalog(const std::string& path, storage::Env* env);

/// Replays every table of `src` into `dst` through the public mutation API
/// (CreateTable / Insert / CreateIndex), so durability hooks installed on
/// `dst` observe each row — this is how a snapshot is imported into a
/// storage-backed server. Fails if `dst` already has a clashing table name.
Status ImportCatalog(const Catalog& src, Catalog* dst);

}  // namespace mope::engine

#endif  // MOPE_ENGINE_SNAPSHOT_H_
