#ifndef MOPE_ENGINE_SNAPSHOT_H_
#define MOPE_ENGINE_SNAPSHOT_H_

/// \file snapshot.h
/// Binary persistence for the server catalog.
///
/// The encrypted database is exactly as safe on disk as it is in memory —
/// every range-queryable column is MOPE ciphertext — so the server can
/// snapshot its catalog (schemas, rows, which columns are indexed) and
/// restore it on restart without involving the proxy or any keys.
///
/// Format (little-endian): magic "MOPESNP1", table count, then per table:
/// name, schema, indexed-column list, row count, and length-prefixed typed
/// values. Indexes are rebuilt on load (cheaper than serializing tree
/// pages, and validates the data on the way in).

#include <string>

#include "common/status.h"
#include "engine/table.h"

namespace mope::engine {

/// Serializes the whole catalog.
Result<std::string> SerializeCatalog(const Catalog& catalog);

/// Restores a catalog serialized by SerializeCatalog. Fails with Corruption
/// on magic/bounds/type violations (truncated or tampered snapshots).
Result<Catalog> DeserializeCatalog(const std::string& bytes);

/// File convenience wrappers.
Status SaveCatalog(const Catalog& catalog, const std::string& path);
Result<Catalog> LoadCatalog(const std::string& path);

}  // namespace mope::engine

#endif  // MOPE_ENGINE_SNAPSHOT_H_
