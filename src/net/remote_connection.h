#ifndef MOPE_NET_REMOTE_CONNECTION_H_
#define MOPE_NET_REMOTE_CONNECTION_H_

/// \file remote_connection.h
/// The proxy's client end of the wire protocol.
///
/// RemoteConnection implements proxy::ServerConnection over any Transport
/// factory (TCP in production, in-memory channels in tests), making the
/// proxy location-transparent: the same Proxy code runs against an embedded
/// engine, a daemon on localhost, or a server across a network.
///
/// Failure policy, in one place:
///   - transient errors (kUnavailable: timeouts, resets, mid-reply EOF) are
///     retried up to max_retries times with capped exponential backoff,
///     reconnecting each time — every request is an idempotent read, so a
///     retry after a half-finished exchange is always safe;
///   - Corruption (CRC mismatch, bad framing) fails fast: a corrupted
///     stream is a bug or an attack, not weather;
///   - server-side application errors arrive as kStatusReply frames and are
///     returned verbatim, never retried.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "proxy/connection.h"

namespace mope::net {

struct RemoteOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  SocketOptions socket;  ///< Connect/read deadlines for TCP transports.

  /// Extra attempts after the first on transient failures.
  uint32_t max_retries = 3;
  /// Backoff before retry i is min(initial << i, max) milliseconds.
  int backoff_initial_ms = 5;
  int backoff_max_ms = 250;

  /// Where the connection's `net.client.*` counters and round-trip latency
  /// histogram live. nullptr = the process-global obs::Registry(). A
  /// MopeSystem passes its own registry so client- and server-side metrics
  /// stay separate even when both ends share one test process.
  obs::MetricsRegistry* registry = nullptr;
  /// Times round trips; nullptr = obs::SystemClock().
  obs::Clock* clock = nullptr;

  /// Opens the underlying stream; defaults to ConnectTcp(host, port).
  /// Tests substitute in-memory or fault-injecting transports here.
  std::function<Result<std::unique_ptr<Transport>>()> transport_factory;
};

class RemoteConnection final : public proxy::ServerConnection {
 public:
  explicit RemoteConnection(RemoteOptions options);

  Result<std::vector<std::pair<engine::RowId, engine::Row>>>
  ExecuteRangeBatch(const std::string& table, const std::string& column,
                    const std::vector<ModularInterval>& ranges) override;

  Result<uint64_t> CountRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges) override;

  Result<engine::Schema> GetSchema(const std::string& table) override;

  /// Asks the server for its metrics registry (kStatsRequest round trip).
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchServerStats()
      override;

  /// Transport-level retry attempts performed so far (the proxy's own
  /// retries_performed() counts on top of these).
  uint64_t retries() const;
  /// Successful (re)connects, minus the none-yet state: 0 until first use.
  uint64_t connects() const;

 private:
  Result<Frame> RoundTrip(MessageType request_type, std::string payload,
                          MessageType expected_reply) MOPE_EXCLUDES(mutex_);
  Status EnsureConnectedLocked() MOPE_REQUIRES(mutex_);
  void DisconnectLocked() MOPE_REQUIRES(mutex_);

  RemoteOptions options_;
  obs::Clock* clock_;
  mutable Mutex mutex_{
      lock_rank::kClientConnection};  ///< One in-flight request per connection.
  std::unique_ptr<Transport> transport_ MOPE_GUARDED_BY(mutex_);
  // Registry counters (atomic targets), deliberately *not* annotated with the
  // connection mutex: mutex_ is held across retry backoff sleeps (up to
  // seconds), and stats readers — retries()/connects() below, and any
  // registry snapshot — must never block behind a retrying request. Guarding
  // them would force those readers to take mutex_, which is exactly the
  // coupling this split exists to prevent.
  obs::Counter* retries_;
  obs::Counter* connects_;
  obs::Counter* roundtrips_;
  obs::Counter* bytes_sent_;
  obs::Counter* bytes_received_;
  obs::ExpHistogram* roundtrip_ns_;
};

/// Installs the "tcp" scheme into the proxy's connection registry, so
/// proxy::MakeConnection("tcp://host:port") yields a RemoteConnection with
/// the given defaults for everything but host and port. Idempotent;
/// thread-safe. Call once at startup from anything that accepts connection
/// strings (the shell's --connect flag, tools).
void RegisterTcpScheme(const RemoteOptions& defaults = RemoteOptions());

/// A ServerConnection that routes every request through the complete wire
/// path — encode, frame, CRC, dispatch, decode — against an in-process
/// DbServer, deterministically and without sockets. Used by benches to
/// measure honest wire bandwidth and by tests as the no-kernel baseline.
/// The returned connection owns its dispatcher and channel; `server` must
/// outlive it.
std::unique_ptr<proxy::ServerConnection> MakeLoopbackWireConnection(
    engine::DbServer* server);

}  // namespace mope::net

#endif  // MOPE_NET_REMOTE_CONNECTION_H_
