#ifndef MOPE_NET_SERVER_H_
#define MOPE_NET_SERVER_H_

/// \file server.h
/// The TCP server daemon: engine::DbServer behind the wire protocol.
///
/// One listener thread accepts connections and feeds a fixed pool of worker
/// threads; each worker runs a session loop (read frame, dispatch, write
/// reply) over one connection at a time. Engine access is serialized by the
/// shared WireDispatcher — the workers overlap network I/O, decoding and
/// encoding, which is where a daemon spends its time on small frames.
///
/// Shutdown is graceful and deterministic: Stop() raises a flag that every
/// blocking point (accept, session read) polls on a short cadence, in-flight
/// requests complete, replies are flushed, then sockets close and threads
/// join. A malformed or hostile client only ever costs its own connection —
/// framing errors close that session, never the daemon — and an idle or
/// merely-connected one cannot starve the pool: sessions close after
/// idle_timeout_ms of silence and accepts beyond max_pending_sessions are
/// rejected instead of queueing unboundedly.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/server.h"
#include "net/dispatcher.h"
#include "net/socket.h"

namespace mope::net {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0: ephemeral; the bound port is TcpServer::port().
  int num_workers = 4;
  /// Cadence at which blocked accepts/reads re-check the stop flag.
  int poll_interval_ms = 50;
  /// Close a session after this long with no bytes from its client, so idle
  /// connections cannot pin the fixed worker pool forever. <= 0 disables.
  int idle_timeout_ms = 60000;
  /// Connections beyond this many waiting for a free worker are closed at
  /// accept (the client sees a reset and retries); bounds both memory and
  /// the time an accepted-but-unserved client sits in the dark.
  size_t max_pending_sessions = 64;
  /// Socket deadlines for accepted connections.
  SocketOptions session_options;
  /// Dispatcher policy (reply caps, slow-query accounting, periodic
  /// checkpointing); shared by every session of this daemon.
  DispatcherOptions dispatcher;
};

class TcpServer {
 public:
  /// Binds, spawns the listener and worker threads, and starts serving
  /// `server` (which must outlive the TcpServer and must not be mutated
  /// concurrently except through this daemon).
  static Result<std::unique_ptr<TcpServer>> Start(engine::DbServer* server,
                                                  TcpServerOptions options);

  /// Graceful shutdown; safe to call more than once. The destructor calls it.
  void Stop();
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  uint16_t port() const { return listener_->port(); }
  uint64_t connections_accepted() const {
    return connections_accepted_->Value();
  }
  /// Connections closed at accept because the pending queue was full.
  uint64_t connections_rejected() const {
    return connections_rejected_->Value();
  }
  uint64_t frames_served() const { return dispatcher_.frames_served(); }

 private:
  // The accept counters live in the DbServer's registry (`net.server.*`) so
  // a kStatsRequest sees them alongside the engine counters.
  TcpServer(engine::DbServer* server, TcpServerOptions options,
            std::unique_ptr<TcpListener> listener)
      : options_(std::move(options)), listener_(std::move(listener)),
        dispatcher_(server, options_.dispatcher),
        connections_accepted_(server->metrics()->GetCounter(
            "net.server.connections_accepted")),
        connections_rejected_(server->metrics()->GetCounter(
            "net.server.connections_rejected")) {}

  void ListenLoop();
  void WorkerLoop();
  void ServeSession(SocketTransport* session);

  TcpServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  WireDispatcher dispatcher_;

  std::atomic<bool> stopping_{false};
  obs::Counter* connections_accepted_;
  obs::Counter* connections_rejected_;

  Mutex queue_mutex_{lock_rank::kServerAcceptQueue};
  CondVar queue_cv_;
  std::deque<std::unique_ptr<SocketTransport>> pending_
      MOPE_GUARDED_BY(queue_mutex_);

  std::thread listen_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mope::net

#endif  // MOPE_NET_SERVER_H_
