#include "net/remote_connection.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/inmem.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "proxy/connection_registry.h"

namespace mope::net {

namespace {

obs::MetricsRegistry* ResolveRegistry(obs::MetricsRegistry* registry) {
  return registry != nullptr ? registry : obs::Registry();
}

}  // namespace

RemoteConnection::RemoteConnection(RemoteOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : obs::SystemClock()),
      retries_(
          ResolveRegistry(options_.registry)->GetCounter("net.client.retries")),
      connects_(ResolveRegistry(options_.registry)
                    ->GetCounter("net.client.connects")),
      roundtrips_(ResolveRegistry(options_.registry)
                      ->GetCounter("net.client.roundtrips")),
      bytes_sent_(ResolveRegistry(options_.registry)
                      ->GetCounter("net.client.bytes_sent")),
      bytes_received_(ResolveRegistry(options_.registry)
                          ->GetCounter("net.client.bytes_received")),
      roundtrip_ns_(ResolveRegistry(options_.registry)
                        ->GetHistogram("net.client.roundtrip_ns")) {
  if (!options_.transport_factory) {
    options_.transport_factory =
        [host = options_.host, port = options_.port,
         socket = options_.socket]() -> Result<std::unique_ptr<Transport>> {
      MOPE_ASSIGN_OR_RETURN(std::unique_ptr<SocketTransport> transport,
                            ConnectTcp(host, port, socket));
      return std::unique_ptr<Transport>(std::move(transport));
    };
  }
}

Status RemoteConnection::EnsureConnectedLocked() {
  if (transport_ != nullptr) return Status::OK();
  MOPE_ASSIGN_OR_RETURN(transport_, options_.transport_factory());
  connects_->Increment();
  return Status::OK();
}

void RemoteConnection::DisconnectLocked() {
  if (transport_ != nullptr) {
    transport_->Close();
    transport_.reset();
  }
}

Result<Frame> RemoteConnection::RoundTrip(MessageType request_type,
                                          std::string payload,
                                          MessageType expected_reply) {
  // One span per application-level round trip (retries included): in a query
  // trace, N of these under one segment shows the real/fake batch fan-out.
  const obs::ScopedSpan span("net.roundtrip");
  const uint64_t trace_id = obs::CurrentTraceId();
  // An active profile collector turns on the frame's profile extension: the
  // request carries an empty section ("profile me"), the reply brings back
  // the server's attributed counter deltas, merged below.
  obs::ProfileCollector* collector = obs::CurrentProfileCollector();
  const bool want_profile = collector != nullptr;
  const uint64_t start_ns = clock_->NowNanos();
  const MutexLock lock(&mutex_);
  roundtrips_->Increment();
  Status last = Status::Unavailable("no attempt made");
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_->Increment();
      obs::BumpTraceCounter("net.retries");
      const int backoff = std::min(
          options_.backoff_max_ms,
          options_.backoff_initial_ms << std::min(attempt - 1, 20u));
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }

    last = EnsureConnectedLocked();
    if (!last.ok()) {
      if (IsTransient(last)) continue;
      return last;
    }
    const uint64_t sent_bytes =
        kFrameHeaderBytes + (trace_id != 0 ? kTraceIdBytes : 0) +
        (want_profile ? kProfileLengthBytes : 0) + payload.size();
    bytes_sent_->Increment(sent_bytes);
    last = WriteFrame(transport_.get(), request_type, payload, trace_id,
                      want_profile);
    if (!last.ok()) {
      DisconnectLocked();
      if (IsTransient(last)) continue;
      return last;
    }
    auto frame = ReadFrame(transport_.get());
    if (!frame.ok()) {
      // The stream is in an unknown state either way; a fresh connection is
      // the only sane base for a retry.
      DisconnectLocked();
      last = frame.status();
      if (IsTransient(last)) continue;
      return last;  // Corruption and friends: fail fast
    }
    const uint64_t received_bytes =
        kFrameHeaderBytes + (frame->trace_id != 0 ? kTraceIdBytes : 0) +
        (frame->has_profile ? kProfileLengthBytes + frame->profile.size()
                            : 0) +
        frame->payload.size();
    bytes_received_->Increment(received_bytes);
    if (collector != nullptr) {
      collector->Add("net.frames", 1);
      collector->Add("net.frame_bytes_sent", sent_bytes);
      collector->Add("net.frame_bytes_received", received_bytes);
      if (frame->has_profile) {
        auto entries = DecodeStatsReply(frame->profile);
        if (!entries.ok()) {
          DisconnectLocked();
          return entries.status();
        }
        for (const auto& [name, value] : *entries) {
          // Ids overwrite; resource deltas accumulate across the query's
          // round trips (one per segment batch).
          if (name == "profile.trace_id") {
            collector->Set(name, value);
          } else {
            collector->Add(name, value);
          }
        }
      }
    }
    if (frame->type == static_cast<uint8_t>(MessageType::kStatusReply)) {
      Status carried;
      MOPE_RETURN_NOT_OK(DecodeStatusReply(frame->payload, &carried));
      return carried;  // the server's answer; not a transport failure
    }
    if (frame->type != static_cast<uint8_t>(expected_reply)) {
      DisconnectLocked();
      return Status::Corruption("unexpected reply type " +
                                std::to_string(frame->type));
    }
    roundtrip_ns_->Observe(clock_->NowNanos() - start_ns);
    return *std::move(frame);
  }
  return last;
}

Result<std::vector<std::pair<engine::RowId, engine::Row>>>
RemoteConnection::ExecuteRangeBatch(const std::string& table,
                                    const std::string& column,
                                    const std::vector<ModularInterval>& ranges) {
  RangeBatchRequest request{table, column, ranges};
  MOPE_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(MessageType::kRangeBatchRequest,
                EncodeRangeBatchRequest(request),
                MessageType::kRangeBatchReply));
  return DecodeRangeBatchReply(reply.payload);
}

Result<uint64_t> RemoteConnection::CountRangeBatch(
    const std::string& table, const std::string& column,
    const std::vector<ModularInterval>& ranges) {
  RangeBatchRequest request{table, column, ranges};
  MOPE_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(MessageType::kCountBatchRequest,
                EncodeRangeBatchRequest(request),
                MessageType::kCountBatchReply));
  return DecodeCountBatchReply(reply.payload);
}

Result<engine::Schema> RemoteConnection::GetSchema(const std::string& table) {
  MOPE_ASSIGN_OR_RETURN(Frame reply,
                        RoundTrip(MessageType::kSchemaRequest,
                                  EncodeSchemaRequest(table),
                                  MessageType::kSchemaReply));
  return DecodeSchemaReply(reply.payload);
}

Result<std::vector<std::pair<std::string, uint64_t>>>
RemoteConnection::FetchServerStats() {
  MOPE_ASSIGN_OR_RETURN(Frame reply,
                        RoundTrip(MessageType::kStatsRequest, std::string(),
                                  MessageType::kStatsReply));
  return DecodeStatsReply(reply.payload);
}

uint64_t RemoteConnection::retries() const { return retries_->Value(); }

uint64_t RemoteConnection::connects() const { return connects_->Value(); }

void RegisterTcpScheme(const RemoteOptions& defaults) {
  proxy::RegisterConnectionScheme(
      "tcp",
      [defaults](const std::string& address)
          -> Result<std::unique_ptr<proxy::ServerConnection>> {
        const size_t colon = address.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == address.size()) {
          return Status::InvalidArgument(
              "tcp:// address must look like host:port, got '" + address +
              "'");
        }
        uint64_t port = 0;
        for (size_t i = colon + 1; i < address.size(); ++i) {
          const char c = address[i];
          if (c < '0' || c > '9') {
            return Status::InvalidArgument("bad port in tcp:// address '" +
                                           address + "'");
          }
          port = port * 10 + static_cast<uint64_t>(c - '0');
          if (port > 65535) {
            return Status::InvalidArgument("port out of range in '" +
                                           address + "'");
          }
        }
        RemoteOptions options = defaults;
        options.host = address.substr(0, colon);
        options.port = static_cast<uint16_t>(port);
        options.transport_factory = nullptr;  // rebuilt from host/port
        return std::unique_ptr<proxy::ServerConnection>(
            std::make_unique<RemoteConnection>(std::move(options)));
      });
}

std::unique_ptr<proxy::ServerConnection> MakeLoopbackWireConnection(
    engine::DbServer* server) {
  auto dispatcher = std::make_shared<WireDispatcher>(server);
  auto channel = std::make_shared<InProcessChannel>(dispatcher.get());
  RemoteOptions options;
  options.max_retries = 0;
  options.backoff_initial_ms = 0;
  // The factory keeps dispatcher and channel alive for the connection's
  // lifetime (captured shared_ptrs).
  options.transport_factory =
      [dispatcher, channel]() -> Result<std::unique_ptr<Transport>> {
    return channel->NewTransport();
  };
  return std::make_unique<RemoteConnection>(std::move(options));
}

}  // namespace mope::net
