#ifndef MOPE_NET_DISPATCHER_H_
#define MOPE_NET_DISPATCHER_H_

/// \file dispatcher.h
/// Bridges decoded wire frames to an engine::DbServer.
///
/// One dispatcher is shared by every session of a server daemon. It owns the
/// mutex that serializes engine access (DbServer is single-threaded by
/// design — the paper's server is one unmodified DBMS) and the wire-level
/// byte accounting folded into ServerStats. Application errors (unknown
/// table, bad column, unknown message type) are *answers*, encoded as
/// kStatusReply frames; only framing violations — a stream we can no longer
/// trust — are returned as errors, upon which the session closes.
///
/// Observability: requests carrying a version-2 trace id get that id echoed
/// on their reply frame, so a client's span tree and the server's accounting
/// correlate. Per-request dispatch latency (decode + engine + encode) lands
/// in the server registry's `server.dispatch_ns` histogram, and a
/// kStatsRequest frame is answered with the full registry snapshot — the
/// live stats endpoint `mope_serverd` exposes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/server.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "storage/env.h"

namespace mope::net {

struct DispatcherOptions {
  /// Caps the encoded reply body: a query whose result would overflow one
  /// frame is *answered* with kStatusReply(InvalidArgument) — never an
  /// abort, never a dropped session. Tests lower it to exercise the
  /// overflow path cheaply.
  size_t max_reply_payload_bytes = kMaxPayloadBytes;
  /// Times per-request dispatch latency (nullptr = SystemClock; tests
  /// inject a ManualClock for deterministic histograms).
  obs::Clock* clock = nullptr;
  /// Slow-query accounting: a request whose dispatch takes at least this
  /// long gets a server-side trace, a structured `event=slow_query` log
  /// line with a per-span time breakdown, and (when `trace_env` is set and
  /// `slow_query_trace_path` non-empty) a Chrome-trace export written
  /// atomically to that path. The server-side trace adopts the request
  /// frame's wire trace id, so the log line, the export, and the client's
  /// own span tree all correlate. 0 disables.
  uint64_t slow_query_threshold_ns = 0;
  std::string slow_query_trace_path;
  storage::Env* trace_env = nullptr;
  /// Checkpoint the attached storage after every N data-bearing requests
  /// (periodic durability without waiting for shutdown; the dispatch mutex
  /// provides the writer quiescence CheckpointStorage requires). 0 never
  /// checkpoints from the dispatcher. A slow-query trace of a request that
  /// triggered one shows exactly where the WAL/buffer-pool time went.
  uint64_t checkpoint_every = 0;
  /// Sampled query log: every Nth data-bearing request (range or count
  /// batch) is profiled — as if the client had asked — and emitted as a
  /// structured `event=query` log line carrying the full attributed
  /// profile, through the default (rate-limited) logger. 0 disables.
  uint64_t query_log_sample = 0;
};

class WireDispatcher {
 public:
  /// `server` must outlive the dispatcher.
  WireDispatcher(engine::DbServer* server, DispatcherOptions options);

  /// Convenience form preserving the original signature.
  explicit WireDispatcher(engine::DbServer* server,
                          size_t max_reply_payload_bytes = kMaxPayloadBytes,
                          obs::Clock* clock = nullptr);

  WireDispatcher(const WireDispatcher&) = delete;
  WireDispatcher& operator=(const WireDispatcher&) = delete;

  /// Handles the complete frame at the front of `bytes` and returns the
  /// encoded reply frame; `*consumed` is set to the request frame's size.
  /// Thread-safe: the whole request (decode, engine call, encode, stats) runs
  /// under the dispatch mutex.
  Result<std::string> HandleFrameBytes(std::string_view bytes,
                                       size_t* consumed);

  /// Requests answered so far (including ones answered with a StatusReply).
  uint64_t frames_served() const { return frames_served_->Value(); }

 private:
  /// `want_profile` makes the data-bearing cases snapshot the server's
  /// counters around the engine call (engine::ServerProfileProbe) and attach
  /// the deltas — plus the request's trace id — to the reply as the wire
  /// profile extension; `*profile_out` receives the same entries for the
  /// sampled query log. Non-data-bearing requests ignore the flag: their
  /// deltas are all zero and the embedded path attributes the same set.
  Result<std::string> HandleFrameLocked(const Frame& frame, bool want_profile,
                                        StatsReply* profile_out)
      MOPE_REQUIRES(mutex_);
  /// Catalog lookup for a schema request (split out so the capability
  /// analysis sees the engine access inside the dispatch critical section).
  Result<engine::Schema> LookupSchemaLocked(const std::string& table) const
      MOPE_REQUIRES(mutex_);
  /// Periodic-checkpoint policy; called after every data-bearing request.
  void MaybeCheckpointLocked(const Frame& frame) MOPE_REQUIRES(mutex_);
  /// Slow-query aftermath: log line + Chrome-trace export. `trace` is the
  /// (still thread-activated) server-side trace of the request.
  void ReportSlowQuery(const Frame& frame, uint64_t elapsed_ns,
                       const obs::Trace& trace);
  /// Emits the sampled `event=query` structured log line.
  void EmitQueryLog(const Frame& frame, uint64_t elapsed_ns,
                    const StatsReply& profile);

  /// Serializes engine access: DbServer is single-threaded by design (the
  /// paper's server is one unmodified DBMS), so the pointee is guarded even
  /// though the pointer itself is const after construction.
  mutable Mutex mutex_{lock_rank::kDispatcher};
  engine::DbServer* server_ MOPE_PT_GUARDED_BY(mutex_);
  DispatcherOptions options_;
  obs::Clock* clock_;
  uint64_t frames_since_checkpoint_ MOPE_GUARDED_BY(mutex_) = 0;
  // Handles into the server's registry (so the stats endpoint serves them).
  // Atomic targets: safe to bump without the dispatch mutex.
  obs::Counter* frames_served_;
  obs::Counter* slow_queries_;
  obs::ExpHistogram* dispatch_ns_;
  // Request totals by kind (the /statusz "queries" section).
  obs::Counter* requests_range_batch_;
  obs::Counter* requests_count_batch_;
  obs::Counter* requests_schema_;
  obs::Counter* requests_stats_;
  /// Data-bearing requests seen while query-log sampling is on (every Nth
  /// one is emitted). Atomic: bumped outside the dispatch mutex.
  std::atomic<uint64_t> query_seq_{0};
};

}  // namespace mope::net

#endif  // MOPE_NET_DISPATCHER_H_
