#ifndef MOPE_NET_DISPATCHER_H_
#define MOPE_NET_DISPATCHER_H_

/// \file dispatcher.h
/// Bridges decoded wire frames to an engine::DbServer.
///
/// One dispatcher is shared by every session of a server daemon. It owns the
/// mutex that serializes engine access (DbServer is single-threaded by
/// design — the paper's server is one unmodified DBMS) and the wire-level
/// byte accounting folded into ServerStats. Application errors (unknown
/// table, bad column, unknown message type) are *answers*, encoded as
/// kStatusReply frames; only framing violations — a stream we can no longer
/// trust — are returned as errors, upon which the session closes.
///
/// Observability: requests carrying a version-2 trace id get that id echoed
/// on their reply frame, so a client's span tree and the server's accounting
/// correlate. Per-request dispatch latency (decode + engine + encode) lands
/// in the server registry's `server.dispatch_ns` histogram, and a
/// kStatsRequest frame is answered with the full registry snapshot — the
/// live stats endpoint `mope_serverd` exposes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/server.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::net {

class WireDispatcher {
 public:
  /// `server` must outlive the dispatcher. `max_reply_payload_bytes` caps the
  /// encoded reply body: a query whose result would overflow one frame is
  /// *answered* with kStatusReply(InvalidArgument) — never an abort, never a
  /// dropped session. Tests lower it to exercise the overflow path cheaply.
  /// `clock` times per-request dispatch latency (nullptr = SystemClock;
  /// tests inject a ManualClock for deterministic histograms).
  explicit WireDispatcher(engine::DbServer* server,
                          size_t max_reply_payload_bytes = kMaxPayloadBytes,
                          obs::Clock* clock = nullptr);

  WireDispatcher(const WireDispatcher&) = delete;
  WireDispatcher& operator=(const WireDispatcher&) = delete;

  /// Handles the complete frame at the front of `bytes` and returns the
  /// encoded reply frame; `*consumed` is set to the request frame's size.
  /// Thread-safe: the whole request (decode, engine call, encode, stats) runs
  /// under the dispatch mutex.
  Result<std::string> HandleFrameBytes(std::string_view bytes,
                                       size_t* consumed);

  /// Requests answered so far (including ones answered with a StatusReply).
  uint64_t frames_served() const { return frames_served_->Value(); }

 private:
  Result<std::string> HandleFrameLocked(const Frame& frame)
      MOPE_REQUIRES(mutex_);
  /// Catalog lookup for a schema request (split out so the capability
  /// analysis sees the engine access inside the dispatch critical section).
  Result<engine::Schema> LookupSchemaLocked(const std::string& table) const
      MOPE_REQUIRES(mutex_);

  /// Serializes engine access: DbServer is single-threaded by design (the
  /// paper's server is one unmodified DBMS), so the pointee is guarded even
  /// though the pointer itself is const after construction.
  mutable Mutex mutex_{lock_rank::kDispatcher};
  engine::DbServer* server_ MOPE_PT_GUARDED_BY(mutex_);
  size_t max_reply_payload_bytes_;
  obs::Clock* clock_;
  // Handles into the server's registry (so the stats endpoint serves them).
  // Atomic targets: safe to bump without the dispatch mutex.
  obs::Counter* frames_served_;
  obs::ExpHistogram* dispatch_ns_;
};

}  // namespace mope::net

#endif  // MOPE_NET_DISPATCHER_H_
