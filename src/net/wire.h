#ifndef MOPE_NET_WIRE_H_
#define MOPE_NET_WIRE_H_

/// \file wire.h
/// The MOPE client/server wire protocol.
///
/// Every message travels in one length-prefixed binary frame:
///
///   offset  size  field
///        0     4  magic 0x4D4F5057 ("MOPW", little-endian u32)
///        4     1  protocol version (1 or kWireVersion)
///        5     1  message type
///        6     1  flags (version >= 2; must be zero in version 1)
///        7     1  reserved, must be zero
///        8     4  payload length (little-endian u32, <= kMaxPayloadBytes)
///       12     4  CRC-32 (IEEE) of the payload
///       16     …  extension fields selected by `flags`, then the payload
///
/// Version 2 adds two optional extensions between the header and payload,
/// in flag-bit order and excluded from both the payload length and the CRC:
///
///   kFrameFlagHasTraceId  an 8-byte little-endian trace id
///   kFrameFlagHasProfile  a u32 length followed by that many bytes of
///                         profile (StatsReply-encoded name/u64 pairs).
///                         On a request an empty profile section asks the
///                         server to attribute this request's resource
///                         deltas; the reply carries them back.
///
/// Frames that use no extension are still emitted as byte-identical
/// version-1 frames, so an old peer interoperates until tracing or
/// profiling is actually used; unknown flag bits are rejected as Corruption
/// rather than silently mis-framed.
///
/// Payloads are encoded with the same value codec as catalog snapshots
/// (engine/codec.h). Request/reply pairs mirror proxy::ServerConnection:
/// ExecuteRangeBatch, CountRangeBatch, GetSchema; any server-side error
/// comes back as a kStatusReply frame carrying the Status code and message.
///
/// Decoders never trust the peer: magic/version/reserved/length/CRC are all
/// checked before a payload byte is looked at, every payload field is
/// bounds-checked, and a ModularInterval is validated *before* construction
/// (the constructor MOPE_CHECKs, and a hostile frame must not abort the
/// process). Framing violations decode to Corruption; connection loss and
/// deadline expiry to Unavailable (the retryable class).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/table.h"
#include "net/transport.h"

namespace mope::net {

inline constexpr uint32_t kWireMagic = 0x4D4F5057;  // "MOPW"
/// Newest protocol version this build speaks. Traceless frames are still
/// emitted as version 1 (see file comment).
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Flags byte (offset 6) bits understood by this build.
inline constexpr uint8_t kFrameFlagHasTraceId = 0x01;
inline constexpr uint8_t kFrameFlagHasProfile = 0x02;
inline constexpr size_t kTraceIdBytes = 8;
inline constexpr size_t kProfileLengthBytes = 4;
/// Upper bound on a payload; anything larger is rejected before allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class MessageType : uint8_t {
  kRangeBatchRequest = 1,  ///< body: RangeBatchRequest
  kRangeBatchReply = 2,    ///< body: rows with ids
  kCountBatchRequest = 3,  ///< body: RangeBatchRequest (count-only)
  kCountBatchReply = 4,    ///< body: u64 count
  kSchemaRequest = 5,      ///< body: table name
  kSchemaReply = 6,        ///< body: Schema
  kStatusReply = 7,        ///< body: non-OK Status (code + message)
  kStatsRequest = 8,       ///< body: empty; asks for the server's metrics
  kStatsReply = 9,         ///< body: StatsReply (sorted name/value pairs)
};

/// A decoded frame. `type` is the raw on-wire byte: framing layers pass
/// unknown types through so the dispatcher can answer them with a clean
/// Status instead of dropping the connection. `trace_id` is nonzero when the
/// peer stamped the frame with an active query trace (version-2 extension).
/// `has_profile` is true when the frame carried the profile extension —
/// empty on a request (meaning "profile me"), filled with attributed
/// counter deltas on a reply.
struct Frame {
  uint8_t type = 0;
  uint64_t trace_id = 0;
  bool has_profile = false;
  std::string profile;  ///< StatsReply-encoded; meaningful iff has_profile.
  std::string payload;
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
uint32_t Crc32(std::string_view bytes);

/// Serializes one frame (header + payload). A frame using no extension
/// (zero `trace_id`, `has_profile` false) is emitted as a version-1 frame,
/// byte-identical to what older builds emit; any extension selects version
/// 2. `profile` is the StatsReply-encoded profile section (empty = request
/// for one). Precondition (MOPE_CHECKed): payload and profile each fit in
/// kMaxPayloadBytes — for unbounded or peer-influenced data use WriteFrame
/// (client side) or the dispatcher's reply cap (server side), which surface
/// overflow as a Status instead.
std::string EncodeFrame(MessageType type, std::string payload,
                        uint64_t trace_id = 0, bool has_profile = false,
                        std::string_view profile = {});

/// Validates and decodes the frame at the front of `bytes`; on success sets
/// `*consumed` to its total size. Corruption on any header/CRC violation;
/// Unavailable when `bytes` holds less than one whole frame (more input may
/// still arrive).
Result<Frame> DecodeFrame(std::string_view bytes, size_t* consumed);

/// Reads one whole raw frame (header + payload bytes) off a transport.
/// Unavailable on timeout or connection loss; Corruption as in DecodeFrame.
Result<std::string> ReadFrameBytes(Transport* transport);

/// ReadFrameBytes + DecodeFrame.
Result<Frame> ReadFrame(Transport* transport);

/// Encodes and writes one frame. InvalidArgument (no bytes written) when the
/// payload (or profile section) exceeds kMaxPayloadBytes.
Status WriteFrame(Transport* transport, MessageType type, std::string payload,
                  uint64_t trace_id = 0, bool has_profile = false,
                  std::string_view profile = {});

// --- Message bodies -------------------------------------------------------

/// ExecuteRangeBatch / CountRangeBatch request (they share a body; the frame
/// type selects rows-vs-count).
struct RangeBatchRequest {
  std::string table;
  std::string column;
  std::vector<ModularInterval> ranges;
};

using RowsWithIds = std::vector<std::pair<engine::RowId, engine::Row>>;

std::string EncodeRangeBatchRequest(const RangeBatchRequest& request);
Result<RangeBatchRequest> DecodeRangeBatchRequest(std::string_view payload);

std::string EncodeRangeBatchReply(const RowsWithIds& rows);
Result<RowsWithIds> DecodeRangeBatchReply(std::string_view payload);

std::string EncodeCountBatchReply(uint64_t count);
Result<uint64_t> DecodeCountBatchReply(std::string_view payload);

std::string EncodeSchemaRequest(const std::string& table);
Result<std::string> DecodeSchemaRequest(std::string_view payload);

std::string EncodeSchemaReply(const engine::Schema& schema);
Result<engine::Schema> DecodeSchemaReply(std::string_view payload);

/// Server metrics snapshot: name/value pairs sorted by name (the order
/// obs::MetricsRegistry::Snapshot produces). Histograms arrive flattened to
/// `<name>.count` / `<name>.sum` / `<name>.le.<bound>` entries.
using StatsReply = std::vector<std::pair<std::string, uint64_t>>;

std::string EncodeStatsReply(const StatsReply& stats);
Result<StatsReply> DecodeStatsReply(std::string_view payload);

/// Precondition: !status.ok() (an OK status reply is meaningless on the wire
/// and is rejected by the decoder).
std::string EncodeStatusReply(const Status& status);

/// Decodes the carried error into `*out`; the return value reports decode
/// failures (out-param rather than Result<Status>, which would be ambiguous).
Status DecodeStatusReply(std::string_view payload, Status* out);

/// True when `status` is a transient transport failure worth retrying.
inline bool IsTransient(const Status& status) {
  return status.IsUnavailable();
}

}  // namespace mope::net

#endif  // MOPE_NET_WIRE_H_
