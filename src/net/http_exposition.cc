#include "net/http_exposition.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/log.h"

namespace mope::net {

namespace {

/// Assembles one complete HTTP/1.1 response. Always closes the connection:
/// the endpoint serves scrapers, not browsers, and one-shot connections keep
/// the state machine trivial.
std::string MakeResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                code, reason, content_type, body.size());
  out += head;
  out += body;
  return out;
}

std::string U64Field(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Value of `key` in a `k=v&k=v` query string; empty when absent. Metric
/// names and window counts never need percent-decoding, so none is done.
std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string_view pair =
        query.substr(pos, amp == std::string_view::npos ? std::string_view::npos
                                                        : amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return {};
}

}  // namespace

HttpExposition::HttpExposition(engine::DbServer* server,
                               HttpExpositionOptions options,
                               obs::Clock* clock)
    : server_(server),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : obs::SystemClock()),
      requests_(server->metrics()->GetCounter("net.http.requests")),
      bad_requests_(server->metrics()->GetCounter("net.http.bad_requests")) {}

HttpExposition::~HttpExposition() { Stop(); }

Status HttpExposition::Start() {
  MOPE_ASSIGN_OR_RETURN(listener_, TcpListener::Bind(options_.host,
                                                     options_.port));
  start_ns_ = clock_->NowNanos();
  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpExposition::Stop() {
  if (stopping_.exchange(true)) {
    if (serve_thread_.joinable()) serve_thread_.join();
    return;
  }
  if (listener_ != nullptr) listener_->Close();
  if (serve_thread_.joinable()) serve_thread_.join();
}

void HttpExposition::ServeLoop() {
  SocketOptions conn_options;
  conn_options.read_timeout_ms = options_.read_timeout_ms;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<SocketTransport>> accepted =
        listener_->Accept(options_.poll_interval_ms, conn_options);
    if (!accepted.ok()) break;  // Listener closed: shutting down.
    if (accepted.value() == nullptr) continue;  // Poll timeout; re-check flag.
    // Serve inline: responses are small and rendered from atomic reads, so
    // one connection at a time bounds resource use without hurting scrapes.
    ServeConnection(accepted.value().get());
  }
}

void HttpExposition::ServeConnection(SocketTransport* conn) {
  // Read until the end of the request head, the size cap, or the deadline.
  // The cap bounds the head itself, not just the bytes read so far: an
  // oversized head that arrives in a single read is still rejected.
  std::string request;
  char buf[1024];
  while (true) {
    const size_t head_end = request.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      if (head_end + 4 <= options_.max_request_bytes) break;
      bad_requests_->Increment();
      const std::string response = MakeResponse(
          431, "Request Header Fields Too Large", "text/plain",
          "request too large\n");
      (void)conn->Write(response.data(), response.size());
      return;
    }
    if (request.size() >= options_.max_request_bytes) {
      bad_requests_->Increment();
      const std::string response = MakeResponse(
          431, "Request Header Fields Too Large", "text/plain",
          "request too large\n");
      (void)conn->Write(response.data(), response.size());
      return;
    }
    const Result<size_t> n = conn->Read(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) {
      bad_requests_->Increment();
      return;  // Timeout, reset, or EOF mid-head: nothing to answer.
    }
    request.append(buf, n.value());
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = request.find("\r\n");
  std::string_view line(request.data(), line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    bad_requests_->Increment();
    const std::string response =
        MakeResponse(400, "Bad Request", "text/plain", "bad request\n");
    (void)conn->Write(response.data(), response.size());
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const std::string response = HandleRequest(method, target);
  (void)conn->Write(response.data(), response.size());
}

std::string HttpExposition::HandleRequest(std::string_view method,
                                          std::string_view target) {
  requests_->Increment();
  if (method != "GET") {
    bad_requests_->Increment();
    return MakeResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is served\n");
  }
  // Split off the query string: /vars consumes it, every other route
  // scrapes the same with or without one.
  const size_t q = target.find('?');
  const std::string_view path =
      q == std::string_view::npos ? target : target.substr(0, q);
  const std::string_view query =
      q == std::string_view::npos ? std::string_view{} : target.substr(q + 1);

  MOPE_LOG(kDebug, "http", "request").Arg("path", path);
  if (path == "/metrics") {
    return MakeResponse(200, "OK", "text/plain; version=0.0.4",
                        MetricsBody());
  }
  if (path == "/healthz") {
    return MakeResponse(200, "OK", "text/plain", HealthzBody());
  }
  if (path == "/statusz") {
    return MakeResponse(200, "OK", "application/json", StatuszBody());
  }
  if (path == "/vars") {
    return VarsResponse(query);
  }
  if (path == "/alertz") {
    return AlertzResponse();
  }
  bad_requests_->Increment();
  return MakeResponse(404, "Not Found", "text/plain",
                      "routes: /metrics /healthz /statusz /vars /alertz\n");
}

std::string HttpExposition::VarsResponse(std::string_view query) {
  if (sampler_ == nullptr) {
    bad_requests_->Increment();
    return MakeResponse(503, "Service Unavailable", "text/plain",
                        "time-series sampler disabled "
                        "(start the daemon with --sample-every-ms)\n");
  }
  const std::string prefix(QueryParam(query, "metric"));
  const std::string_view window_raw = QueryParam(query, "window");
  // Default window: the full ring. An explicit window must be a positive
  // integer no larger than the ring; everything else is the client's error.
  size_t window = sampler_->max_window();
  if (!window_raw.empty()) {
    uint64_t parsed = 0;
    bool ok = true;
    for (const char c : window_raw) {
      if (c < '0' || c > '9' || parsed > sampler_->max_window()) {
        ok = false;
        break;
      }
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!ok || parsed == 0 || parsed > sampler_->max_window()) {
      bad_requests_->Increment();
      return MakeResponse(
          400, "Bad Request", "text/plain",
          "window must be an integer in [1, " +
              std::to_string(sampler_->max_window()) + "]\n");
    }
    window = static_cast<size_t>(parsed);
  }
  const Result<std::string> body = sampler_->RenderJson(prefix, window);
  if (!body.ok()) {
    bad_requests_->Increment();
    if (body.status().IsNotFound()) {
      return MakeResponse(404, "Not Found", "text/plain",
                          body.status().ToString() + "\n");
    }
    return MakeResponse(400, "Bad Request", "text/plain",
                        body.status().ToString() + "\n");
  }
  return MakeResponse(200, "OK", "application/json", body.value());
}

std::string HttpExposition::AlertzResponse() {
  if (alerts_ == nullptr) {
    bad_requests_->Increment();
    return MakeResponse(503, "Service Unavailable", "text/plain",
                        "alert engine disabled "
                        "(start the daemon with --alert-rule or "
                        "--default-alerts)\n");
  }
  return MakeResponse(200, "OK", "application/json", alerts_->RenderJson());
}

std::string HttpExposition::MetricsBody() const {
  return server_->metrics()->RenderText();
}

std::string HttpExposition::HealthzBody() const {
  // Liveness plus durability state. Everything here is either const after
  // OpenStorage (which completes before serving starts) or an atomic
  // counter — no lock shared with the query path.
  std::string body = "ok\n";
  const bool attached = server_->has_storage();
  body += "storage=";
  body += attached ? "attached" : "none";
  body += "\n";
  if (attached) {
    engine::DurableCatalog* durable = server_->durable_catalog();
    body += "crash_recovered=";
    body += durable->recovered_from_crash() ? "true" : "false";
    body += "\n";
    body += "recovered_records=";
    body += U64Field(durable->storage()->recovered_records());
    body += "\n";
    body += "checkpoints=";
    body +=
        U64Field(server_->metrics()
                     ->GetCounter("storage.engine.checkpoints")->Value());
    body += "\n";
  }
  return body;
}

std::string HttpExposition::StatuszBody() const {
  const uint64_t now = clock_->NowNanos();
  std::string body = "{\"uptime_ns\":";
  body += U64Field(now >= start_ns_ ? now - start_ns_ : 0);

  body += ",\"storage\":{\"attached\":";
  const bool attached = server_->has_storage();
  body += attached ? "true" : "false";
  if (attached) {
    engine::DurableCatalog* durable = server_->durable_catalog();
    body += ",\"crash_recovered\":";
    body += durable->recovered_from_crash() ? "true" : "false";
    body += ",\"recovered_records\":";
    body += U64Field(durable->storage()->recovered_records());
  }
  body += "}";

  obs::LeakageAuditor* auditor = server_->leakage_auditor();
  if (auditor != nullptr) {
    const obs::LeakageVerdict v = auditor->Verdict();
    body += ",\"leakage\":{\"observations\":";
    body += U64Field(v.observations);
    body += ",\"distinct\":";
    body += U64Field(v.distinct);
    body += ",\"largest_gap\":";
    body += U64Field(v.largest_gap);
    body += ",\"offset_estimate\":";
    body += U64Field(v.offset_estimate);
    char frac[64];
    std::snprintf(frac, sizeof(frac), ",\"confidence\":%.6g,\"chi2\":%.6g",
                  v.confidence, v.chi2);
    body += frac;
    body += ",\"alert\":";
    body += v.alert ? "true" : "false";
    body += "}";
  } else {
    body += ",\"leakage\":null";
  }

  // Query-level summary: request totals by statement kind plus dispatch
  // latency quantiles — the numbers an operator checks before opening the
  // full metrics dump. All atomic reads; no lock shared with dispatch.
  obs::MetricsRegistry* metrics = server_->metrics();
  body += ",\"queries\":{\"range_batch\":";
  body += U64Field(metrics->GetCounter("server.requests.range_batch")->Value());
  body += ",\"count_batch\":";
  body += U64Field(metrics->GetCounter("server.requests.count_batch")->Value());
  body += ",\"schema\":";
  body += U64Field(metrics->GetCounter("server.requests.schema")->Value());
  body += ",\"stats\":";
  body += U64Field(metrics->GetCounter("server.requests.stats")->Value());
  obs::ExpHistogram* dispatch = metrics->GetHistogram("server.dispatch_ns");
  body += ",\"dispatch_ns\":{\"count\":";
  body += U64Field(dispatch->Count());
  body += ",\"p50\":";
  body += U64Field(dispatch->QuantileInterpolated(0.50));
  body += ",\"p95\":";
  body += U64Field(dispatch->QuantileInterpolated(0.95));
  body += ",\"p99\":";
  body += U64Field(dispatch->QuantileInterpolated(0.99));
  body += "}}";

  body += ",\"metrics\":";
  body += server_->metrics()->RenderJson();
  body += "}";
  return body;
}

}  // namespace mope::net
