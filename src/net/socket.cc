#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mope::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  // strerror's static buffer is fine here: every caller passes a just-read
  // errno from its own thread and the string is copied out immediately; the
  // racy alternative (strerror_l / GNU strerror_r) buys nothing for these
  // advisory messages.
  return Status::Unavailable(
      what + ": " + std::strerror(err));  // NOLINT(concurrency-mt-unsafe)
}

/// "localhost" or dotted-quad IPv4 only — no DNS (see file comment).
Result<sockaddr_in> ResolveIpv4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "host must be 'localhost' or a numeric IPv4 address, got '" + host +
        "'");
  }
  return addr;
}

/// Polls `fd` for `events` within `timeout_ms`. Returns false on timeout.
Result<bool> PollFd(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

}  // namespace

Result<size_t> SocketTransport::Read(char* buf, size_t max) {
  if (fd_ < 0) return Status::Unavailable("socket closed");
  while (true) {
    MOPE_ASSIGN_OR_RETURN(bool ready,
                          PollFd(fd_, POLLIN, options_.read_timeout_ms));
    if (!ready) return Status::Unavailable("read deadline expired");
    const ssize_t n = ::recv(fd_, buf, max, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return static_cast<size_t>(0);  // orderly EOF
    // EAGAIN after a positive poll is a spurious wakeup on the non-blocking
    // fd; re-arm the poll rather than spin on recv.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv", errno);
  }
}

Status SocketTransport::Write(const char* data, size_t n) {
  if (fd_ < 0) return Status::Unavailable("socket closed");
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer hanging up must surface as a Status, not SIGPIPE.
    const ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc >= 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The fd is non-blocking, so a peer that stops reading surfaces here
      // instead of wedging the thread inside send().
      MOPE_ASSIGN_OR_RETURN(bool ready,
                            PollFd(fd_, POLLOUT, options_.write_timeout_ms));
      if (!ready) return Status::Unavailable("write deadline expired");
      continue;
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

void SocketTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<bool> SocketTransport::Poll(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("socket closed");
  return PollFd(fd_, POLLIN, timeout_ms);
}

Result<std::unique_ptr<SocketTransport>> ConnectTcp(
    const std::string& host, uint16_t port, const SocketOptions& options) {
  MOPE_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);

  // Non-blocking connect bounded by the connect deadline.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("connect to " + host + ":" + std::to_string(port), err);
  }
  if (rc != 0) {
    auto ready = PollFd(fd, POLLOUT, options.connect_timeout_ms);
    if (!ready.ok() || !*ready) {
      ::close(fd);
      return ready.ok() ? Status::Unavailable("connect to " + host + ":" +
                                              std::to_string(port) +
                                              " timed out")
                        : ready.status();
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      return ErrnoStatus("connect to " + host + ":" + std::to_string(port),
                         so_error != 0 ? so_error : errno);
    }
  }
  // The fd stays O_NONBLOCK for its whole life: Read/Write bound every wait
  // with poll(2), and a blocking send() could wedge a thread forever behind
  // a peer that never drains its receive buffer.

  // Small request/reply frames: latency beats Nagle batching.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketTransport>(fd, options);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(const std::string& host,
                                                       uint16_t port) {
  MOPE_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), err);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("listen", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("getsockname", err);
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

Result<std::unique_ptr<SocketTransport>> TcpListener::Accept(
    int timeout_ms, const SocketOptions& options) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Unavailable("listener closed");
  MOPE_ASSIGN_OR_RETURN(bool ready, PollFd(fd, POLLIN, timeout_ms));
  if (!ready) return std::unique_ptr<SocketTransport>(nullptr);
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      // Non-blocking like ConnectTcp's fds: session writes must hit the
      // poll-based write deadline, not block in send() forever.
      const int flags = ::fcntl(client, F_GETFL, 0);
      ::fcntl(client, F_SETFL, flags | O_NONBLOCK);
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_unique<SocketTransport>(client, options);
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

}  // namespace mope::net
