#include "net/server.h"

#include <utility>

#include "net/wire.h"
#include "obs/log.h"

namespace mope::net {

Result<std::unique_ptr<TcpServer>> TcpServer::Start(engine::DbServer* server,
                                                    TcpServerOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("daemon needs a DbServer");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("daemon needs at least one worker");
  }
  MOPE_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                        TcpListener::Bind(options.host, options.port));
  auto daemon = std::unique_ptr<TcpServer>(
      new TcpServer(server, std::move(options), std::move(listener)));
  daemon->listen_thread_ = std::thread([d = daemon.get()] { d->ListenLoop(); });
  daemon->workers_.reserve(daemon->options_.num_workers);
  for (int i = 0; i < daemon->options_.num_workers; ++i) {
    daemon->workers_.emplace_back([d = daemon.get()] { d->WorkerLoop(); });
  }
  return daemon;
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    return;  // second Stop (e.g. destructor after explicit Stop)
  }
  // Acquire and release the queue mutex between raising the flag and
  // notifying. Without it a worker that evaluated its wait predicate (false)
  // but had not yet blocked would miss this wakeup and sleep forever: the
  // empty critical section forces such a worker to either see the flag or be
  // fully parked in the wait before the notify fires.
  { const MutexLock lock(&queue_mutex_); }
  queue_cv_.NotifyAll();
  if (listen_thread_.joinable()) listen_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  listener_->Close();
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::ListenLoop() {
  while (!stopping_.load()) {
    auto session = listener_->Accept(options_.poll_interval_ms,
                                     options_.session_options);
    if (!session.ok()) {
      // Accept failures are transient (e.g. the peer already reset); keep
      // serving unless we're shutting down.
      continue;
    }
    if (*session == nullptr) continue;  // poll timeout: re-check stop flag
    connections_accepted_->Increment();
    bool admitted = false;
    {
      const MutexLock lock(&queue_mutex_);
      if (pending_.size() < options_.max_pending_sessions) {
        pending_.push_back(std::move(*session));
        admitted = true;
      }
    }
    if (admitted) {
      MOPE_LOG(kDebug, "net", "connection_accepted")
          .Arg("total", connections_accepted_->Value());
      queue_cv_.NotifyOne();
    } else {
      // Every worker is busy and the backlog is full: shed this connection
      // now (close reads as Unavailable client-side and is retried) rather
      // than park it in an unbounded queue.
      connections_rejected_->Increment();
      MOPE_LOG(kWarn, "net", "connection_rejected")
          .Arg("pending_cap", options_.max_pending_sessions)
          .Arg("total_rejected", connections_rejected_->Value());
      (*session)->Close();
    }
  }
}

void TcpServer::WorkerLoop() {
  while (true) {
    std::unique_ptr<SocketTransport> session;
    {
      MutexLock lock(&queue_mutex_);
      // An explicit loop instead of the predicate-lambda wait: the capability
      // analysis checks a lambda body as its own function, which would not
      // see the lock this scope holds over `pending_`.
      while (!stopping_.load() && pending_.empty()) {
        queue_cv_.Wait(lock);
      }
      if (pending_.empty()) return;  // stopping and drained
      session = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeSession(session.get());
    session->Close();
    MOPE_LOG(kDebug, "net", "session_closed");
  }
}

void TcpServer::ServeSession(SocketTransport* session) {
  std::string buffer;
  int idle_ms = 0;
  while (!stopping_.load()) {
    // Block in short slices so shutdown is never stuck behind an idle client.
    auto ready = session->Poll(options_.poll_interval_ms);
    if (!ready.ok()) return;
    if (!*ready) {
      // A silent client holds one of num_workers slots; give it up after the
      // idle budget so connected-but-quiet peers cannot starve the pool.
      idle_ms += options_.poll_interval_ms;
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms) {
        return;
      }
      continue;
    }
    idle_ms = 0;

    char chunk[4096];
    auto n = session->Read(chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) return;  // peer hung up (or reset): done
    buffer.append(chunk, *n);

    // Serve every complete frame in the buffer (clients may pipeline).
    while (buffer.size() >= kFrameHeaderBytes) {
      size_t consumed = 0;
      auto reply = dispatcher_.HandleFrameBytes(buffer, &consumed);
      if (!reply.ok()) {
        if (reply.status().IsUnavailable()) break;  // incomplete: read more
        return;  // framing violation: this stream cannot be trusted
      }
      buffer.erase(0, consumed);
      if (!session->Write(reply->data(), reply->size()).ok()) return;
    }
  }
}

}  // namespace mope::net
