#include "net/dispatcher.h"

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/trace_export.h"

namespace mope::net {

namespace {

/// Encodes an application-level outcome: a reply frame on success, a
/// kStatusReply frame on error. Only called with already-validated framing.
/// A reply body over `max_payload` bytes is itself an application-level
/// outcome — EncodeFrame would MOPE_CHECK on it, and a legitimate (or
/// hostile) wide query must cost a StatusReply, not the process.
/// `trace_id` (the request's, possibly 0) is echoed on whichever frame goes
/// back so the client can attribute the reply to its span tree; likewise a
/// captured `profile` rides on both outcomes — a failed query still consumed
/// the resources its probe measured.
template <typename T, typename Encode>
std::string ReplyOrStatus(const Result<T>& result, MessageType reply_type,
                          Encode&& encode, size_t max_payload,
                          uint64_t trace_id, bool has_profile = false,
                          std::string_view profile = {}) {
  if (!result.ok()) {
    return EncodeFrame(MessageType::kStatusReply,
                       EncodeStatusReply(result.status()), trace_id,
                       has_profile, profile);
  }
  std::string body = encode(result.value());
  if (body.size() > max_payload) {
    return EncodeFrame(
        MessageType::kStatusReply,
        EncodeStatusReply(Status::InvalidArgument(
            "result too large for one frame (" +
            std::to_string(body.size()) + " > " +
            std::to_string(max_payload) +
            " bytes); narrow the ranges or lower the batch size")),
        trace_id, has_profile, profile);
  }
  return EncodeFrame(reply_type, std::move(body), trace_id, has_profile,
                     profile);
}

/// Fills `*profile_out` with the probe's deltas plus the request's trace id
/// and returns the wire-encoded profile section.
std::string CaptureProfile(const engine::ServerProfileProbe& probe,
                           uint64_t trace_id, StatsReply* profile_out) {
  *profile_out = probe.Delta();
  profile_out->emplace_back("profile.trace_id", trace_id);
  return EncodeStatsReply(*profile_out);
}

/// Marks a completed dispatch in the crash flight recorder and persists the
/// black box if it has new entries. Called outside the dispatch mutex: a
/// kill -9 right after this point leaves a black box whose last event names
/// the final query the server actually finished.
void RecordDispatchDone(uint64_t trace_id) {
  if (obs::FlightRecorder* recorder = obs::FlightRecorder::Installed()) {
    recorder->Record(obs::FlightRecorder::EventKind::kEvent,
                     "server.dispatch.done", trace_id);
    // Best-effort by design: a full disk must not fail queries, and the
    // recorder already logged the write error under its own subsystem.
    (void)recorder->PersistIfDirty();
  }
}

}  // namespace

WireDispatcher::WireDispatcher(engine::DbServer* server,
                               DispatcherOptions options)
    : server_(server),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : obs::SystemClock()),
      frames_served_(
          server->metrics()->GetCounter("net.server.frames_served")),
      slow_queries_(server->metrics()->GetCounter("server.slow_queries")),
      dispatch_ns_(server->metrics()->GetHistogram("server.dispatch_ns")),
      requests_range_batch_(
          server->metrics()->GetCounter("server.requests.range_batch")),
      requests_count_batch_(
          server->metrics()->GetCounter("server.requests.count_batch")),
      requests_schema_(
          server->metrics()->GetCounter("server.requests.schema")),
      requests_stats_(server->metrics()->GetCounter("server.requests.stats")) {
}

WireDispatcher::WireDispatcher(engine::DbServer* server,
                               size_t max_reply_payload_bytes,
                               obs::Clock* clock)
    : WireDispatcher(server, [&] {
        DispatcherOptions options;
        options.max_reply_payload_bytes = max_reply_payload_bytes;
        options.clock = clock;
        return options;
      }()) {}

Result<std::string> WireDispatcher::HandleFrameBytes(std::string_view bytes,
                                                     size_t* consumed) {
  size_t frame_size = 0;
  MOPE_ASSIGN_OR_RETURN(Frame frame, DecodeFrame(bytes, &frame_size));
  if (consumed != nullptr) *consumed = frame_size;

  // Query-log sampling: every Nth data-bearing request is profiled as if
  // the client had asked for it, and emitted as an `event=query` line after
  // dispatch. The decision is made pre-dispatch so the probe brackets the
  // engine call exactly like a client-requested profile does.
  const bool data_bearing =
      frame.type == static_cast<uint8_t>(MessageType::kRangeBatchRequest) ||
      frame.type == static_cast<uint8_t>(MessageType::kCountBatchRequest);
  const bool sampled =
      data_bearing && options_.query_log_sample > 0 &&
      query_seq_.fetch_add(1, std::memory_order_relaxed) %
              options_.query_log_sample ==
          0;
  const bool want_profile = frame.has_profile || sampled;
  StatsReply profile;

  if (options_.slow_query_threshold_ns == 0) {
    const uint64_t start_ns = clock_->NowNanos();
    std::string reply;
    {
      const MutexLock lock(&mutex_);
      MOPE_ASSIGN_OR_RETURN(reply,
                            HandleFrameLocked(frame, want_profile, &profile));
      server_->AddTransferBytes(frame_size, reply.size());
    }
    frames_served_->Increment();
    const uint64_t elapsed_ns = clock_->NowNanos() - start_ns;
    dispatch_ns_->Observe(elapsed_ns);
    if (sampled) EmitQueryLog(frame, elapsed_ns, profile);
    RecordDispatchDone(frame.trace_id);
    return reply;
  }

  // Slow-query mode: give the request a server-side trace so instrumented
  // layers underneath (storage WAL, buffer pool, checkpoint) attach spans.
  // Adopting the wire trace id (when the client sent one) is what lets the
  // operator join this trace against the client's own span tree.
  obs::Trace trace("server.dispatch", clock_, frame.trace_id);
  const obs::ScopedTraceActivation activation(&trace);
  const uint64_t start_ns = clock_->NowNanos();
  std::string reply;
  {
    const obs::ScopedSpan span("server.handle");
    const MutexLock lock(&mutex_);
    MOPE_ASSIGN_OR_RETURN(reply,
                          HandleFrameLocked(frame, want_profile, &profile));
    server_->AddTransferBytes(frame_size, reply.size());
  }
  frames_served_->Increment();
  const uint64_t elapsed_ns = clock_->NowNanos() - start_ns;
  dispatch_ns_->Observe(elapsed_ns);
  if (elapsed_ns >= options_.slow_query_threshold_ns) {
    ReportSlowQuery(frame, elapsed_ns, trace);
  }
  if (sampled) EmitQueryLog(frame, elapsed_ns, profile);
  // The server-side trace id (== frame.trace_id when the client sent one),
  // so the done-marker joins the span events already in the ring.
  RecordDispatchDone(trace.trace_id());
  return reply;
}

void WireDispatcher::EmitQueryLog(const Frame& frame, uint64_t elapsed_ns,
                                  const StatsReply& profile) {
  // One line per sampled query, full profile inline: grep `event=query` and
  // every resource the server attributed to the request is on the line,
  // joinable against client-side traces via trace_id. Flows through the
  // default logger, so its rate limiter has the final say under load.
  obs::LogEvent event(obs::Logger::Default(), obs::LogLevel::kInfo, "server",
                      "query");
  event.Arg("type", static_cast<uint64_t>(frame.type))
      .Arg("elapsed_ns", elapsed_ns)
      .Arg("trace_id", frame.trace_id);
  for (const auto& [name, value] : profile) {
    event.Arg(name.c_str(), value);
  }
}

void WireDispatcher::ReportSlowQuery(const Frame& frame, uint64_t elapsed_ns,
                                     const obs::Trace& trace) {
  slow_queries_->Increment();

  // Aggregate the span tree into a per-name time breakdown: one log line an
  // operator can read without opening the trace viewer.
  std::map<std::string, uint64_t> by_name;
  for (const obs::Span& span : trace.spans()) {
    if (span.end_ns >= span.start_ns) {
      by_name[span.name] += span.end_ns - span.start_ns;
    }
  }
  {
    obs::LogEvent event(obs::Logger::Default(), obs::LogLevel::kWarn,
                        "server", "slow_query");
    event.Arg("type", static_cast<uint64_t>(frame.type))
        .Arg("elapsed_ns", elapsed_ns)
        .Arg("threshold_ns", options_.slow_query_threshold_ns);
    for (const auto& [name, dur_ns] : by_name) {
      event.Arg(("span_ns." + name).c_str(), dur_ns);
    }
  }

  if (options_.trace_env != nullptr &&
      !options_.slow_query_trace_path.empty()) {
    const Status written = options_.trace_env->WriteFileAtomic(
        options_.slow_query_trace_path, obs::ExportChromeTrace(trace));
    if (!written.ok()) {
      MOPE_LOG(kWarn, "server", "slow_query_trace_write_failed")
          .Arg("path", options_.slow_query_trace_path)
          .Arg("error", written.message());
    }
  }
}

void WireDispatcher::MaybeCheckpointLocked(const Frame& frame) {
  if (options_.checkpoint_every == 0 || !server_->has_storage()) return;
  if (++frames_since_checkpoint_ < options_.checkpoint_every) return;
  frames_since_checkpoint_ = 0;
  // Inside the dispatch critical section: exactly the writer quiescence the
  // checkpoint protocol requires. The cost lands in this request's dispatch
  // latency (and its trace, when slow-query mode is on) by design — the
  // periodic-durability tax should be visible, not hidden.
  const obs::ScopedSpan span("server.checkpoint");
  const Status status = server_->CheckpointStorage();
  if (!status.ok()) {
    MOPE_LOG(kError, "server", "checkpoint_failed")
        .Arg("error", status.message());
  } else {
    MOPE_LOG(kDebug, "server", "checkpointed")
        .Arg("after_frames", options_.checkpoint_every)
        .Arg("trace_carried", frame.trace_id != 0);
  }
}

Result<engine::Schema> WireDispatcher::LookupSchemaLocked(
    const std::string& table) const {
  MOPE_ASSIGN_OR_RETURN(
      const engine::Table* tbl,
      static_cast<const engine::DbServer*>(server_)->catalog().GetTable(
          table));
  return tbl->schema();
}

Result<std::string> WireDispatcher::HandleFrameLocked(const Frame& frame,
                                                      bool want_profile,
                                                      StatsReply* profile_out) {
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kRangeBatchRequest: {
      requests_range_batch_->Increment();
      auto request = DecodeRangeBatchRequest(frame.payload);
      if (!request.ok()) return request.status();
      // The probe brackets the engine call only: a periodic checkpoint that
      // happens to fire afterwards is a server policy cost, deliberately
      // excluded from the query's attributed profile (it shows up in the
      // dispatch latency and the slow-query trace instead).
      std::optional<engine::ServerProfileProbe> probe;
      if (want_profile) probe.emplace(server_);
      const Result<RowsWithIds> rows = server_->ExecuteRangeBatchWithIds(
          request->table, request->column, request->ranges);
      std::string encoded_profile;
      if (want_profile) {
        encoded_profile = CaptureProfile(*probe, frame.trace_id, profile_out);
      }
      std::string reply = ReplyOrStatus(
          rows, MessageType::kRangeBatchReply,
          [](const RowsWithIds& r) { return EncodeRangeBatchReply(r); },
          options_.max_reply_payload_bytes, frame.trace_id, want_profile,
          encoded_profile);
      MaybeCheckpointLocked(frame);
      return reply;
    }
    case MessageType::kCountBatchRequest: {
      requests_count_batch_->Increment();
      auto request = DecodeRangeBatchRequest(frame.payload);
      if (!request.ok()) return request.status();
      std::optional<engine::ServerProfileProbe> probe;
      if (want_profile) probe.emplace(server_);
      const Result<uint64_t> count = server_->CountRangeBatch(
          request->table, request->column, request->ranges);
      std::string encoded_profile;
      if (want_profile) {
        encoded_profile = CaptureProfile(*probe, frame.trace_id, profile_out);
      }
      std::string reply = ReplyOrStatus(
          count, MessageType::kCountBatchReply,
          [](uint64_t c) { return EncodeCountBatchReply(c); },
          options_.max_reply_payload_bytes, frame.trace_id, want_profile,
          encoded_profile);
      MaybeCheckpointLocked(frame);
      return reply;
    }
    case MessageType::kSchemaRequest: {
      requests_schema_->Increment();
      auto table = DecodeSchemaRequest(frame.payload);
      if (!table.ok()) return table.status();
      // Named helper rather than an immediately-invoked lambda: the thread
      // safety analysis treats a lambda as a separate function, so guarded
      // accesses inside one would not see the lock held here.
      const Result<engine::Schema> schema = LookupSchemaLocked(*table);
      return ReplyOrStatus(schema, MessageType::kSchemaReply,
                           [](const engine::Schema& s) {
                             return EncodeSchemaReply(s);
                           },
                           options_.max_reply_payload_bytes, frame.trace_id);
    }
    case MessageType::kStatsRequest: {
      requests_stats_->Increment();
      if (!frame.payload.empty()) {
        return Status::Corruption("stats request carries a payload");
      }
      // The snapshot covers everything credited to this server: engine.*
      // counters, wire bytes, and the net.server.* mirrors.
      return ReplyOrStatus(
          Result<StatsReply>(server_->metrics()->Snapshot()),
          MessageType::kStatsReply,
          [](const StatsReply& stats) { return EncodeStatsReply(stats); },
          options_.max_reply_payload_bytes, frame.trace_id);
    }
    case MessageType::kRangeBatchReply:
    case MessageType::kCountBatchReply:
    case MessageType::kSchemaReply:
    case MessageType::kStatsReply:
    case MessageType::kStatusReply:
      // A client sending us reply types is confused but the framing is
      // sound: answer, don't hang up.
      return EncodeFrame(MessageType::kStatusReply,
                         EncodeStatusReply(Status::InvalidArgument(
                             "reply message type in a request frame")),
                         frame.trace_id);
  }
  return EncodeFrame(MessageType::kStatusReply,
                     EncodeStatusReply(Status::InvalidArgument(
                         "unknown message type " +
                         std::to_string(frame.type))),
                     frame.trace_id);
}

}  // namespace mope::net
