#include "net/dispatcher.h"

#include <utility>

namespace mope::net {

namespace {

/// Encodes an application-level outcome: a reply frame on success, a
/// kStatusReply frame on error. Only called with already-validated framing.
/// A reply body over `max_payload` bytes is itself an application-level
/// outcome — EncodeFrame would MOPE_CHECK on it, and a legitimate (or
/// hostile) wide query must cost a StatusReply, not the process.
/// `trace_id` (the request's, possibly 0) is echoed on whichever frame goes
/// back so the client can attribute the reply to its span tree.
template <typename T, typename Encode>
std::string ReplyOrStatus(const Result<T>& result, MessageType reply_type,
                          Encode&& encode, size_t max_payload,
                          uint64_t trace_id) {
  if (!result.ok()) {
    return EncodeFrame(MessageType::kStatusReply,
                       EncodeStatusReply(result.status()), trace_id);
  }
  std::string body = encode(result.value());
  if (body.size() > max_payload) {
    return EncodeFrame(
        MessageType::kStatusReply,
        EncodeStatusReply(Status::InvalidArgument(
            "result too large for one frame (" +
            std::to_string(body.size()) + " > " +
            std::to_string(max_payload) +
            " bytes); narrow the ranges or lower the batch size")),
        trace_id);
  }
  return EncodeFrame(reply_type, std::move(body), trace_id);
}

}  // namespace

WireDispatcher::WireDispatcher(engine::DbServer* server,
                               size_t max_reply_payload_bytes,
                               obs::Clock* clock)
    : server_(server),
      max_reply_payload_bytes_(max_reply_payload_bytes),
      clock_(clock != nullptr ? clock : obs::SystemClock()),
      frames_served_(
          server->metrics()->GetCounter("net.server.frames_served")),
      dispatch_ns_(server->metrics()->GetHistogram("server.dispatch_ns")) {}

Result<std::string> WireDispatcher::HandleFrameBytes(std::string_view bytes,
                                                     size_t* consumed) {
  size_t frame_size = 0;
  MOPE_ASSIGN_OR_RETURN(Frame frame, DecodeFrame(bytes, &frame_size));
  if (consumed != nullptr) *consumed = frame_size;

  const uint64_t start_ns = clock_->NowNanos();
  const MutexLock lock(&mutex_);
  MOPE_ASSIGN_OR_RETURN(std::string reply, HandleFrameLocked(frame));
  server_->AddTransferBytes(frame_size, reply.size());
  frames_served_->Increment();
  dispatch_ns_->Observe(clock_->NowNanos() - start_ns);
  return reply;
}

Result<engine::Schema> WireDispatcher::LookupSchemaLocked(
    const std::string& table) const {
  MOPE_ASSIGN_OR_RETURN(
      const engine::Table* tbl,
      static_cast<const engine::DbServer*>(server_)->catalog().GetTable(
          table));
  return tbl->schema();
}

Result<std::string> WireDispatcher::HandleFrameLocked(const Frame& frame) {
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kRangeBatchRequest: {
      auto request = DecodeRangeBatchRequest(frame.payload);
      if (!request.ok()) return request.status();
      return ReplyOrStatus(
          server_->ExecuteRangeBatchWithIds(request->table, request->column,
                                            request->ranges),
          MessageType::kRangeBatchReply,
          [](const RowsWithIds& rows) { return EncodeRangeBatchReply(rows); },
          max_reply_payload_bytes_, frame.trace_id);
    }
    case MessageType::kCountBatchRequest: {
      auto request = DecodeRangeBatchRequest(frame.payload);
      if (!request.ok()) return request.status();
      return ReplyOrStatus(
          server_->CountRangeBatch(request->table, request->column,
                                   request->ranges),
          MessageType::kCountBatchReply,
          [](uint64_t count) { return EncodeCountBatchReply(count); },
          max_reply_payload_bytes_, frame.trace_id);
    }
    case MessageType::kSchemaRequest: {
      auto table = DecodeSchemaRequest(frame.payload);
      if (!table.ok()) return table.status();
      // Named helper rather than an immediately-invoked lambda: the thread
      // safety analysis treats a lambda as a separate function, so guarded
      // accesses inside one would not see the lock held here.
      const Result<engine::Schema> schema = LookupSchemaLocked(*table);
      return ReplyOrStatus(schema, MessageType::kSchemaReply,
                           [](const engine::Schema& s) {
                             return EncodeSchemaReply(s);
                           },
                           max_reply_payload_bytes_, frame.trace_id);
    }
    case MessageType::kStatsRequest: {
      if (!frame.payload.empty()) {
        return Status::Corruption("stats request carries a payload");
      }
      // The snapshot covers everything credited to this server: engine.*
      // counters, wire bytes, and the net.server.* mirrors.
      return ReplyOrStatus(
          Result<StatsReply>(server_->metrics()->Snapshot()),
          MessageType::kStatsReply,
          [](const StatsReply& stats) { return EncodeStatsReply(stats); },
          max_reply_payload_bytes_, frame.trace_id);
    }
    case MessageType::kRangeBatchReply:
    case MessageType::kCountBatchReply:
    case MessageType::kSchemaReply:
    case MessageType::kStatsReply:
    case MessageType::kStatusReply:
      // A client sending us reply types is confused but the framing is
      // sound: answer, don't hang up.
      return EncodeFrame(MessageType::kStatusReply,
                         EncodeStatusReply(Status::InvalidArgument(
                             "reply message type in a request frame")),
                         frame.trace_id);
  }
  return EncodeFrame(MessageType::kStatusReply,
                     EncodeStatusReply(Status::InvalidArgument(
                         "unknown message type " +
                         std::to_string(frame.type))),
                     frame.trace_id);
}

}  // namespace mope::net
