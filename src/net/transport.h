#ifndef MOPE_NET_TRANSPORT_H_
#define MOPE_NET_TRANSPORT_H_

/// \file transport.h
/// The byte-stream abstraction under the wire protocol.
///
/// A Transport is one side of a reliable, ordered duplex byte stream — a
/// connected TCP socket in production, a deterministic in-memory channel in
/// tests, or a fault-injecting wrapper around either. Framing (net/wire.h)
/// sits strictly on top: nothing below this interface knows what a message
/// is, which is what lets the fault injector cut, corrupt, or stall streams
/// at arbitrary byte positions.
///
/// Error contract: transient transport failures (timeouts, resets, closed
/// peers) surface as StatusCode::kUnavailable, which the client layer treats
/// as retryable; everything else is surfaced untouched and never retried.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace mope::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads up to `max` bytes into `buf`, blocking no longer than the
  /// transport's read deadline. Returns the number of bytes read (>= 1), or
  /// 0 on orderly end-of-stream; deadline expiry and broken connections are
  /// Unavailable. Precondition: max > 0.
  virtual Result<size_t> Read(char* buf, size_t max) = 0;

  /// Writes all `n` bytes or fails (no short writes).
  virtual Status Write(const char* data, size_t n) = 0;

  /// Closes the stream; further Reads/Writes fail. Idempotent.
  virtual void Close() = 0;
};

/// Scripted transport for tests and for parsing frames out of buffers:
/// Read() serves bytes from a fixed input string, Write() appends to an
/// output string.
class StringTransport final : public Transport {
 public:
  explicit StringTransport(std::string input) : input_(std::move(input)) {}

  Result<size_t> Read(char* buf, size_t max) override {
    if (closed_) return Status::Unavailable("transport closed");
    if (pos_ >= input_.size()) return static_cast<size_t>(0);
    const size_t n = std::min(max, input_.size() - pos_);
    input_.copy(buf, n, pos_);
    pos_ += n;
    return n;
  }

  Status Write(const char* data, size_t n) override {
    if (closed_) return Status::Unavailable("transport closed");
    output_.append(data, n);
    return Status::OK();
  }

  void Close() override { closed_ = true; }

  const std::string& output() const { return output_; }

 private:
  std::string input_;
  std::string output_;
  size_t pos_ = 0;
  bool closed_ = false;
};

}  // namespace mope::net

#endif  // MOPE_NET_TRANSPORT_H_
