#include "net/inmem.h"

#include <algorithm>

#include "net/wire.h"

namespace mope::net {

class InProcessChannel::ClientTransport final : public Transport {
 public:
  explicit ClientTransport(WireDispatcher* dispatcher)
      : dispatcher_(dispatcher) {}

  Result<size_t> Read(char* buf, size_t max) override {
    if (closed_) return Status::Unavailable("transport closed");
    if (reply_pos_ >= reply_.size()) {
      MOPE_RETURN_NOT_OK(Pump());
    }
    if (reply_pos_ >= reply_.size()) {
      // Nothing to serve and no complete request pending: on a real network
      // this is a read deadline expiring with the peer silent.
      return Status::Unavailable("read deadline expired (no reply pending)");
    }
    const size_t n = std::min(max, reply_.size() - reply_pos_);
    reply_.copy(buf, n, reply_pos_);
    reply_pos_ += n;
    return n;
  }

  Status Write(const char* data, size_t n) override {
    if (closed_) return Status::Unavailable("transport closed");
    pending_.append(data, n);
    return Status::OK();
  }

  void Close() override { closed_ = true; }

 private:
  /// Serves every complete request currently buffered, appending replies in
  /// order (a pipelined client gets pipelined replies).
  Status Pump() {
    size_t consumed = 0;
    while (pending_.size() >= kFrameHeaderBytes) {
      auto reply = dispatcher_->HandleFrameBytes(pending_, &consumed);
      if (!reply.ok()) {
        // Incomplete frame: wait for more bytes. Anything else poisons the
        // stream, exactly as a server session closing the connection would.
        if (reply.status().IsUnavailable()) return Status::OK();
        closed_ = true;
        return reply.status();
      }
      pending_.erase(0, consumed);
      reply_.append(*reply);
    }
    return Status::OK();
  }

  WireDispatcher* dispatcher_;
  std::string pending_;  ///< Client -> server bytes not yet dispatched.
  std::string reply_;    ///< Server -> client bytes not yet read.
  size_t reply_pos_ = 0;
  bool closed_ = false;
};

std::unique_ptr<Transport> InProcessChannel::NewTransport() {
  return std::make_unique<ClientTransport>(dispatcher_);
}

Result<size_t> FaultInjectingTransport::Read(char* buf, size_t max) {
  switch (spec_.kind) {
    case FaultKind::kTimeoutRead:
      if (!fired_) {
        fired_ = true;
        return Status::Unavailable("injected fault: read timed out");
      }
      break;
    case FaultKind::kTruncate:
    case FaultKind::kDisconnect:
      if (bytes_delivered_ >= spec_.arg) return static_cast<size_t>(0);
      max = std::min<uint64_t>(max, spec_.arg - bytes_delivered_);
      break;
    default:
      break;
  }
  MOPE_ASSIGN_OR_RETURN(size_t n, inner_->Read(buf, max));
  if (spec_.kind == FaultKind::kCorrupt && spec_.arg >= bytes_delivered_ &&
      spec_.arg < bytes_delivered_ + n) {
    buf[spec_.arg - bytes_delivered_] ^= static_cast<char>(0xFF);
  }
  bytes_delivered_ += n;
  return n;
}

Status FaultInjectingTransport::Write(const char* data, size_t n) {
  switch (spec_.kind) {
    case FaultKind::kDropWrite:
      if (!fired_) {
        fired_ = true;
        return Status::OK();  // accepted, never delivered
      }
      break;
    case FaultKind::kFailWrite:
      if (!fired_) {
        fired_ = true;
        return Status::Unavailable("injected fault: connection reset");
      }
      break;
    default:
      break;
  }
  return inner_->Write(data, n);
}

}  // namespace mope::net
