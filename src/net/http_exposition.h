#ifndef MOPE_NET_HTTP_EXPOSITION_H_
#define MOPE_NET_HTTP_EXPOSITION_H_

/// \file http_exposition.h
/// Minimal HTTP/1.1 exposition endpoint for operators and scrapers.
///
/// Serves three read-only routes straight from an engine::DbServer:
///
///   GET /metrics  — Prometheus text exposition of the server's registry
///                   (storage.wal.fsync_ns quantiles, leakage.* gauges,
///                   engine.* counters — everything the daemon accounts).
///   GET /healthz  — liveness plus durability state (storage attached?,
///                   crash-recovered?, checkpoints so far) as key=value
///                   lines. 200 whenever the daemon can answer at all.
///   GET /statusz  — one JSON object: uptime, storage/recovery state, the
///                   live leakage verdict, a "queries" summary (request
///                   totals by kind, dispatch-latency p50/p95/p99), and the
///                   full metrics dump.
///
/// Two more routes light up when the daemon attaches the temporal layer:
///
///   GET /vars?metric=<prefix>&window=<n>
///                 — JSON time series from the attached TimeSeriesSampler:
///                   the last <n> samples of every metric whose name starts
///                   with <prefix>, plus windowed rollups. 503 when no
///                   sampler is attached, 400 on a zero/oversized window,
///                   404 when the prefix matches nothing.
///   GET /alertz   — JSON state of the attached AlertEngine (every rule,
///                   firing or not, with last value/threshold). 503 when no
///                   engine is attached.
///
/// Deliberately not a web server: one serving thread, one request per
/// connection (`Connection: close`), GET only, request head capped at
/// `max_request_bytes`, and every response is rendered from atomic metric
/// reads or const-after-open state — no engine data structures are touched,
/// so a scraper can never block or corrupt the query path, and a hostile
/// peer costs at most one bounded read with a deadline. This rides the same
/// socket layer as the wire protocol (net/socket.h, the only legal home for
/// raw sockets under linter rule R6).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/server.h"
#include "net/socket.h"
#include "obs/alerts.h"
#include "obs/clock.h"
#include "obs/timeseries.h"

namespace mope::net {

struct HttpExpositionOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0: ephemeral; the bound port is port().
  /// Cadence at which the blocked accept re-checks the stop flag.
  int poll_interval_ms = 50;
  /// Hard cap on the request head; longer requests get 431 and a close.
  size_t max_request_bytes = 8192;
  /// Deadline for reading one request head off an accepted connection.
  int read_timeout_ms = 2000;
};

/// The endpoint. Start() binds and spawns the serving thread; Stop() (or the
/// destructor) joins it. `server` must outlive this object.
class HttpExposition {
 public:
  /// `clock` times uptime for /statusz; nullptr selects SystemClock().
  HttpExposition(engine::DbServer* server, HttpExpositionOptions options,
                 obs::Clock* clock = nullptr);
  ~HttpExposition();

  HttpExposition(const HttpExposition&) = delete;
  HttpExposition& operator=(const HttpExposition&) = delete;

  Status Start();
  void Stop();

  /// Attaches the time-series sampler behind GET /vars (nullptr detaches;
  /// the route then answers 503). Call before Start(); the sampler must
  /// outlive this object or be detached first.
  void AttachTimeSeries(obs::TimeSeriesSampler* sampler) {
    sampler_ = sampler;
  }
  /// Attaches the alert engine behind GET /alertz (same contract).
  void AttachAlerts(obs::AlertEngine* alerts) { alerts_ = alerts; }

  /// The bound port (valid after Start() returned OK).
  uint16_t port() const { return listener_->port(); }

  /// Routing core, exposed for tests: maps (method, target) to a full HTTP
  /// response string. `target` may carry a query string (used by /vars,
  /// ignored elsewhere).
  std::string HandleRequest(std::string_view method, std::string_view target);

 private:
  void ServeLoop();
  void ServeConnection(SocketTransport* conn);

  std::string MetricsBody() const;
  std::string HealthzBody() const;
  std::string StatuszBody() const;
  std::string VarsResponse(std::string_view query);
  std::string AlertzResponse();

  engine::DbServer* const server_;
  const HttpExpositionOptions options_;
  obs::Clock* const clock_;
  uint64_t start_ns_ = 0;
  /// Temporal layer; nullptr until the daemon attaches them (before Start).
  obs::TimeSeriesSampler* sampler_ = nullptr;
  obs::AlertEngine* alerts_ = nullptr;

  std::unique_ptr<TcpListener> listener_;
  std::atomic<bool> stopping_{false};
  std::thread serve_thread_;

  // Atomic handles into the server's registry.
  obs::Counter* requests_;
  obs::Counter* bad_requests_;
};

}  // namespace mope::net

#endif  // MOPE_NET_HTTP_EXPOSITION_H_
