#ifndef MOPE_NET_SOCKET_H_
#define MOPE_NET_SOCKET_H_

/// \file socket.h
/// POSIX TCP transports. The only file pair in the tree allowed to touch
/// raw sockets (tools/check_invariants.py bans socket/send/recv elsewhere);
/// everything above speaks net::Transport.
///
/// Deadlines are relative poll(2) timeouts — no wall-clock reads, keeping
/// src/ bit-deterministic outside the kernel's own scheduling. Host names
/// are resolved locally ("localhost" and dotted-quad IPv4 only): the MOPE
/// deployment model is proxy and DBMS in one trust boundary's network, and
/// refusing DNS keeps connect behavior deterministic and offline-safe.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/transport.h"

namespace mope::net {

struct SocketOptions {
  int connect_timeout_ms = 5000;
  /// Per-Read deadline; expiry returns Unavailable (retryable).
  int read_timeout_ms = 5000;
  /// Per-Write deadline once the kernel send buffer is full (peer not
  /// draining); expiry returns Unavailable. Sockets stay non-blocking for
  /// their whole life so this deadline is actually reachable.
  int write_timeout_ms = 5000;
};

/// A connected TCP stream.
class SocketTransport final : public Transport {
 public:
  /// Takes ownership of connected descriptor `fd`.
  SocketTransport(int fd, SocketOptions options)
      : fd_(fd), options_(options) {}
  ~SocketTransport() override { Close(); }

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<size_t> Read(char* buf, size_t max) override;
  Status Write(const char* data, size_t n) override;
  void Close() override;

  /// Waits up to `timeout_ms` for readable data (or EOF). False on timeout.
  /// Lets a server session block in short slices so it can notice shutdown.
  Result<bool> Poll(int timeout_ms);

 private:
  int fd_;
  SocketOptions options_;
};

/// Connects to host:port within the connect deadline.
Result<std::unique_ptr<SocketTransport>> ConnectTcp(const std::string& host,
                                                    uint16_t port,
                                                    const SocketOptions& options);

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port (see port()).
  static Result<std::unique_ptr<TcpListener>> Bind(const std::string& host,
                                                   uint16_t port);
  ~TcpListener() { Close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection. Returns nullptr on timeout
  /// (poll again; lets the accept loop notice shutdown), Unavailable once
  /// the listener is closed.
  Result<std::unique_ptr<SocketTransport>> Accept(int timeout_ms,
                                                  const SocketOptions& options);

  /// Thread-safe against a concurrent Accept: the accept loop observes the
  /// closed fd on its next poll timeout and returns Unavailable.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  uint16_t port_;
};

}  // namespace mope::net

#endif  // MOPE_NET_SOCKET_H_
