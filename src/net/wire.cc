#include "net/wire.h"

#include "common/crc32.h"
#include "engine/codec.h"

namespace mope::net {

using engine::ByteReader;
using engine::PutString;
using engine::PutU32;
using engine::PutU64;
using engine::PutValue;

namespace {

/// Sanity bound on collection counts so a 16-byte frame can't make the
/// decoder reserve gigabytes before the (bounded) payload runs out.
constexpr uint64_t kMaxRangesPerBatch = 1u << 20;

Result<ModularInterval> ReadInterval(ByteReader* reader) {
  MOPE_ASSIGN_OR_RETURN(uint64_t start, reader->U64());
  MOPE_ASSIGN_OR_RETURN(uint64_t length, reader->U64());
  MOPE_ASSIGN_OR_RETURN(uint64_t domain, reader->U64());
  // Validate before constructing: ModularInterval's constructor MOPE_CHECKs
  // its preconditions, and a hostile frame must never abort the server.
  if (domain == 0 || start >= domain || length == 0 || length > domain) {
    return Status::Corruption("wire frame carries an invalid interval");
  }
  return ModularInterval(start, length, domain);
}

}  // namespace

uint32_t Crc32(std::string_view bytes) { return mope::Crc32(bytes); }

std::string EncodeFrame(MessageType type, std::string payload,
                        uint64_t trace_id, bool has_profile,
                        std::string_view profile) {
  MOPE_CHECK(payload.size() <= kMaxPayloadBytes, "frame payload too large");
  MOPE_CHECK(profile.size() <= kMaxPayloadBytes, "frame profile too large");
  // Extension-free frames stay version 1, byte-identical to what older
  // builds emit; only an actual trace id or profile pays for version 2.
  const bool traced = trace_id != 0;
  const uint8_t flags =
      static_cast<uint8_t>((traced ? kFrameFlagHasTraceId : 0) |
                           (has_profile ? kFrameFlagHasProfile : 0));
  std::string out;
  out.reserve(kFrameHeaderBytes + (traced ? kTraceIdBytes : 0) +
              (has_profile ? kProfileLengthBytes + profile.size() : 0) +
              payload.size());
  PutU32(&out, kWireMagic);
  out.push_back(static_cast<char>(flags != 0 ? kWireVersion : 1));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  out.push_back(0);  // reserved
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  if (traced) PutU64(&out, trace_id);
  if (has_profile) {
    PutU32(&out, static_cast<uint32_t>(profile.size()));
    out.append(profile);
  }
  out.append(payload);
  return out;
}

Result<Frame> DecodeFrame(std::string_view bytes, size_t* consumed) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::Unavailable("incomplete frame header");
  }
  ByteReader header(bytes.substr(0, kFrameHeaderBytes), "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint32_t magic, header.U32());
  if (magic != kWireMagic) {
    return Status::Corruption("bad wire magic");
  }
  MOPE_ASSIGN_OR_RETURN(uint8_t version, header.Byte());
  if (version == 0 || version > kWireVersion) {
    return Status::Corruption("unsupported wire protocol version " +
                              std::to_string(version));
  }
  MOPE_ASSIGN_OR_RETURN(uint8_t type, header.Byte());
  MOPE_ASSIGN_OR_RETURN(uint8_t flags, header.Byte());
  MOPE_ASSIGN_OR_RETURN(uint8_t reserved, header.Byte());
  // Version 1 predates the flags byte: both bytes are reserved-zero there.
  // In version 2, an unknown flag bit would change the framing underneath
  // us, so it is Corruption, not something to ignore.
  constexpr uint8_t kKnownFlags = kFrameFlagHasTraceId | kFrameFlagHasProfile;
  if (version == 1 ? flags != 0 : (flags & ~kKnownFlags) != 0) {
    return Status::Corruption(version == 1
                                  ? "nonzero reserved bytes in frame header"
                                  : "unknown frame flags");
  }
  if (reserved != 0) {
    return Status::Corruption("nonzero reserved bytes in frame header");
  }
  MOPE_ASSIGN_OR_RETURN(uint32_t length, header.U32());
  if (length > kMaxPayloadBytes) {
    return Status::Corruption("oversized frame payload (" +
                              std::to_string(length) + " bytes)");
  }
  MOPE_ASSIGN_OR_RETURN(uint32_t crc, header.U32());
  Frame frame;
  frame.type = type;
  // Extensions sit between the header and the payload in flag-bit order;
  // the profile one is length-prefixed, so framing is discovered in stages.
  size_t offset = kFrameHeaderBytes;
  if ((flags & kFrameFlagHasTraceId) != 0) {
    if (bytes.size() < offset + kTraceIdBytes) {
      return Status::Unavailable("incomplete frame payload");
    }
    ByteReader ext(bytes.substr(offset, kTraceIdBytes), "wire frame");
    MOPE_ASSIGN_OR_RETURN(frame.trace_id, ext.U64());
    offset += kTraceIdBytes;
  }
  if ((flags & kFrameFlagHasProfile) != 0) {
    frame.has_profile = true;
    if (bytes.size() < offset + kProfileLengthBytes) {
      return Status::Unavailable("incomplete frame payload");
    }
    ByteReader ext(bytes.substr(offset, kProfileLengthBytes), "wire frame");
    MOPE_ASSIGN_OR_RETURN(uint32_t profile_len, ext.U32());
    if (profile_len > kMaxPayloadBytes) {
      return Status::Corruption("oversized profile extension (" +
                                std::to_string(profile_len) + " bytes)");
    }
    offset += kProfileLengthBytes;
    if (bytes.size() < offset + profile_len) {
      return Status::Unavailable("incomplete frame payload");
    }
    frame.profile.assign(bytes.substr(offset, profile_len));
    offset += profile_len;
  }
  if (bytes.size() - offset < length) {
    return Status::Unavailable("incomplete frame payload");
  }
  const std::string_view payload = bytes.substr(offset, length);
  if (Crc32(payload) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  if (consumed != nullptr) *consumed = offset + length;
  frame.payload.assign(payload);
  return frame;
}

namespace {

/// Reads exactly `n` more bytes into `out`. `at_boundary` distinguishes a
/// clean EOF before any header byte (peer hung up between requests) from a
/// stream cut mid-frame.
Status ReadExact(Transport* transport, size_t n, std::string* out,
                 bool at_boundary) {
  size_t got = 0;
  char buf[4096];
  while (got < n) {
    MOPE_ASSIGN_OR_RETURN(
        size_t chunk, transport->Read(buf, std::min(n - got, sizeof(buf))));
    if (chunk == 0) {
      return (at_boundary && got == 0)
                 ? Status::Unavailable("connection closed")
                 : Status::Unavailable("connection closed mid-frame");
    }
    out->append(buf, chunk);
    got += chunk;
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrameBytes(Transport* transport) {
  std::string raw;
  raw.reserve(kFrameHeaderBytes);
  MOPE_RETURN_NOT_OK(
      ReadExact(transport, kFrameHeaderBytes, &raw, /*at_boundary=*/true));
  // Vet the header far enough to learn the payload length; full validation
  // (CRC included) happens in DecodeFrame once the bytes are in hand.
  ByteReader header(raw, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint32_t magic, header.U32());
  if (magic != kWireMagic) {
    return Status::Corruption("bad wire magic");
  }
  MOPE_ASSIGN_OR_RETURN(uint8_t version, header.Byte());
  if (version == 0 || version > kWireVersion) {
    return Status::Corruption("unsupported wire protocol version " +
                              std::to_string(version));
  }
  MOPE_RETURN_NOT_OK(header.Byte().status());  // type: dispatcher's problem
  MOPE_ASSIGN_OR_RETURN(uint8_t flags, header.Byte());
  MOPE_RETURN_NOT_OK(header.Byte().status());  // reserved, checked on decode
  MOPE_ASSIGN_OR_RETURN(uint32_t length, header.U32());
  if (length > kMaxPayloadBytes) {
    return Status::Corruption("oversized frame payload (" +
                              std::to_string(length) + " bytes)");
  }
  // The flags byte tells us how many extension bytes precede the payload;
  // flag *validity* is DecodeFrame's job once everything is in hand. The
  // profile extension is length-prefixed, so its prefix is read first.
  const size_t fixed_ext =
      (version >= 2 && (flags & kFrameFlagHasTraceId) != 0) ? kTraceIdBytes
                                                            : 0;
  const bool has_profile =
      version >= 2 && (flags & kFrameFlagHasProfile) != 0;
  MOPE_RETURN_NOT_OK(ReadExact(
      transport, fixed_ext + (has_profile ? kProfileLengthBytes : 0), &raw,
      /*at_boundary=*/false));
  size_t profile_len = 0;
  if (has_profile) {
    ByteReader plen(std::string_view(raw).substr(
                        kFrameHeaderBytes + fixed_ext, kProfileLengthBytes),
                    "wire frame");
    MOPE_ASSIGN_OR_RETURN(uint32_t len32, plen.U32());
    if (len32 > kMaxPayloadBytes) {
      return Status::Corruption("oversized profile extension (" +
                                std::to_string(len32) + " bytes)");
    }
    profile_len = len32;
  }
  MOPE_RETURN_NOT_OK(
      ReadExact(transport, profile_len + length, &raw, /*at_boundary=*/false));
  return raw;
}

Result<Frame> ReadFrame(Transport* transport) {
  MOPE_ASSIGN_OR_RETURN(std::string raw, ReadFrameBytes(transport));
  return DecodeFrame(raw, nullptr);
}

Status WriteFrame(Transport* transport, MessageType type, std::string payload,
                  uint64_t trace_id, bool has_profile,
                  std::string_view profile) {
  // Callers hand WriteFrame unbounded application data (e.g. a huge range
  // batch); overflow must come back as a Status, not trip EncodeFrame's
  // precondition check.
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "message too large for one frame (" + std::to_string(payload.size()) +
        " > " + std::to_string(kMaxPayloadBytes) + " bytes)");
  }
  if (profile.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "profile too large for one frame (" + std::to_string(profile.size()) +
        " > " + std::to_string(kMaxPayloadBytes) + " bytes)");
  }
  const std::string frame =
      EncodeFrame(type, std::move(payload), trace_id, has_profile, profile);
  return transport->Write(frame.data(), frame.size());
}

// --- Message bodies -------------------------------------------------------

std::string EncodeRangeBatchRequest(const RangeBatchRequest& request) {
  std::string out;
  PutString(&out, request.table);
  PutString(&out, request.column);
  PutU32(&out, static_cast<uint32_t>(request.ranges.size()));
  for (const ModularInterval& range : request.ranges) {
    PutU64(&out, range.start());
    PutU64(&out, range.length());
    PutU64(&out, range.domain());
  }
  return out;
}

Result<RangeBatchRequest> DecodeRangeBatchRequest(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  RangeBatchRequest request;
  MOPE_ASSIGN_OR_RETURN(request.table, reader.String());
  MOPE_ASSIGN_OR_RETURN(request.column, reader.String());
  MOPE_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  if (count > kMaxRangesPerBatch) {
    return Status::Corruption("implausible range count in batch request");
  }
  request.ranges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MOPE_ASSIGN_OR_RETURN(ModularInterval range, ReadInterval(&reader));
    request.ranges.push_back(range);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after batch request");
  }
  return request;
}

std::string EncodeRangeBatchReply(const RowsWithIds& rows) {
  std::string out;
  PutU64(&out, rows.size());
  for (const auto& [rid, row] : rows) {
    PutU64(&out, rid);
    PutU32(&out, static_cast<uint32_t>(row.size()));
    for (const engine::Value& v : row) PutValue(&out, v);
  }
  return out;
}

Result<RowsWithIds> DecodeRangeBatchReply(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  // Each row costs at least 12 bytes on the wire; a count beyond that bound
  // cannot be satisfied by the remaining payload.
  if (count > reader.remaining() / 12) {
    return Status::Corruption("implausible row count in batch reply");
  }
  RowsWithIds rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MOPE_ASSIGN_OR_RETURN(uint64_t rid, reader.U64());
    MOPE_ASSIGN_OR_RETURN(uint32_t num_values, reader.U32());
    if (num_values > 4096) {
      return Status::Corruption("implausible column count in batch reply");
    }
    engine::Row row;
    row.reserve(num_values);
    for (uint32_t c = 0; c < num_values; ++c) {
      MOPE_ASSIGN_OR_RETURN(engine::Value v, reader.ReadValue());
      row.push_back(std::move(v));
    }
    rows.emplace_back(rid, std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after batch reply");
  }
  return rows;
}

std::string EncodeCountBatchReply(uint64_t count) {
  std::string out;
  PutU64(&out, count);
  return out;
}

Result<uint64_t> DecodeCountBatchReply(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after count reply");
  }
  return count;
}

std::string EncodeSchemaRequest(const std::string& table) {
  std::string out;
  PutString(&out, table);
  return out;
}

Result<std::string> DecodeSchemaRequest(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(std::string table, reader.String());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after schema request");
  }
  return table;
}

std::string EncodeSchemaReply(const engine::Schema& schema) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(schema.num_columns()));
  for (const engine::Column& col : schema.columns()) {
    PutString(&out, col.name);
    out.push_back(static_cast<char>(col.type));
  }
  return out;
}

Result<engine::Schema> DecodeSchemaReply(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  if (count > 4096) {
    return Status::Corruption("implausible column count in schema reply");
  }
  std::vector<engine::Column> columns;
  columns.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    engine::Column col;
    MOPE_ASSIGN_OR_RETURN(col.name, reader.String());
    MOPE_ASSIGN_OR_RETURN(uint8_t type, reader.Byte());
    if (type > static_cast<uint8_t>(engine::ValueType::kString)) {
      return Status::Corruption("unknown column type in schema reply");
    }
    col.type = static_cast<engine::ValueType>(type);
    columns.push_back(std::move(col));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after schema reply");
  }
  return engine::Schema(std::move(columns));
}

std::string EncodeStatsReply(const StatsReply& stats) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    PutString(&out, name);
    PutU64(&out, value);
  }
  return out;
}

Result<StatsReply> DecodeStatsReply(std::string_view payload) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  // Each entry costs at least 12 bytes (4-byte name length + 8-byte value);
  // a larger count cannot be satisfied by the remaining payload.
  if (count > reader.remaining() / 12) {
    return Status::Corruption("implausible entry count in stats reply");
  }
  StatsReply stats;
  stats.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::pair<std::string, uint64_t> entry;
    MOPE_ASSIGN_OR_RETURN(entry.first, reader.String());
    MOPE_ASSIGN_OR_RETURN(entry.second, reader.U64());
    stats.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after stats reply");
  }
  return stats;
}

std::string EncodeStatusReply(const Status& status) {
  MOPE_CHECK(!status.ok(), "status reply must carry an error");
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  PutString(&out, status.message());
  return out;
}

Status DecodeStatusReply(std::string_view payload, Status* out) {
  ByteReader reader(payload, "wire frame");
  MOPE_ASSIGN_OR_RETURN(uint8_t code, reader.Byte());
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("invalid status code in status reply");
  }
  MOPE_ASSIGN_OR_RETURN(std::string message, reader.String());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after status reply");
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

}  // namespace mope::net
