#ifndef MOPE_NET_INMEM_H_
#define MOPE_NET_INMEM_H_

/// \file inmem.h
/// Deterministic in-memory transports: the whole wire protocol without a
/// socket in sight.
///
/// InProcessChannel couples a client-side Transport to a WireDispatcher on
/// the same thread: bytes Written by the client accumulate in a request
/// buffer, and the first Read after a complete request pumps the dispatcher
/// exactly once and serves the reply bytes back. Single-threaded, no clock,
/// no kernel — every test run takes the same code path byte for byte.
///
/// FaultInjectingTransport wraps any Transport and misbehaves on command:
/// swallow a request, time a read out, cut the reply short, flip a byte,
/// hang up mid-reply. Counters (not randomness) trigger the faults, so each
/// failure scenario is exactly reproducible, and each maps onto what a real
/// network does: kDrop = lost datagram, kTimeout = stalled peer, kTruncate /
/// kDisconnect = connection reset mid-stream, kCorrupt = bit rot that CRC
/// must catch.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/dispatcher.h"
#include "net/transport.h"

namespace mope::net {

/// A synchronous client<->server loop around a shared dispatcher. Create one
/// channel per logical connection; `NewTransport` hands out the client end
/// (several sequential transports model reconnection).
class InProcessChannel {
 public:
  /// `dispatcher` must outlive the channel and every transport it vends.
  explicit InProcessChannel(WireDispatcher* dispatcher)
      : dispatcher_(dispatcher) {}

  /// A fresh client transport over this channel (reconnect = new transport;
  /// buffered state from the previous connection is discarded).
  std::unique_ptr<Transport> NewTransport();

 private:
  class ClientTransport;

  WireDispatcher* dispatcher_;
};

/// Which misbehavior to inject, in terms of observable network failures.
enum class FaultKind : uint8_t {
  kNone = 0,
  kDropWrite,    ///< Swallow written bytes: the request never arrives.
  kFailWrite,    ///< Write returns Unavailable (send on a reset connection).
  kTimeoutRead,  ///< Read returns Unavailable (deadline expired).
  kTruncate,     ///< Deliver only the first `arg` reply bytes, then EOF.
  kCorrupt,      ///< XOR 0xFF into delivered byte number `arg` (0-based).
  kDisconnect,   ///< EOF after `arg` delivered bytes (peer hung up).
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// Byte position/count parameter for kTruncate / kCorrupt / kDisconnect.
  uint64_t arg = 0;
};

/// Applies one FaultSpec to an inner transport, then behaves transparently.
/// Deliberately one fault per transport: RemoteConnection opens a fresh
/// transport per reconnect, so a scripted *sequence* of transports (each
/// with its own fault) models a flaky network deterministically.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec) {}

  Result<size_t> Read(char* buf, size_t max) override;
  Status Write(const char* data, size_t n) override;
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;
  uint64_t bytes_delivered_ = 0;
  bool fired_ = false;  ///< One-shot faults (drop/fail/timeout) spent?
};

}  // namespace mope::net

#endif  // MOPE_NET_INMEM_H_
