#include "ope/mope.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace mope::ope {

MopeKey MopeKey::Generate(uint64_t domain, mope::BitSource* entropy) {
  MOPE_CHECK(domain > 0, "MOPE domain must be positive");
  MopeKey key;
  key.ope_key = OpeKey::Generate(entropy);
  key.offset = entropy->UniformUint64(domain);
  return key;
}

std::string MopeKey::Serialize() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32 + 1 + 20);
  for (uint8_t byte : ope_key.prf_key) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  out.push_back(':');
  out += std::to_string(offset);
  return out;
}

Result<MopeKey> MopeKey::Deserialize(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon != 32) {
    return Status::InvalidArgument("malformed MOPE key: expected 32 hex chars");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  MopeKey key;
  for (int i = 0; i < 16; ++i) {
    const int hi = nibble(text[2 * static_cast<size_t>(i)]);
    const int lo = nibble(text[2 * static_cast<size_t>(i) + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed MOPE key: bad hex digit");
    }
    key.ope_key.prf_key[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  const std::string offset_text = text.substr(colon + 1);
  if (offset_text.empty() ||
      offset_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed MOPE key: bad offset");
  }
  errno = 0;
  key.offset = std::strtoull(offset_text.c_str(), nullptr, 10);
  if (errno != 0) {
    return Status::InvalidArgument("malformed MOPE key: offset out of range");
  }
  return key;
}

Result<MopeScheme> MopeScheme::Create(const OpeParams& params,
                                      const MopeKey& key,
                                      obs::MetricsRegistry* registry) {
  if (params.domain > 0 && key.offset >= params.domain) {
    return Status::InvalidArgument("MOPE offset must be less than the domain");
  }
  MOPE_ASSIGN_OR_RETURN(OpeScheme ope,
                        OpeScheme::Create(params, key.ope_key, registry));
  return MopeScheme(std::move(ope), key.offset);
}

Result<uint64_t> MopeScheme::Encrypt(uint64_t m) const {
  const uint64_t m_count = domain();
  if (m >= m_count) {
    return Status::OutOfRange("plaintext " + std::to_string(m) +
                              " outside domain of size " +
                              std::to_string(m_count));
  }
  return ope_.Encrypt((m + offset_) % m_count);
}

Result<uint64_t> MopeScheme::Decrypt(uint64_t c) const {
  MOPE_ASSIGN_OR_RETURN(uint64_t shifted, ope_.Decrypt(c));
  const uint64_t m_count = domain();
  return (shifted + m_count - offset_ % m_count) % m_count;
}

Result<CipherRange> MopeScheme::EncryptRange(const ModularInterval& plain) const {
  if (plain.domain() != domain()) {
    return Status::InvalidArgument("interval domain does not match the scheme");
  }
  MOPE_ASSIGN_OR_RETURN(uint64_t first, Encrypt(plain.start()));
  MOPE_ASSIGN_OR_RETURN(uint64_t last, Encrypt(plain.last()));
  return CipherRange{first, last};
}

}  // namespace mope::ope
