#ifndef MOPE_OPE_MOPE_H_
#define MOPE_OPE_MOPE_H_

/// \file mope.h
/// Modular order-preserving encryption (Section 2.2 of the paper).
///
/// MOPE[OPE] adds a secret uniformly-random modular offset j to the key:
///   Enc((K, j), m) = OPE.Enc(K, (m + j) mod M)
///   Dec((K, j), c) = (OPE.Dec(K, c) - j) mod M.
/// The encrypted database alone then reveals nothing about plaintext
/// *locations* (every rotation of the plaintext multiset is equally likely),
/// while comparisons — and hence range queries with wrap-around — still work.
///
/// Range queries: the encryption of a plaintext interval [mL, mR] is the
/// ciphertext interval [Enc(mL), Enc(mR)], which wraps around the ciphertext
/// space exactly when the shifted plaintext interval wraps around the domain.

#include <cstdint>
#include <string>

#include "common/interval.h"
#include "common/status.h"
#include "ope/ope.h"

namespace mope::ope {

/// MOPE secret key: the underlying OPE key plus the secret offset.
struct MopeKey {
  OpeKey ope_key;
  uint64_t offset = 0;  ///< j, uniform in {0, ..., M-1}.

  /// Draws a fresh key (OPE key + uniform offset) for domain size M.
  static MopeKey Generate(uint64_t domain, mope::BitSource* entropy);

  /// Hex serialization "<32 hex chars>:<offset>" for key storage at the
  /// trusted proxy. Round-trips through Deserialize.
  std::string Serialize() const;
  static Result<MopeKey> Deserialize(const std::string& text);
};

/// An encrypted range query: ciphertext-space endpoints, inclusive. The
/// interval wraps around the ciphertext space when last < first.
struct CipherRange {
  uint64_t first = 0;
  uint64_t last = 0;

  bool wraps() const { return last < first; }
  bool operator==(const CipherRange&) const = default;
};

/// The MOPE scheme (deterministic, stateless, thread-safe after creation).
class MopeScheme {
 public:
  /// Validates parameters and builds the scheme. Requires offset < domain.
  /// `registry` receives the underlying OPE's ope.* counters; null selects
  /// the process-global obs::Registry().
  static Result<MopeScheme> Create(const OpeParams& params, const MopeKey& key,
                                   obs::MetricsRegistry* registry = nullptr);

  const OpeParams& params() const { return ope_.params(); }
  uint64_t domain() const { return ope_.params().domain; }
  uint64_t range() const { return ope_.params().range; }

  /// Encrypts plaintext m in {0, ..., M-1}.
  Result<uint64_t> Encrypt(uint64_t m) const;

  /// Decrypts ciphertext c; Corruption if c is not a valid encryption.
  Result<uint64_t> Decrypt(uint64_t c) const;

  /// Encrypts the (possibly wrap-around) plaintext interval into a
  /// ciphertext range [Enc(first), Enc(last)].
  Result<CipherRange> EncryptRange(const ModularInterval& plain) const;

  /// Read-only access to the underlying (shifted) OPE scheme, for security
  /// experiments that need the raw OPF.
  const OpeScheme& underlying_ope() const { return ope_; }

 private:
  MopeScheme(OpeScheme ope, uint64_t offset)
      : ope_(std::move(ope)), offset_(offset) {}

  OpeScheme ope_;
  uint64_t offset_;
};

}  // namespace mope::ope

#endif  // MOPE_OPE_MOPE_H_
