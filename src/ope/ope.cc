#include "ope/ope.h"

#include <string>

#include "crypto/drbg.h"
#include "crypto/hgd.h"
#include "obs/trace.h"

namespace mope::ope {

namespace {

// Domain-separation labels for PRF tags.
constexpr uint8_t kLeafLabel = 0x4C;   // 'L'
constexpr uint8_t kSplitLabel = 0x53;  // 'S'

// Per-node coin budget. A hypergeometric draw consumes exactly one 64-bit
// word and leaf placement uses rejection sampling with expected < 2 words,
// so 64 words is unreachable by correct code; hitting it means a logic bug,
// which must surface as a Status instead of a ciphertext derived from a
// dead stream.
constexpr uint64_t kCoinBudget = 64;

}  // namespace

uint64_t SuggestRange(uint64_t domain) {
  MOPE_CHECK(domain > 0, "domain must be positive");
  uint64_t n = 1;
  while (n < 8 * domain) n <<= 1;
  return n;
}

OpeKey OpeKey::Generate(mope::BitSource* entropy) {
  OpeKey key;
  for (int i = 0; i < 2; ++i) {
    const uint64_t w = entropy->NextWord();
    for (int b = 0; b < 8; ++b) {
      key.prf_key[8 * i + b] = static_cast<uint8_t>(w >> (8 * b));
    }
  }
  return key;
}

OpeScheme::OpeScheme(const OpeParams& params, const OpeKey& key,
                     obs::MetricsRegistry* registry)
    : params_(params), prf_(key.prf_key) {
  if (registry == nullptr) registry = obs::Registry();
  encrypt_calls_ = registry->GetCounter("ope.encrypt_calls");
  decrypt_calls_ = registry->GetCounter("ope.decrypt_calls");
  hgd_draws_ = registry->GetCounter("ope.hgd_draws");
  recursion_depth_ = registry->GetHistogram("ope.recursion_depth");
}

Result<OpeScheme> OpeScheme::Create(const OpeParams& params, const OpeKey& key,
                                    obs::MetricsRegistry* registry) {
  if (params.domain == 0) {
    return Status::InvalidArgument("OPE domain must be positive");
  }
  if (params.range < params.domain) {
    return Status::InvalidArgument(
        "OPE range (" + std::to_string(params.range) +
        ") must be at least the domain (" + std::to_string(params.domain) + ")");
  }
  return OpeScheme(params, key, registry);
}

Result<uint64_t> OpeScheme::SampleSplit(uint64_t dlo, uint64_t m_count,
                                        uint64_t rlo, uint64_t n_count,
                                        uint64_t draws) const {
  hgd_draws_->Increment();
  obs::BumpTraceCounter("ope.hgd_draws");
  crypto::TagBuilder tag(kSplitLabel);
  tag.AppendU64(dlo).AppendU64(m_count).AppendU64(rlo).AppendU64(n_count);
  const crypto::Block seed = prf_.Eval(tag.bytes());
  crypto::CtrDrbg coins(seed);
  mope::BoundedBitSource bounded(&coins, kCoinBudget);
  return crypto::HgdSample(n_count, m_count, draws, &bounded);
}

Result<uint64_t> OpeScheme::LeafCiphertext(uint64_t dlo, uint64_t rlo,
                                           uint64_t n_count) const {
  crypto::TagBuilder tag(kLeafLabel);
  tag.AppendU64(dlo).AppendU64(rlo).AppendU64(n_count);
  const crypto::Block seed = prf_.Eval(tag.bytes());
  crypto::CtrDrbg coins(seed);
  mope::BoundedBitSource bounded(&coins, kCoinBudget);
  const uint64_t offset = bounded.UniformUint64(n_count);
  if (bounded.exhausted()) {
    return Status::Internal("leaf coin stream exhausted");
  }
  return rlo + offset;
}

Result<uint64_t> OpeScheme::Encrypt(uint64_t m) const {
  if (m >= params_.domain) {
    return Status::OutOfRange("plaintext " + std::to_string(m) +
                              " outside domain of size " +
                              std::to_string(params_.domain));
  }
  encrypt_calls_->Increment();
  obs::BumpTraceCounter("ope.encrypt_calls");
  uint64_t depth = 0;
  uint64_t dlo = 0, m_count = params_.domain;
  uint64_t rlo = 0, n_count = params_.range;
  while (m_count > 1) {
    ++depth;
    const uint64_t draws = n_count / 2;
    MOPE_ASSIGN_OR_RETURN(const uint64_t x,
                          SampleSplit(dlo, m_count, rlo, n_count, draws));
    if (m < dlo + x) {
      m_count = x;
      n_count = draws;
    } else {
      dlo += x;
      m_count -= x;
      rlo += draws;
      n_count -= draws;
    }
  }
  recursion_depth_->Observe(depth);
  return LeafCiphertext(dlo, rlo, n_count);
}

Result<uint64_t> OpeScheme::Decrypt(uint64_t c) const {
  if (c >= params_.range) {
    return Status::OutOfRange("ciphertext " + std::to_string(c) +
                              " outside range of size " +
                              std::to_string(params_.range));
  }
  decrypt_calls_->Increment();
  obs::BumpTraceCounter("ope.decrypt_calls");
  uint64_t dlo = 0, m_count = params_.domain;
  uint64_t rlo = 0, n_count = params_.range;
  while (m_count > 1) {
    const uint64_t draws = n_count / 2;
    MOPE_ASSIGN_OR_RETURN(const uint64_t x,
                          SampleSplit(dlo, m_count, rlo, n_count, draws));
    if (c < rlo + draws) {
      if (x == 0) {
        return Status::Corruption("ciphertext maps to an empty OPF branch");
      }
      m_count = x;
      n_count = draws;
    } else {
      if (x == m_count) {
        return Status::Corruption("ciphertext maps to an empty OPF branch");
      }
      dlo += x;
      m_count -= x;
      rlo += draws;
      n_count -= draws;
    }
  }
  MOPE_ASSIGN_OR_RETURN(const uint64_t leaf, LeafCiphertext(dlo, rlo, n_count));
  if (leaf != c) {
    return Status::Corruption("ciphertext is not in the image of the OPF");
  }
  return dlo;
}

Result<uint64_t> OpeScheme::DecryptFloorCeil(uint64_t c) const {
  if (c >= params_.range) {
    return Status::OutOfRange("ciphertext " + std::to_string(c) +
                              " outside range of size " +
                              std::to_string(params_.range));
  }
  decrypt_calls_->Increment();
  obs::BumpTraceCounter("ope.decrypt_calls");
  uint64_t dlo = 0, m_count = params_.domain;
  uint64_t rlo = 0, n_count = params_.range;
  while (m_count > 1) {
    const uint64_t draws = n_count / 2;
    MOPE_ASSIGN_OR_RETURN(const uint64_t x,
                          SampleSplit(dlo, m_count, rlo, n_count, draws));
    if (c < rlo + draws) {
      if (x == 0) {
        // Every plaintext of this node encrypts into the right half, above c.
        return dlo;
      }
      m_count = x;
      n_count = draws;
    } else {
      if (x == m_count) {
        // Every plaintext of this node encrypts below c; answer is the next
        // plaintext after the node (possibly == domain, meaning "none").
        return dlo + m_count;
      }
      dlo += x;
      m_count -= x;
      rlo += draws;
      n_count -= draws;
    }
  }
  MOPE_ASSIGN_OR_RETURN(const uint64_t leaf, LeafCiphertext(dlo, rlo, n_count));
  return (leaf >= c) ? dlo : dlo + 1;
}

}  // namespace mope::ope
