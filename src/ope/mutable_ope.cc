#include "ope/mutable_ope.h"

#include <algorithm>

namespace mope::ope {

namespace {

/// Encodings live in the open interval (0, kSpan); each tree level halves
/// the child interval, so 62 levels fit before midpoints collide.
constexpr uint64_t kSpan = uint64_t{1} << 63;

/// Framing tag for DET blocks (detects wrong-key / corrupted ciphertexts).
constexpr uint8_t kDetTag = 0xA5;

}  // namespace

crypto::Block DetCipher::Encrypt(uint64_t plaintext) const {
  crypto::Block block;
  for (int i = 0; i < 8; ++i) {
    block[static_cast<size_t>(i)] =
        static_cast<uint8_t>(plaintext >> (56 - 8 * i));
  }
  for (size_t i = 8; i < 16; ++i) block[i] = kDetTag;
  return aes_.EncryptBlock(block);
}

Result<uint64_t> DetCipher::Decrypt(const crypto::Block& cipher) const {
  const crypto::Block block = aes_.DecryptBlock(cipher);
  for (size_t i = 8; i < 16; ++i) {
    if (block[i] != kDetTag) {
      return Status::Corruption("DET block failed tag check");
    }
  }
  uint64_t plaintext = 0;
  for (int i = 0; i < 8; ++i) {
    plaintext = (plaintext << 8) | block[static_cast<size_t>(i)];
  }
  return plaintext;
}

// ---------------------------------------------------------------------------
// Server
//
// Encoding intervals are implicit: a node's children own the halves of its
// interval, and since the tree is a search tree *in encoding order*, the
// server can recover any node's interval by walking down from the root —
// no per-node bookkeeping and no protocol rounds.

Result<uint64_t> MutableOpeServer::EncodingOf(const crypto::Block& cipher) const {
  for (const Node& node : nodes_) {
    if (node.cipher == cipher) return node.encoding;
  }
  return Status::NotFound("ciphertext not stored");
}

std::vector<std::pair<uint64_t, crypto::Block>> MutableOpeServer::Dump() const {
  std::vector<std::pair<uint64_t, crypto::Block>> out;
  out.reserve(nodes_.size());
  std::vector<int> in_order;
  CollectInOrder(root_, &in_order);
  for (int idx : in_order) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    out.emplace_back(node.encoding, node.cipher);
  }
  return out;
}

int MutableOpeServer::InsertAt(int parent, bool go_right,
                               const crypto::Block& cipher) {
  if (parent == -1) {
    MOPE_CHECK(root_ == -1, "insert at root of a non-empty tree");
    Node node;
    node.cipher = cipher;
    node.encoding = kSpan / 2;
    nodes_.push_back(node);
    root_ = 0;
    return root_;
  }

  // Recover the parent's interval by walking down from the root (the
  // server knows the structure; this costs no protocol rounds).
  uint64_t lo = 0, hi = kSpan;
  int cursor = root_;
  while (cursor != parent) {
    const Node& n = nodes_[static_cast<size_t>(cursor)];
    // The parent is in exactly one subtree; encodings order the walk.
    if (nodes_[static_cast<size_t>(parent)].encoding < n.encoding) {
      hi = n.encoding;
      cursor = n.left;
    } else {
      lo = n.encoding;
      cursor = n.right;
    }
    MOPE_CHECK(cursor != -1, "parent not reachable from root");
  }
  const Node& p = nodes_[static_cast<size_t>(parent)];
  const uint64_t child_lo = go_right ? p.encoding : lo;
  const uint64_t child_hi = go_right ? hi : p.encoding;
  if (child_hi - child_lo < 2) {
    return -1;  // path budget exhausted: caller must Rebalance and retry
  }
  MOPE_CHECK(go_right ? p.right == -1 : p.left == -1,
             "insert slot already occupied");

  Node node;
  node.cipher = cipher;
  node.encoding = child_lo + (child_hi - child_lo) / 2;
  nodes_.push_back(node);
  const int idx = static_cast<int>(nodes_.size()) - 1;
  Node& parent_node = nodes_[static_cast<size_t>(parent)];
  (go_right ? parent_node.right : parent_node.left) = idx;
  return idx;
}

void MutableOpeServer::CollectInOrder(int node, std::vector<int>* out) const {
  if (node == -1) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  CollectInOrder(n.left, out);
  out->push_back(node);
  CollectInOrder(n.right, out);
}

int MutableOpeServer::BuildBalanced(const std::vector<int>& in_order,
                                    int begin, int end) {
  if (begin >= end) return -1;
  const int mid = begin + (end - begin) / 2;
  const int idx = in_order[static_cast<size_t>(mid)];
  Node& node = nodes_[static_cast<size_t>(idx)];
  node.left = BuildBalanced(in_order, begin, mid);
  node.right = BuildBalanced(in_order, mid + 1, end);
  return idx;
}

void MutableOpeServer::AssignEncodings(int node, uint64_t lo, uint64_t hi,
                                       int depth) {
  if (node == -1) return;
  MOPE_CHECK(hi - lo >= 2 && depth <= kMaxDepth, "encoding space exhausted");
  Node& n = nodes_[static_cast<size_t>(node)];
  const uint64_t mid = lo + (hi - lo) / 2;
  if (n.encoding != mid) {
    n.encoding = mid;
    ++reencodings_;
  }
  AssignEncodings(n.left, lo, mid, depth + 1);
  AssignEncodings(n.right, mid, hi, depth + 1);
}

void MutableOpeServer::Rebalance() {
  std::vector<int> in_order;
  CollectInOrder(root_, &in_order);
  root_ = BuildBalanced(in_order, 0, static_cast<int>(in_order.size()));
  AssignEncodings(root_, 0, kSpan, 0);
  ++rebalances_;
}

// ---------------------------------------------------------------------------
// Client

Result<MutableOpeClient::Probe> MutableOpeClient::Descend(uint64_t plaintext) {
  Probe probe;
  int cursor = server_->root_;
  while (cursor != -1) {
    MOPE_ASSIGN_OR_RETURN(uint64_t stored,
                          det_.Decrypt(server_->CipherAt(cursor)));
    probe.parent = cursor;
    probe.go_right = plaintext >= stored;  // duplicates go right, consistently
    cursor = probe.go_right
                 ? server_->nodes_[static_cast<size_t>(cursor)].right
                 : server_->nodes_[static_cast<size_t>(cursor)].left;
  }
  return probe;
}

Result<uint64_t> MutableOpeClient::Insert(uint64_t plaintext) {
  const crypto::Block cipher = det_.Encrypt(plaintext);
  while (true) {
    MOPE_ASSIGN_OR_RETURN(Probe probe, Descend(plaintext));
    const int idx = server_->InsertAt(probe.parent, probe.go_right, cipher);
    if (idx >= 0) {
      return server_->nodes_[static_cast<size_t>(idx)].encoding;
    }
    // Path budget exhausted: the server rebalances (re-encoding stored
    // elements) and the protocol restarts.
    server_->Rebalance();
  }
}

Result<uint64_t> MutableOpeClient::LowerBoundEncoding(uint64_t plaintext) {
  // Interactive descent tracking the smallest encoding whose value is >=
  // plaintext; kSpan means "above everything".
  uint64_t best = kSpan;
  int cursor = server_->root_;
  while (cursor != -1) {
    MOPE_ASSIGN_OR_RETURN(uint64_t stored,
                          det_.Decrypt(server_->CipherAt(cursor)));
    const MutableOpeServer::Node& node =
        server_->nodes_[static_cast<size_t>(cursor)];
    if (stored >= plaintext) {
      best = node.encoding;
      cursor = node.left;
    } else {
      cursor = node.right;
    }
  }
  return best;
}

}  // namespace mope::ope
