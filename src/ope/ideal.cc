#include "ope/ideal.h"

#include <algorithm>

namespace mope::ope {

RandomOpf RandomOpf::Sample(uint64_t domain, uint64_t range,
                            mope::BitSource* bits) {
  MOPE_CHECK(domain > 0 && domain <= range, "OPF requires 0 < M <= N");
  // Sequential selection sampling (Knuth 3.4.2): walk the range once and
  // select each slot with probability needed/remaining. Produces a uniform
  // sorted M-subset of {0..N-1}.
  std::vector<uint64_t> table;
  table.reserve(domain);
  uint64_t needed = domain;
  for (uint64_t c = 0; c < range && needed > 0; ++c) {
    const uint64_t remaining = range - c;
    if (bits->UniformUint64(remaining) < needed) {
      table.push_back(c);
      --needed;
    }
  }
  MOPE_CHECK(needed == 0, "selection sampling underfilled");
  return RandomOpf(std::move(table), range);
}

uint64_t RandomOpf::Encrypt(uint64_t m) const {
  MOPE_CHECK(m < table_.size(), "OPF plaintext out of domain");
  return table_[m];
}

Result<uint64_t> RandomOpf::Decrypt(uint64_t c) const {
  const auto it = std::lower_bound(table_.begin(), table_.end(), c);
  if (it == table_.end() || *it != c) {
    return Status::NotFound("ciphertext not in OPF image");
  }
  return static_cast<uint64_t>(it - table_.begin());
}

uint64_t RandomOpf::DecryptFloorCeil(uint64_t c) const {
  const auto it = std::lower_bound(table_.begin(), table_.end(), c);
  return static_cast<uint64_t>(it - table_.begin());
}

RandomMopf RandomMopf::Sample(uint64_t domain, uint64_t range,
                              mope::BitSource* bits) {
  RandomOpf opf = RandomOpf::Sample(domain, range, bits);
  const uint64_t offset = bits->UniformUint64(domain);
  return RandomMopf(std::move(opf), offset);
}

uint64_t RandomMopf::Encrypt(uint64_t m) const {
  return opf_.Encrypt((m + offset_) % domain());
}

Result<uint64_t> RandomMopf::Decrypt(uint64_t c) const {
  MOPE_ASSIGN_OR_RETURN(uint64_t shifted, opf_.Decrypt(c));
  const uint64_t m_count = domain();
  return (shifted + m_count - offset_) % m_count;
}

}  // namespace mope::ope
