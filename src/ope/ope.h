#ifndef MOPE_OPE_OPE_H_
#define MOPE_OPE_OPE_H_

/// \file ope.h
/// Order-preserving symmetric encryption (Boldyreva-Chenette-Lee-O'Neill,
/// EUROCRYPT 2009): the POPF-secure OPE scheme the paper builds MOPE on.
///
/// Plaintext space is {0, ..., M-1}, ciphertext space {0, ..., N-1} with
/// N >= M (the paper's theorems assume N >= 8M; `SuggestRange` returns such
/// an N). Encryption "lazily samples" a uniformly random order-preserving
/// function: the ciphertext space is split at its midpoint, the number of
/// plaintexts falling left of the split is drawn from the exact
/// hypergeometric distribution using PRF-derived coins (so every encryption
/// call reconstructs the same function), and the recursion descends into the
/// half containing the target plaintext.
///
/// Deterministic, stateless, and key-only — no interaction and no stored
/// function table, so it scales to large domains at O(log N) HGD draws per
/// operation.

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/prf.h"
#include "obs/registry.h"

namespace mope::ope {

/// Domain/range sizes of an OPE instance.
struct OpeParams {
  uint64_t domain = 0;  ///< M: plaintexts are {0, ..., M-1}.
  uint64_t range = 0;   ///< N: ciphertexts are {0, ..., N-1}; N >= M.
};

/// Returns a ciphertext-space size satisfying the N >= 8M requirement of the
/// paper's security theorems (rounded up to the next power of two).
uint64_t SuggestRange(uint64_t domain);

/// Secret key: one AES-128 key for the coin PRF.
struct OpeKey {
  crypto::Key128 prf_key{};

  /// Draws a fresh key from the given entropy source.
  static OpeKey Generate(mope::BitSource* entropy);
};

/// The OPE scheme. Immutable after construction; safe to share across
/// threads for concurrent Encrypt/Decrypt.
class OpeScheme {
 public:
  /// Validates parameters (0 < M <= N) and builds the scheme. `registry`
  /// receives the ope.* counter family (encrypt/decrypt calls, HGD draws,
  /// recursion depth); null selects the process-global obs::Registry().
  static Result<OpeScheme> Create(const OpeParams& params, const OpeKey& key,
                                  obs::MetricsRegistry* registry = nullptr);

  const OpeParams& params() const { return params_; }

  /// Encrypts plaintext m in {0, ..., M-1}.
  Result<uint64_t> Encrypt(uint64_t m) const;

  /// Decrypts ciphertext c in {0, ..., N-1}. Returns Corruption if c is not
  /// the encryption of any plaintext under this key.
  Result<uint64_t> Decrypt(uint64_t c) const;

  /// Decrypts a ciphertext that may not be a valid encryption, rounding to
  /// the *smallest plaintext m with Encrypt(m) >= c*; returns M when no such
  /// plaintext exists. This is what a client needs to translate an arbitrary
  /// ciphertext-space boundary back into plaintext space.
  Result<uint64_t> DecryptFloorCeil(uint64_t c) const;

 private:
  OpeScheme(const OpeParams& params, const OpeKey& key,
            obs::MetricsRegistry* registry);

  /// Number of plaintexts (out of `m_count` in this node) that the sampled
  /// OPF maps into the left `draws` ciphertext slots of this node. Errors
  /// (parameter violation, coin-budget exhaustion) propagate to the caller.
  Result<uint64_t> SampleSplit(uint64_t dlo, uint64_t m_count, uint64_t rlo,
                               uint64_t n_count, uint64_t draws) const;

  /// The ciphertext of the single plaintext in a leaf node (m_count == 1).
  Result<uint64_t> LeafCiphertext(uint64_t dlo, uint64_t rlo,
                                  uint64_t n_count) const;

  OpeParams params_;
  crypto::Prf prf_;

  // ope.* metric handles (the registry owns the metrics; incrementing an
  // atomic counter through a const method keeps Encrypt/Decrypt shareable
  // across threads).
  obs::Counter* encrypt_calls_;
  obs::Counter* decrypt_calls_;
  obs::Counter* hgd_draws_;
  obs::ExpHistogram* recursion_depth_;
};

}  // namespace mope::ope

#endif  // MOPE_OPE_OPE_H_
