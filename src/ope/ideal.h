#ifndef MOPE_OPE_IDEAL_H_
#define MOPE_OPE_IDEAL_H_

/// \file ideal.h
/// The "ideal objects" of the POPF / PMOPF security notions (Section 7.1):
/// a uniformly random order-preserving function OPF[M, N], and a uniformly
/// random *modular* order-preserving function MOPF[M, N] (a random OPF
/// composed with a random modular shift). The empirical WOW experiments in
/// src/attack run the security games against these, mirroring the proofs
/// (Lemma 1 reduces the real schemes to the ideal ones up to PMOPF
/// advantage).

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace mope::ope {

/// A random order-preserving function from {0..M-1} to {0..N-1}, stored as
/// an explicit table (intended for experiment-scale M).
class RandomOpf {
 public:
  /// Samples f uniformly from OPF[M, N], i.e. a uniformly random M-subset of
  /// {0..N-1} in sorted order. Requires domain <= range.
  static RandomOpf Sample(uint64_t domain, uint64_t range, mope::BitSource* bits);

  uint64_t domain() const { return table_.size(); }
  uint64_t range() const { return range_; }

  /// f(m). Precondition: m < domain.
  uint64_t Encrypt(uint64_t m) const;

  /// f^{-1}(c), or NotFound when c is not in the image.
  Result<uint64_t> Decrypt(uint64_t c) const;

  /// Smallest m with f(m) >= c; domain() when none exists.
  uint64_t DecryptFloorCeil(uint64_t c) const;

  const std::vector<uint64_t>& table() const { return table_; }

 private:
  RandomOpf(std::vector<uint64_t> table, uint64_t range)
      : table_(std::move(table)), range_(range) {}

  std::vector<uint64_t> table_;  // sorted image of the OPF
  uint64_t range_;
};

/// A random modular order-preserving function: random shift + random OPF.
class RandomMopf {
 public:
  static RandomMopf Sample(uint64_t domain, uint64_t range,
                           mope::BitSource* bits);

  uint64_t domain() const { return opf_.domain(); }
  uint64_t range() const { return opf_.range(); }
  uint64_t offset() const { return offset_; }

  /// f((m + j) mod M).
  uint64_t Encrypt(uint64_t m) const;

  /// Inverse (including un-shifting); NotFound when c is not in the image.
  Result<uint64_t> Decrypt(uint64_t c) const;

 private:
  RandomMopf(RandomOpf opf, uint64_t offset)
      : opf_(std::move(opf)), offset_(offset) {}

  RandomOpf opf_;
  uint64_t offset_;
};

}  // namespace mope::ope

#endif  // MOPE_OPE_IDEAL_H_
