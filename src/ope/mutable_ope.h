#ifndef MOPE_OPE_MUTABLE_OPE_H_
#define MOPE_OPE_MUTABLE_OPE_H_

/// \file mutable_ope.h
/// The interactive ideal-security baseline: mutable OPE ("mOPE", Popa, Li &
/// Zeldovich, IEEE S&P 2013 — reference [30] of the paper).
///
/// mOPE leaks *only* order: the server stores deterministic (semantically
/// opaque) ciphertexts in a binary search tree it cannot compare, and every
/// insert/lookup is an interactive protocol — the server sends the
/// ciphertext at the current node, the client decrypts and answers
/// left/right, one round per tree level. Each element's OPE *encoding* is
/// its tree path padded into a 64-bit integer; inserts that exhaust the path
/// budget force the server to rebalance and RE-ENCODE existing elements
/// (mutation), which in a real DBMS means rewriting stored values and index
/// entries.
///
/// The paper's Section 5.1 argument against this design — and for MOPE — is
/// exactly what this implementation makes measurable: mOPE needs a modified,
/// protocol-aware DBMS, pays O(log n) interaction rounds per operation and
/// periodic re-encodings, while MOPE is non-interactive, zero-mutation, and
/// runs on any stock database (see bench_sec51_mutable_baseline).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "crypto/aes.h"

namespace mope::ope {

/// Deterministic encryption of 64-bit values (AES-128 of a framed block).
/// The server stores these; only the client can open them.
class DetCipher {
 public:
  explicit DetCipher(const crypto::Key128& key) : aes_(key) {}

  crypto::Block Encrypt(uint64_t plaintext) const;

  /// Fails with Corruption when the block is not a valid encryption.
  Result<uint64_t> Decrypt(const crypto::Block& cipher) const;

 private:
  crypto::Aes128 aes_;
};

/// The server half: a search tree over opaque ciphertexts. The server never
/// learns plaintexts; it just follows the client's left/right directions.
class MutableOpeServer {
 public:
  /// Path-budget in bits for encodings (tree deeper than this triggers a
  /// rebalance). 62 keeps every midpoint computation inside uint64.
  static constexpr int kMaxDepth = 62;

  MutableOpeServer() = default;

  size_t size() const { return nodes_.size(); }

  /// Cumulative protocol counters.
  uint64_t interaction_rounds() const { return rounds_; }
  uint64_t reencodings() const { return reencodings_; }
  uint64_t rebalances() const { return rebalances_; }

  /// The encoding currently assigned to a node (for tests/clients).
  Result<uint64_t> EncodingOf(const crypto::Block& cipher) const;

  /// All (encoding, ciphertext) pairs in encoding order — what the "real"
  /// DBMS column would contain.
  std::vector<std::pair<uint64_t, crypto::Block>> Dump() const;

 private:
  friend class MutableOpeClient;

  struct Node {
    crypto::Block cipher;
    int left = -1;
    int right = -1;
    uint64_t encoding = 0;
  };

  /// One navigation step: returns the ciphertext at `node` (a protocol
  /// round). The client answers by calling again with the chosen child.
  const crypto::Block& CipherAt(int node) {
    ++rounds_;
    return nodes_[static_cast<size_t>(node)].cipher;
  }

  /// Inserts under the given parent/direction; assigns the new encoding and
  /// rebalances (re-encoding everything) when the path budget is exhausted.
  /// Returns the node index of the inserted element.
  int InsertAt(int parent, bool go_right, const crypto::Block& cipher);

  /// Rebuilds the tree perfectly balanced and re-assigns every encoding.
  void Rebalance();

  void AssignEncodings(int node, uint64_t lo, uint64_t hi, int depth);
  void CollectInOrder(int node, std::vector<int>* out) const;
  int BuildBalanced(const std::vector<int>& in_order, int begin, int end);

  std::vector<Node> nodes_;
  int root_ = -1;
  uint64_t rounds_ = 0;
  uint64_t reencodings_ = 0;
  uint64_t rebalances_ = 0;
};

/// The client half: holds the DET key and drives the interactive protocol.
class MutableOpeClient {
 public:
  MutableOpeClient(const crypto::Key128& det_key, MutableOpeServer* server)
      : det_(det_key), server_(server) {}

  /// Inserts a plaintext (duplicates allowed: they take a consistent side)
  /// and returns its encoding *at insert time* (later rebalances may change
  /// it — the "mutable" in mOPE).
  Result<uint64_t> Insert(uint64_t plaintext);

  /// Encoding-space lower bound for range queries: an encoding e such that
  /// exactly the stored values >= plaintext have encodings >= e.
  Result<uint64_t> LowerBoundEncoding(uint64_t plaintext);

 private:
  /// Interactive descent; returns (parent, go_right) for the insert point,
  /// or the node itself when found.
  struct Probe {
    int node = -1;       // exact match, or -1
    int parent = -1;
    bool go_right = false;
  };
  Result<Probe> Descend(uint64_t plaintext);

  DetCipher det_;
  MutableOpeServer* server_;
};

}  // namespace mope::ope

#endif  // MOPE_OPE_MUTABLE_OPE_H_
