#include "proxy/connection_registry.h"

#include <map>
#include <utility>

#include "common/thread_annotations.h"

namespace mope::proxy {
namespace {

struct Registry {
  Mutex mutex{lock_rank::kConnectionRegistry};
  std::map<std::string, ConnectionSchemeFactory> factories
      MOPE_GUARDED_BY(mutex);
};

// Function-local static: safe against initialization-order issues when
// transports register themselves from other translation units at startup.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

void RegisterConnectionScheme(const std::string& scheme,
                              ConnectionSchemeFactory factory) {
  Registry& registry = GlobalRegistry();
  const MutexLock lock(&registry.mutex);
  registry.factories[scheme] = std::move(factory);
}

Result<std::unique_ptr<ServerConnection>> MakeConnection(
    const std::string& connection_string) {
  const size_t sep = connection_string.find("://");
  if (sep == std::string::npos || sep == 0) {
    return Status::InvalidArgument(
        "connection string must look like scheme://address, got '" +
        connection_string + "'");
  }
  const std::string scheme = connection_string.substr(0, sep);
  const std::string address = connection_string.substr(sep + 3);

  ConnectionSchemeFactory factory;
  {
    Registry& registry = GlobalRegistry();
    const MutexLock lock(&registry.mutex);
    const auto it = registry.factories.find(scheme);
    if (it == registry.factories.end()) {
      return Status::NotFound("no connection scheme registered for '" +
                              scheme + "://'");
    }
    factory = it->second;
  }
  // Invoke outside the lock: factories may block (TCP connect).
  return factory(address);
}

}  // namespace mope::proxy
