#ifndef MOPE_PROXY_SYSTEM_H_
#define MOPE_PROXY_SYSTEM_H_

/// \file system.h
/// End-to-end wiring of the paper's architecture: clients -> proxy ->
/// (unmodified) database server, with data-owner-side encrypted loading.
///
/// A MopeSystem owns the untrusted DbServer and one trusted Proxy per
/// MOPE-encrypted column. Loading a table draws a fresh MOPE key for the
/// encrypted column, encrypts every value before it reaches the server, and
/// builds the server-side B+-tree index over the ciphertexts.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dist/distribution.h"
#include "engine/server.h"
#include "obs/registry.h"
#include "proxy/proxy.h"

namespace mope::proxy {

/// Per-column encryption/query settings (ProxyConfig minus the names).
struct EncryptedColumnSpec {
  std::string column;
  uint64_t domain = 0;      ///< Plaintext values must lie in [0, domain).
  uint64_t k = 1;           ///< Fixed query length.
  QueryMode mode = QueryMode::kUniform;
  uint64_t period = 0;      ///< ρ for periodic modes.
  size_t batch_size = 1;    ///< Ranges per server request.
};

class MopeSystem {
 public:
  /// `seed` drives key generation and all proxy randomness.
  explicit MopeSystem(uint64_t seed = 0xC0FFEE);

  engine::DbServer* server() { return &server_; }
  const engine::DbServer& server() const { return server_; }

  /// Client-side metrics registry: every proxy this system creates reports
  /// its proxy.* counters here. Separate from the embedded server's own
  /// registry (server()->metrics()), so an in-process system still keeps the
  /// trusted and untrusted sides' accounting apart — exactly like a real
  /// deployment where the registries live in different processes.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Creates `name` on the server with the given schema, encrypts
  /// `spec.column` of every row under a fresh MOPE key, loads the rows and
  /// indexes the ciphertext column. `known_q` provides the query-start
  /// distribution for the non-adaptive modes (over domain start points).
  Status LoadTable(const std::string& name, engine::Schema schema,
                   const std::vector<engine::Row>& rows,
                   const EncryptedColumnSpec& spec,
                   const dist::Distribution* known_q = nullptr);

  /// Attaches a table that already lives behind `connection` (a server in
  /// another process, loaded from a snapshot or by a same-seed LoadTable).
  /// Draws the MOPE key and proxy seed from this system's rng in exactly
  /// LoadTable's order, so a MopeSystem built with the same seed and the
  /// same call sequence derives the identical key the remote ciphertexts
  /// were produced under — keys never cross the wire. Key rotation is not
  /// available on attached tables (it needs embedded-server access).
  Status AttachRemoteTable(const std::string& name,
                           const EncryptedColumnSpec& spec,
                           std::unique_ptr<ServerConnection> connection,
                           const dist::Distribution* known_q = nullptr);

  /// When set, LoadTable routes the new proxy's queries through a
  /// connection built by `factory` (e.g. net::MakeLoopbackWireConnection
  /// for honest wire-bandwidth accounting) instead of a DirectConnection.
  /// Data loading still goes straight into the embedded server. Proxies
  /// created through a factory connection cannot rotate keys.
  using ConnectionFactory =
      std::function<Result<std::unique_ptr<ServerConnection>>()>;
  void set_connection_factory(ConnectionFactory factory) {
    connection_factory_ = std::move(factory);
  }

  /// The proxy managing `table.column`.
  Result<Proxy*> GetProxy(const std::string& table, const std::string& column);

  /// Name of the MOPE-encrypted column of `table`, if it has one.
  std::optional<std::string> EncryptedColumnOf(const std::string& table) const;

  /// Client entry point: a plaintext range query on an encrypted column.
  Result<QueryResponse> Query(const std::string& table,
                              const std::string& column,
                              const query::RangeQuery& q);

  /// Rotates `table.column` to a fresh MOPE key (full server-side
  /// re-encryption; see Proxy::RotateKey). Returns rows re-encrypted.
  Result<uint64_t> RotateKey(const std::string& table,
                             const std::string& column);

  /// Turns on the embedded server's live leakage auditor for an encrypted
  /// column, deriving the audit parameters from public information only:
  /// space = the ciphertext range SuggestRange(domain) the column was loaded
  /// with, domain = the plaintext domain M. The leakage.* gauges land in the
  /// *server's* registry — they model what the untrusted side can compute.
  /// `domain` must match the column's EncryptedColumnSpec.
  Status EnableLeakageAudit(uint64_t domain,
                            obs::LeakageAuditConfig overrides = {});

 private:
  engine::DbServer server_;
  /// Heap-held so MopeSystem stays movable (a registry owns a mutex).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  Rng rng_;
  ConnectionFactory connection_factory_;
  std::map<std::string, std::unique_ptr<Proxy>> proxies_;  // "table.column"
};

}  // namespace mope::proxy

#endif  // MOPE_PROXY_SYSTEM_H_
