#ifndef MOPE_PROXY_SQL_SESSION_H_
#define MOPE_PROXY_SQL_SESSION_H_

/// \file sql_session.h
/// CryptDB-style SQL over the encrypted system.
///
/// A client writes ordinary SQL with range predicates; the session rewrites
/// the predicate on the MOPE-encrypted column into proxy range queries (with
/// all the fake-query machinery), pulls the qualifying rows back, and then
/// executes the *original* statement — residual predicates, expressions,
/// joins against client-side tables, aggregation — locally over the fetched
/// plaintext rows. The server never sees the SQL, only the mixed stream of
/// encrypted ranges.
///
///   EncryptedSqlSession session(&system);
///   session.AttachClientTable("part", part_schema, part_rows);
///   auto result = session.Execute(
///       "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
///       "WHERE l_shipdate BETWEEN 366 AND 730 AND l_discount < 0.06");

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "proxy/system.h"
#include "sql/planner.h"

namespace mope::proxy {

class EncryptedSqlSession {
 public:
  /// `system` must outlive the session.
  explicit EncryptedSqlSession(MopeSystem* system) : system_(system) {}

  /// Registers a client-side table (e.g. a small dimension table that never
  /// left the client) available to joins in subsequent statements.
  Status AttachClientTable(const std::string& name, engine::Schema schema,
                           const std::vector<engine::Row>& rows);

  /// Executes one statement. SELECTs need: FROM names a table with a
  /// MOPE-encrypted column, and the WHERE clause contains a conjunct that is
  /// a range condition (or OR of range conditions) on that column — the
  /// fetch predicate. Everything else in the statement runs client-side.
  ///
  /// `EXPLAIN <select>` plans without executing and returns the plan as a
  /// one-column result: a Fetch header (which encrypted column, how many
  /// coalesced segments) plus the local operator tree with the planner's
  /// cardinality estimates. `EXPLAIN ANALYZE <select>` executes the
  /// statement under a fresh trace + profile (regardless of EnableTracing)
  /// and annotates each operator with actuals — rows, Next() calls,
  /// inclusive nanoseconds, index entries/nodes — followed by the
  /// query-level resource vector: the real/fake query mix, trace counters
  /// (HGD draws, OPE encrypt/decrypt calls), and every profile entry the
  /// server attributed to this query's trace id (srv.* counter deltas,
  /// net.* frame bytes). Readable afterwards via last_profile().
  Result<sql::SqlResult> Execute(const std::string& sql_text);

  /// Accounting for the most recent Execute call.
  struct SessionStats {
    uint64_t ranges_fetched = 0;   ///< Plaintext ranges sent to the proxy.
    uint64_t rows_fetched = 0;     ///< Rows surviving the proxy's filter.
    uint64_t real_queries = 0;     ///< Fixed-length real queries executed.
    uint64_t fake_queries = 0;     ///< Fake queries executed.
    uint64_t server_requests = 0;  ///< Batched server round trips.
  };
  const SessionStats& last_stats() const { return stats_; }

  /// Turns on per-query tracing: every subsequent Execute builds a fresh
  /// span tree (parse → per-segment fetch with sample/encrypt/round-trip/
  /// decrypt children → local_exec), readable via last_trace(). `clock` must
  /// outlive the session; nullptr selects SystemClock(). Tests pass a
  /// ManualClock so the recorded timings are deterministic.
  void EnableTracing(obs::Clock* clock = nullptr) {
    tracing_enabled_ = true;
    trace_clock_ = clock;
  }
  void DisableTracing() {
    tracing_enabled_ = false;
    last_trace_.reset();
  }

  /// Span tree of the most recent Execute, or null if tracing is off (or
  /// nothing ran yet). EXPLAIN ANALYZE always records one.
  const obs::Trace* last_trace() const { return last_trace_.get(); }

  /// Resource profile of the most recent EXPLAIN ANALYZE, or null. Entries:
  /// srv.* (server counter deltas attributed to this query), net.* (wire
  /// frames/bytes, zero for an embedded server), profile.trace_id.
  const obs::ProfileCollector* last_profile() const {
    return last_profile_.get();
  }

 private:
  /// The per-statement fetch decision: which encrypted column, through which
  /// proxy, over which coalesced ciphertext segments.
  struct FetchPlan {
    std::string enc_column;
    Proxy* proxy = nullptr;
    uint64_t domain = 0;
    std::vector<Segment> segments;
  };

  /// Execute minus the trace bookkeeping (runs with the trace, if any,
  /// already active on this thread).
  Result<sql::SqlResult> ExecuteImpl(const std::string& sql_text);
  /// The EXPLAIN [ANALYZE] path: renders the fetch + local plan, executing
  /// (and annotating actuals + resources) only when `analyze` is set.
  Result<sql::SqlResult> ExplainImpl(sql::SelectStmt stmt, bool analyze);

  /// Resolves the encrypted column and extracts/coalesces the fetch ranges.
  Result<FetchPlan> PlanFetch(const sql::SelectStmt& stmt);
  /// Runs the fetch plan through the proxy, filling stats_ and mirroring
  /// the per-statement accounting into the system registry.
  Result<std::vector<engine::Row>> FetchSegments(const FetchPlan& plan);
  /// Builds the client-side scratch catalog: fetched rows under the original
  /// table name plus copies of any attached client tables the join needs.
  Status BuildScratch(const sql::SelectStmt& stmt,
                      engine::Schema server_schema,
                      std::vector<engine::Row> fetched,
                      engine::Catalog* scratch);

  MopeSystem* system_;
  engine::Catalog client_tables_;
  SessionStats stats_;
  bool tracing_enabled_ = false;
  obs::Clock* trace_clock_ = nullptr;
  std::unique_ptr<obs::Trace> last_trace_;
  std::unique_ptr<obs::ProfileCollector> last_profile_;
};

}  // namespace mope::proxy

#endif  // MOPE_PROXY_SQL_SESSION_H_
