#ifndef MOPE_PROXY_SQL_SESSION_H_
#define MOPE_PROXY_SQL_SESSION_H_

/// \file sql_session.h
/// CryptDB-style SQL over the encrypted system.
///
/// A client writes ordinary SQL with range predicates; the session rewrites
/// the predicate on the MOPE-encrypted column into proxy range queries (with
/// all the fake-query machinery), pulls the qualifying rows back, and then
/// executes the *original* statement — residual predicates, expressions,
/// joins against client-side tables, aggregation — locally over the fetched
/// plaintext rows. The server never sees the SQL, only the mixed stream of
/// encrypted ranges.
///
///   EncryptedSqlSession session(&system);
///   session.AttachClientTable("part", part_schema, part_rows);
///   auto result = session.Execute(
///       "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
///       "WHERE l_shipdate BETWEEN 366 AND 730 AND l_discount < 0.06");

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "proxy/system.h"
#include "sql/planner.h"

namespace mope::proxy {

class EncryptedSqlSession {
 public:
  /// `system` must outlive the session.
  explicit EncryptedSqlSession(MopeSystem* system) : system_(system) {}

  /// Registers a client-side table (e.g. a small dimension table that never
  /// left the client) available to joins in subsequent statements.
  Status AttachClientTable(const std::string& name, engine::Schema schema,
                           const std::vector<engine::Row>& rows);

  /// Executes one SELECT. Requirements: FROM names a table with a
  /// MOPE-encrypted column, and the WHERE clause contains a conjunct that is
  /// a range condition (or OR of range conditions) on that column — the
  /// fetch predicate. Everything else in the statement runs client-side.
  Result<sql::SqlResult> Execute(const std::string& sql_text);

  /// Accounting for the most recent Execute call.
  struct SessionStats {
    uint64_t ranges_fetched = 0;   ///< Plaintext ranges sent to the proxy.
    uint64_t rows_fetched = 0;     ///< Rows surviving the proxy's filter.
    uint64_t real_queries = 0;     ///< Fixed-length real queries executed.
    uint64_t fake_queries = 0;     ///< Fake queries executed.
    uint64_t server_requests = 0;  ///< Batched server round trips.
  };
  const SessionStats& last_stats() const { return stats_; }

  /// Turns on per-query tracing: every subsequent Execute builds a fresh
  /// span tree (parse → per-segment fetch with sample/encrypt/round-trip/
  /// decrypt children → local_exec), readable via last_trace(). `clock` must
  /// outlive the session; nullptr selects SystemClock(). Tests pass a
  /// ManualClock so the recorded timings are deterministic.
  void EnableTracing(obs::Clock* clock = nullptr) {
    tracing_enabled_ = true;
    trace_clock_ = clock;
  }
  void DisableTracing() {
    tracing_enabled_ = false;
    last_trace_.reset();
  }

  /// Span tree of the most recent Execute, or null if tracing is off (or
  /// nothing ran yet).
  const obs::Trace* last_trace() const { return last_trace_.get(); }

 private:
  /// Execute minus the trace bookkeeping (runs with the trace, if any,
  /// already active on this thread).
  Result<sql::SqlResult> ExecuteImpl(const std::string& sql_text);

  MopeSystem* system_;
  engine::Catalog client_tables_;
  SessionStats stats_;
  bool tracing_enabled_ = false;
  obs::Clock* trace_clock_ = nullptr;
  std::unique_ptr<obs::Trace> last_trace_;
};

}  // namespace mope::proxy

#endif  // MOPE_PROXY_SQL_SESSION_H_
