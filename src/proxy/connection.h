#ifndef MOPE_PROXY_CONNECTION_H_
#define MOPE_PROXY_CONNECTION_H_

/// \file connection.h
/// The proxy's view of the database server.
///
/// In the paper's deployment the server is a remote, unmodified DBMS; the
/// proxy only needs two capabilities from it: execute a batch of range
/// predicates over an indexed column, and describe a table. Abstracting
/// them behind ServerConnection lets tests inject transient failures (a
/// real network does fail) and makes the proxy location-transparent: the
/// wire protocol lives behind net::RemoteConnection (src/net/), which slots
/// in here without touching the proxy logic.

#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "engine/server.h"
#include "engine/table.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace mope::proxy {

class ServerConnection {
 public:
  virtual ~ServerConnection() = default;

  /// Executes a batch of (possibly wrapping) ciphertext ranges against the
  /// index on `column` of `table`; rows come back with stable row ids.
  virtual Result<std::vector<std::pair<engine::RowId, engine::Row>>>
  ExecuteRangeBatch(const std::string& table, const std::string& column,
                    const std::vector<ModularInterval>& ranges) = 0;

  /// Schema of a server table (catalog lookup).
  virtual Result<engine::Schema> GetSchema(const std::string& table) = 0;

  /// Number of rows the batch would return, without shipping them. The
  /// default fetches and counts; connections with a cheaper path (the wire
  /// protocol's count-only message, DbServer::CountRangeBatch) override it.
  virtual Result<uint64_t> CountRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges) {
    MOPE_ASSIGN_OR_RETURN(auto rows, ExecuteRangeBatch(table, column, ranges));
    return static_cast<uint64_t>(rows.size());
  }

  /// The server's metrics snapshot (sorted name/value pairs, histogram
  /// buckets flattened): the live stats endpoint. Connections to servers
  /// that expose one override this; the default reports NotSupported.
  virtual Result<std::vector<std::pair<std::string, uint64_t>>>
  FetchServerStats() {
    return Status::NotSupported("this connection has no stats endpoint");
  }
};

/// In-process connection to an embedded DbServer.
///
/// Profile parity with the wire path: when a thread-local ProfileCollector
/// is active (EXPLAIN ANALYZE), each data-bearing call is bracketed by an
/// engine::ServerProfileProbe — the same fixed counter set the remote
/// dispatcher snapshots — so an embedded query's profile is field-identical
/// to one collected across TCP.
class DirectConnection final : public ServerConnection {
 public:
  explicit DirectConnection(engine::DbServer* server) : server_(server) {}

  Result<std::vector<std::pair<engine::RowId, engine::Row>>> ExecuteRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges) override {
    obs::ProfileCollector* collector = obs::CurrentProfileCollector();
    if (collector == nullptr) {
      return server_->ExecuteRangeBatchWithIds(table, column, ranges);
    }
    const engine::ServerProfileProbe probe(server_);
    auto rows = server_->ExecuteRangeBatchWithIds(table, column, ranges);
    MergeProfile(probe, collector);
    return rows;
  }

  Result<engine::Schema> GetSchema(const std::string& table) override {
    MOPE_ASSIGN_OR_RETURN(const engine::Table* tbl,
                          static_cast<const engine::DbServer*>(server_)
                              ->catalog()
                              .GetTable(table));
    return tbl->schema();
  }

  Result<uint64_t> CountRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges) override {
    obs::ProfileCollector* collector = obs::CurrentProfileCollector();
    if (collector == nullptr) {
      return server_->CountRangeBatch(table, column, ranges);
    }
    const engine::ServerProfileProbe probe(server_);
    auto count = server_->CountRangeBatch(table, column, ranges);
    MergeProfile(probe, collector);
    return count;
  }

  Result<std::vector<std::pair<std::string, uint64_t>>> FetchServerStats()
      override {
    return server_->metrics()->Snapshot();
  }

 private:
  /// Mirrors the remote merge in RemoteConnection::RoundTrip: deltas add
  /// across the query's per-segment calls, the trace id overwrites.
  static void MergeProfile(const engine::ServerProfileProbe& probe,
                           obs::ProfileCollector* collector) {
    for (const auto& [name, value] : probe.Delta()) {
      collector->Add(name, value);
    }
    collector->Set("profile.trace_id", obs::CurrentTraceId());
  }

  engine::DbServer* server_;
};

}  // namespace mope::proxy

#endif  // MOPE_PROXY_CONNECTION_H_
