#include "proxy/system.h"

namespace mope::proxy {

MopeSystem::MopeSystem(uint64_t seed)
    : metrics_(std::make_unique<obs::MetricsRegistry>()), rng_(seed) {}

Status MopeSystem::LoadTable(const std::string& name, engine::Schema schema,
                             const std::vector<engine::Row>& rows,
                             const EncryptedColumnSpec& spec,
                             const dist::Distribution* known_q) {
  MOPE_ASSIGN_OR_RETURN(size_t enc_col, schema.IndexOf(spec.column));
  if (schema.column(enc_col).type != engine::ValueType::kInt) {
    return Status::InvalidArgument("encrypted column must be int");
  }
  if (spec.domain == 0) {
    return Status::InvalidArgument("encrypted column needs a domain size");
  }

  // Data-owner side: draw the key and encrypt before anything reaches the
  // untrusted server.
  const ope::OpeParams params{spec.domain, ope::SuggestRange(spec.domain)};
  const ope::MopeKey key = ope::MopeKey::Generate(spec.domain, &rng_);
  MOPE_ASSIGN_OR_RETURN(ope::MopeScheme scheme,
                        ope::MopeScheme::Create(params, key, metrics_.get()));

  MOPE_ASSIGN_OR_RETURN(engine::Table * table,
                        server_.catalog()->CreateTable(name, std::move(schema)));

  // Populate in a nested scope so any mid-load failure rolls the half-built
  // table back out of the catalog: a table with some rows encrypted and no
  // proxy would otherwise stay queryable-looking but permanently broken.
  //
  // The index is created before the first row so that with durable storage
  // attached the index-create lands in the WAL ahead of every insert: a
  // crash at any point during the load recovers to a queryable prefix.
  const Status load = [&]() -> Status {
    MOPE_RETURN_NOT_OK(table->CreateIndex(spec.column));
    for (const engine::Row& row : rows) {
      engine::Row encrypted = row;
      const int64_t plain = std::get<int64_t>(encrypted[enc_col]);
      if (plain < 0 || static_cast<uint64_t>(plain) >= spec.domain) {
        return Status::OutOfRange("value " + std::to_string(plain) +
                                  " outside the declared domain of '" +
                                  spec.column + "'");
      }
      MOPE_ASSIGN_OR_RETURN(uint64_t cipher,
                            scheme.Encrypt(static_cast<uint64_t>(plain)));
      encrypted[enc_col] = static_cast<int64_t>(cipher);
      MOPE_RETURN_NOT_OK(table->Insert(std::move(encrypted)).status());
    }
    return Status::OK();
  }();
  if (!load.ok()) {
    MOPE_RETURN_NOT_OK(server_.catalog()->DropTable(name));
    return load;
  }

  ProxyConfig config;
  config.table = name;
  config.column = spec.column;
  config.domain = spec.domain;
  config.k = spec.k;
  config.mode = spec.mode;
  config.period = spec.period;
  config.batch_size = spec.batch_size;
  config.rng_seed = rng_.NextWord();
  config.registry = metrics_.get();
  auto proxy = [&]() -> Result<std::unique_ptr<Proxy>> {
    if (!connection_factory_) {
      return Proxy::Create(config, key, params, &server_, known_q);
    }
    MOPE_ASSIGN_OR_RETURN(std::unique_ptr<ServerConnection> connection,
                          connection_factory_());
    return Proxy::Create(config, key, params, std::move(connection), known_q);
  }();
  if (!proxy.ok()) {
    MOPE_RETURN_NOT_OK(server_.catalog()->DropTable(name));
    return proxy.status();
  }
  proxies_[name + "." + spec.column] = std::move(proxy).value();
  return Status::OK();
}

Status MopeSystem::AttachRemoteTable(const std::string& name,
                                     const EncryptedColumnSpec& spec,
                                     std::unique_ptr<ServerConnection> connection,
                                     const dist::Distribution* known_q) {
  if (connection == nullptr) {
    return Status::InvalidArgument("AttachRemoteTable needs a connection");
  }
  if (spec.domain == 0) {
    return Status::InvalidArgument("encrypted column needs a domain size");
  }
  // All validation — including the remote round trip — happens before any
  // draw from rng_, so a failed attach leaves the key stream untouched and
  // a same-seed process stays in lockstep with the one that loaded the data.
  MOPE_ASSIGN_OR_RETURN(engine::Schema schema, connection->GetSchema(name));
  MOPE_ASSIGN_OR_RETURN(size_t enc_col, schema.IndexOf(spec.column));
  if (schema.column(enc_col).type != engine::ValueType::kInt) {
    return Status::InvalidArgument("encrypted column must be int");
  }

  // Same draw order as LoadTable: key first, proxy seed second.
  const ope::OpeParams params{spec.domain, ope::SuggestRange(spec.domain)};
  const ope::MopeKey key = ope::MopeKey::Generate(spec.domain, &rng_);

  ProxyConfig config;
  config.table = name;
  config.column = spec.column;
  config.domain = spec.domain;
  config.k = spec.k;
  config.mode = spec.mode;
  config.period = spec.period;
  config.batch_size = spec.batch_size;
  config.rng_seed = rng_.NextWord();
  config.registry = metrics_.get();
  MOPE_ASSIGN_OR_RETURN(
      std::unique_ptr<Proxy> proxy,
      Proxy::Create(config, key, params, std::move(connection), known_q));
  proxies_[name + "." + spec.column] = std::move(proxy);
  return Status::OK();
}

Result<Proxy*> MopeSystem::GetProxy(const std::string& table,
                                    const std::string& column) {
  const auto it = proxies_.find(table + "." + column);
  if (it == proxies_.end()) {
    return Status::NotFound("no proxy for " + table + "." + column);
  }
  return it->second.get();
}

std::optional<std::string> MopeSystem::EncryptedColumnOf(
    const std::string& table) const {
  const std::string prefix = table + ".";
  for (const auto& [key, _] : proxies_) {
    if (key.rfind(prefix, 0) == 0) return key.substr(prefix.size());
  }
  return std::nullopt;
}

Result<QueryResponse> MopeSystem::Query(const std::string& table,
                                        const std::string& column,
                                        const query::RangeQuery& q) {
  MOPE_ASSIGN_OR_RETURN(Proxy * proxy, GetProxy(table, column));
  return proxy->ExecuteRange(q);
}

Result<uint64_t> MopeSystem::RotateKey(const std::string& table,
                                       const std::string& column) {
  MOPE_ASSIGN_OR_RETURN(Proxy * proxy, GetProxy(table, column));
  return proxy->RotateKey(&rng_);
}

Status MopeSystem::EnableLeakageAudit(uint64_t domain,
                                      obs::LeakageAuditConfig overrides) {
  if (domain == 0) {
    return Status::InvalidArgument("leakage audit needs the column domain");
  }
  // Everything here is public: the ciphertext space is a deterministic
  // function of the (public) domain, so the untrusted server could enable
  // this itself — which is the point of the exercise.
  overrides.space = ope::SuggestRange(domain);
  overrides.domain = domain;
  return server_.EnableLeakageAudit(overrides);
}

}  // namespace mope::proxy
