#include "proxy/proxy.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/trace.h"

namespace mope::proxy {

using query::FixedQuery;
using query::QueryKind;
using query::RangeQuery;

namespace {

Status ValidateProxyConfig(const ProxyConfig& config,
                           const ope::OpeParams& params) {
  if (params.domain != config.domain) {
    return Status::InvalidArgument("scheme domain must match proxy domain");
  }
  if (config.k == 0 || config.k > config.domain) {
    return Status::InvalidArgument("fixed length k must be in [1, domain]");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch size must be positive");
  }
  return Status::OK();
}

}  // namespace

Proxy::Proxy(const ProxyConfig& config, ope::MopeScheme mope,
             std::unique_ptr<ServerConnection> connection,
             engine::DbServer* server)
    : config_(config), mope_(std::move(mope)),
      connection_(std::move(connection)), server_(server),
      rng_(config.rng_seed) {
  obs::MetricsRegistry* registry =
      config_.registry != nullptr ? config_.registry : obs::Registry();
  real_queries_ = registry->GetCounter("proxy.real_queries");
  fake_queries_ = registry->GetCounter("proxy.fake_queries");
  server_requests_ = registry->GetCounter("proxy.server_requests");
  rows_received_ = registry->GetCounter("proxy.rows_received");
  rows_returned_ = registry->GetCounter("proxy.rows_returned");
  retries_ = registry->GetCounter("proxy.retries");
  batch_queries_hist_ = registry->GetHistogram("proxy.batch_queries");
  mix_fakes_per_real_ =
      registry->GetGauge("proxy.mix.fakes_per_real_milli");
  mix_expected_fakes_ =
      registry->GetGauge("proxy.mix.expected_fakes_per_real_milli");
  mix_sampler_tv_ = registry->GetGauge("proxy.mix.sampler_tv_milli");
}

void Proxy::UpdateMixHealthLocked() {
  if (totals_.real_queries_sent > 0) {
    const double realized =
        static_cast<double>(totals_.fake_queries_sent) /
        static_cast<double>(totals_.real_queries_sent);
    mix_fakes_per_real_->Set(static_cast<int64_t>(realized * 1000.0 + 0.5));
  }
  const dist::MixPlan* plan =
      algorithm_ != nullptr ? algorithm_->mix_plan() : nullptr;
  if (plan == nullptr) return;
  mix_expected_fakes_->Set(
      static_cast<int64_t>(plan->expected_fakes_per_real() * 1000.0 + 0.5));
  // Sampler drift: total variation between the empirical distribution of
  // everything issued (real + fake starts) and the plan's perceived target.
  // This is the exact quantity the mixing identity alpha*Q + (1-alpha)*Qbar
  // promises tends to 0 — drift here means the fake sampler (or the assumed
  // Q) is wrong, and the server-side chi-square will eventually agree.
  if (issued_starts_.total() > 0 &&
      issued_starts_.size() == plan->perceived.size()) {
    double tv = 0.0;
    for (uint64_t i = 0; i < issued_starts_.size(); ++i) {
      tv += std::abs(issued_starts_.Probability(i) - plan->perceived.prob(i));
    }
    tv *= 0.5;
    mix_sampler_tv_->Set(static_cast<int64_t>(tv * 1000.0 + 0.5));
  }
}

Result<std::unique_ptr<Proxy>> Proxy::Create(const ProxyConfig& config,
                                             const ope::MopeKey& key,
                                             const ope::OpeParams& params,
                                             engine::DbServer* server,
                                             const dist::Distribution* known_q) {
  if (server == nullptr) {
    return Status::InvalidArgument("proxy needs a server");
  }
  MOPE_RETURN_NOT_OK(ValidateProxyConfig(config, params));
  MOPE_ASSIGN_OR_RETURN(ope::MopeScheme mope,
                        ope::MopeScheme::Create(params, key, config.registry));

  auto proxy = std::unique_ptr<Proxy>(
      new Proxy(config, std::move(mope),
                std::make_unique<DirectConnection>(server), server));

  // Resolve the key column up front so result filtering is cheap.
  MOPE_ASSIGN_OR_RETURN(engine::Schema schema,
                        proxy->connection_->GetSchema(config.table));
  MOPE_ASSIGN_OR_RETURN(proxy->key_column_index_,
                        schema.IndexOf(config.column));
  if (schema.column(proxy->key_column_index_).type !=
      engine::ValueType::kInt) {
    return Status::InvalidArgument("encrypted key column must be int");
  }

  MOPE_RETURN_NOT_OK(proxy->SetupAlgorithm(known_q));
  return proxy;
}

Result<std::unique_ptr<Proxy>> Proxy::Create(
    const ProxyConfig& config, const ope::MopeKey& key,
    const ope::OpeParams& params, std::unique_ptr<ServerConnection> connection,
    const dist::Distribution* known_q) {
  if (connection == nullptr) {
    return Status::InvalidArgument("proxy needs a server connection");
  }
  MOPE_RETURN_NOT_OK(ValidateProxyConfig(config, params));
  MOPE_ASSIGN_OR_RETURN(ope::MopeScheme mope,
                        ope::MopeScheme::Create(params, key, config.registry));

  auto proxy = std::unique_ptr<Proxy>(
      new Proxy(config, std::move(mope), std::move(connection), nullptr));
  MOPE_ASSIGN_OR_RETURN(engine::Schema schema,
                        proxy->connection_->GetSchema(config.table));
  MOPE_ASSIGN_OR_RETURN(proxy->key_column_index_,
                        schema.IndexOf(config.column));
  if (schema.column(proxy->key_column_index_).type !=
      engine::ValueType::kInt) {
    return Status::InvalidArgument("encrypted key column must be int");
  }
  MOPE_RETURN_NOT_OK(proxy->SetupAlgorithm(known_q));
  return proxy;
}

Status Proxy::SetupAlgorithm(const dist::Distribution* known_q) {
  const query::QueryConfig qc{config_.domain, config_.k};
  switch (config_.mode) {
    case QueryMode::kPassthrough:
      break;  // no algorithm: τk pieces are sent as-is
    case QueryMode::kUniform: {
      if (known_q == nullptr) {
        return Status::InvalidArgument(
            "QueryU needs the query-start distribution");
      }
      MOPE_ASSIGN_OR_RETURN(algorithm_,
                            query::UniformQueryAlgorithm::Create(qc, *known_q));
      break;
    }
    case QueryMode::kPeriodic: {
      if (known_q == nullptr) {
        return Status::InvalidArgument(
            "QueryP needs the query-start distribution");
      }
      MOPE_ASSIGN_OR_RETURN(
          algorithm_,
          query::PeriodicQueryAlgorithm::Create(qc, *known_q, config_.period));
      break;
    }
    case QueryMode::kAdaptiveUniform: {
      MOPE_ASSIGN_OR_RETURN(algorithm_,
                            query::AdaptiveQueryAlgorithm::Create(qc, 0));
      break;
    }
    case QueryMode::kAdaptivePeriodic: {
      MOPE_ASSIGN_OR_RETURN(
          algorithm_,
          query::AdaptiveQueryAlgorithm::Create(qc, config_.period));
      break;
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<engine::RowId, engine::Row>>> Proxy::SendBatch(
    const std::vector<ModularInterval>& cipher_ranges) {
  uint32_t attempt = 0;
  while (true) {
    auto rows = connection_->ExecuteRangeBatch(config_.table, config_.column,
                                               cipher_ranges);
    if (rows.ok() || attempt >= config_.max_retries) return rows;
    ++attempt;
    ++retries_performed_;
    retries_->Increment();
    obs::BumpTraceCounter("proxy.retries");
  }
}

Result<uint64_t> Proxy::RotateKey(mope::BitSource* entropy) {
  const MutexLock lock(&mutex_);
  if (server_ == nullptr) {
    return Status::NotSupported(
        "key rotation requires maintenance access to the embedded server");
  }
  const ope::MopeKey new_key = ope::MopeKey::Generate(config_.domain, entropy);
  MOPE_ASSIGN_OR_RETURN(ope::MopeScheme new_scheme,
                        ope::MopeScheme::Create(mope_.params(), new_key,
                                                config_.registry));

  MOPE_ASSIGN_OR_RETURN(engine::Table * table,
                        server_->catalog()->GetTable(config_.table));
  for (engine::RowId rid = 0; rid < table->row_count(); ++rid) {
    const int64_t old_cipher =
        std::get<int64_t>(table->row(rid)[key_column_index_]);
    MOPE_ASSIGN_OR_RETURN(uint64_t plain,
                          mope_.Decrypt(static_cast<uint64_t>(old_cipher)));
    MOPE_ASSIGN_OR_RETURN(uint64_t new_cipher, new_scheme.Encrypt(plain));
    MOPE_RETURN_NOT_OK(table->UpdateValue(rid, key_column_index_,
                                          static_cast<int64_t>(new_cipher)));
  }
  const uint64_t rotated = table->row_count();
  mope_ = std::move(new_scheme);
  return rotated;
}

Result<QueryResponse> Proxy::ExecuteRange(const RangeQuery& q) {
  const MutexLock lock(&mutex_);
  if (q.first > q.last || q.last >= config_.domain) {
    return Status::InvalidArgument("range query endpoints invalid");
  }

  // 1-2-3: decompose, mix with fakes, permute.
  std::vector<FixedQuery> batch;
  {
    const obs::ScopedSpan span("proxy.sample");
    if (algorithm_ != nullptr) {
      MOPE_ASSIGN_OR_RETURN(batch, algorithm_->Process(q, &rng_));
    } else {
      batch = query::Decompose(q, config_.k, config_.domain);
    }
  }
  batch_queries_hist_->Observe(batch.size());

  // The issued-start histogram only exists to feed the sampler-TV gauge, so
  // it is allocated on the first query that has a plan to compare against
  // (adaptive algorithms gain one mid-stream, at the cross-over freeze).
  if (issued_starts_.size() == 0 && algorithm_ != nullptr &&
      algorithm_->mix_plan() != nullptr) {
    issued_starts_ = Histogram(config_.domain);
  }

  QueryResponse response;
  for (const FixedQuery& fq : batch) {
    if (fq.kind == QueryKind::kReal) {
      ++response.real_queries_sent;
    } else {
      ++response.fake_queries_sent;
    }
    // Bounds-guarded: an algorithm bug emitting an out-of-domain start must
    // degrade the TV gauge, not abort the client on the histogram CHECK.
    if (fq.start < issued_starts_.size()) issued_starts_.Add(fq.start);
  }

  // 4: encrypt and ship in disjunctive batches, one batch per clock tick.
  // Since MOPE preserves modular order, a row's plaintext lies in the
  // client's range iff its ciphertext lies in the range's encryption — so
  // results can be filtered in ciphertext space and only the rows that
  // match need the (much more expensive) decryption walk.
  const ModularInterval want =
      ModularInterval::FromEndpoints(q.first, q.last, config_.domain);
  MOPE_ASSIGN_OR_RETURN(ope::CipherRange want_cipher,
                        mope_.EncryptRange(want));
  const ModularInterval want_cipher_iv = ModularInterval::FromEndpoints(
      want_cipher.first, want_cipher.last, mope_.range());
  std::unordered_set<engine::RowId> seen;
  for (size_t offset = 0; offset < batch.size(); offset += config_.batch_size) {
    const size_t end = std::min(batch.size(), offset + config_.batch_size);
    std::vector<ModularInterval> cipher_ranges;
    cipher_ranges.reserve(end - offset);
    {
      const obs::ScopedSpan span("proxy.encrypt");
      for (size_t i = offset; i < end; ++i) {
        const ModularInterval plain =
            query::CoverageOf(batch[i], config_.k, config_.domain);
        MOPE_ASSIGN_OR_RETURN(ope::CipherRange cr, mope_.EncryptRange(plain));
        cipher_ranges.push_back(ModularInterval::FromEndpoints(
            cr.first, cr.last, mope_.range()));
      }
    }
    MOPE_ASSIGN_OR_RETURN(auto rows, SendBatch(cipher_ranges));
    ++response.server_requests;
    ++response.clock_ticks;
    response.rows_received += rows.size();

    // 5: keep rows whose ciphertext falls in the client's encrypted range
    // (deduplicating rows returned by more than one overlapping request),
    // then decrypt the key column of just those rows.
    const obs::ScopedSpan span("proxy.decrypt_filter");
    for (auto& [rid, row] : rows) {
      const int64_t cipher = std::get<int64_t>(row[key_column_index_]);
      if (!want_cipher_iv.Contains(static_cast<uint64_t>(cipher))) continue;
      if (!seen.insert(rid).second) continue;
      MOPE_ASSIGN_OR_RETURN(uint64_t plain,
                            mope_.Decrypt(static_cast<uint64_t>(cipher)));
      row[key_column_index_] = static_cast<int64_t>(plain);
      response.rows.push_back(std::move(row));
    }
  }

  totals_.real_queries_sent += response.real_queries_sent;
  totals_.fake_queries_sent += response.fake_queries_sent;
  totals_.server_requests += response.server_requests;
  totals_.clock_ticks += response.clock_ticks;
  totals_.rows_received += response.rows_received;
  real_queries_->Increment(response.real_queries_sent);
  fake_queries_->Increment(response.fake_queries_sent);
  server_requests_->Increment(response.server_requests);
  rows_received_->Increment(response.rows_received);
  rows_returned_->Increment(response.rows.size());
  UpdateMixHealthLocked();
  return response;
}

}  // namespace mope::proxy
