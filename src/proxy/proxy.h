#ifndef MOPE_PROXY_PROXY_H_
#define MOPE_PROXY_PROXY_H_

/// \file proxy.h
/// The trusted proxy of the paper's architecture (Figure 4).
///
/// One Proxy instance manages one MOPE-encrypted column. It holds the secret
/// key and the completion distributions, and for every client range query:
///   1. decomposes the query into fixed-length-k pieces (τk),
///   2. draws the number of fake queries per piece from Geom(α) and samples
///      their start points from the completion distribution,
///   3. permutes real and fake queries and encrypts each into a
///      (possibly wrap-around) ciphertext range,
///   4. ships them to the server in fixed-size disjunctive batches (the
///      Section 5.1 multiple-range optimization; batch size 1 = one request
///      per query), at a fixed pacing of one batch per clock tick,
///   5. filters the returned ciphertext rows, keeping exactly those whose
///      decrypted key falls in the client's original range.
///
/// The server only ever observes encrypted ranges whose start points follow
/// the uniform (QueryU) or ρ-periodic (QueryP) perceived distribution.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/distribution.h"
#include "engine/server.h"
#include "obs/registry.h"
#include "ope/mope.h"
#include "proxy/connection.h"
#include "query/algorithms.h"

namespace mope::proxy {

/// Which query algorithm the proxy runs.
enum class QueryMode : uint8_t {
  kPassthrough,       ///< No fakes (insecure baseline: the gap attack works).
  kUniform,           ///< QueryU with a known query distribution.
  kPeriodic,          ///< QueryP[ρ] with a known query distribution.
  kAdaptiveUniform,   ///< AdaptiveQueryU (distribution learned online).
  kAdaptivePeriodic,  ///< AdaptiveQueryP (distribution learned online).
};

struct ProxyConfig {
  std::string table;        ///< Server table holding the ciphertext column.
  std::string column;       ///< Name of the MOPE-encrypted key column.
  uint64_t domain = 0;      ///< M: plaintext domain of the column.
  uint64_t k = 1;           ///< Fixed query length.
  QueryMode mode = QueryMode::kUniform;
  uint64_t period = 0;      ///< ρ for the periodic modes (divides domain).
  size_t batch_size = 1;    ///< Ranges OR-ed per server request (Fig. 15).
  uint64_t rng_seed = 42;   ///< Seed for coins/fakes/permutation.
  uint32_t max_retries = 0; ///< Per-request retries on transient server errors.

  /// Metrics sink for the proxy.* counter family. Null means the process
  /// global obs::Registry(). MopeSystem passes its own registry so the
  /// client-side counters never mix with the (embedded) server's registry —
  /// that separation is what lets a single test process assert that an
  /// embedded run and a remote run produce byte-identical proxy.* counters.
  obs::MetricsRegistry* registry = nullptr;
};

/// The proxy serves the paper's *set of clients* (Figure 4): ExecuteRange
/// and RotateKey are serialized internally, so any number of client threads
/// may share one Proxy. (Serialization is also semantically necessary — the
/// query-mixing state and the perceived-distribution guarantee are per
/// proxy, not per client.)
///
/// What the client gets back, plus accounting for the benches.
struct QueryResponse {
  std::vector<engine::Row> rows;  ///< Rows matching the original query.

  uint64_t real_queries_sent = 0;  ///< |τk(q)| pieces executed.
  uint64_t fake_queries_sent = 0;  ///< Fake/duplicate queries executed.
  uint64_t server_requests = 0;    ///< Batched round trips to the server.
  uint64_t rows_received = 0;      ///< Ciphertext rows shipped back.
  uint64_t clock_ticks = 0;        ///< Fixed-interval slots consumed.
};

class Proxy {
 public:
  /// Builds a proxy over an embedded server's table. For the non-adaptive
  /// modes `known_q` must provide the query-start distribution; adaptive
  /// modes ignore it and learn from the stream.
  static Result<std::unique_ptr<Proxy>> Create(
      const ProxyConfig& config, const ope::MopeKey& key,
      const ope::OpeParams& params, engine::DbServer* server,
      const dist::Distribution* known_q = nullptr);

  /// Builds a proxy over an arbitrary server connection (e.g. a failure-
  /// injecting test double, or a remote transport). Key rotation is not
  /// available through this form — it needs maintenance access to the
  /// embedded server.
  static Result<std::unique_ptr<Proxy>> Create(
      const ProxyConfig& config, const ope::MopeKey& key,
      const ope::OpeParams& params,
      std::unique_ptr<ServerConnection> connection,
      const dist::Distribution* known_q = nullptr);

  /// Executes a client range query end to end.
  Result<QueryResponse> ExecuteRange(const query::RangeQuery& q)
      MOPE_EXCLUDES(mutex_);

  /// Schema of the server-side table this proxy fronts, fetched through the
  /// connection — works identically for embedded and remote servers.
  Result<engine::Schema> GetServerSchema() const {
    return connection_->GetSchema(config_.table);
  }

  /// Encrypts a single plaintext value (used when loading data through the
  /// proxy, so the server never sees plaintexts). Takes the proxy lock: the
  /// scheme is replaced wholesale by RotateKey, so an unlocked read could
  /// encrypt under a torn half-rotated key.
  Result<uint64_t> EncryptValue(uint64_t m) const MOPE_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return mope_.Encrypt(m);
  }

  /// Decrypts a ciphertext (client-side use only). Locked, as EncryptValue.
  Result<uint64_t> DecryptValue(uint64_t c) const MOPE_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return mope_.Decrypt(c);
  }

  /// Re-encrypts the whole column under a fresh MOPE key — new OPE key and
  /// new secret offset — rewriting every server-side ciphertext (the index
  /// follows) and switching the proxy to the new key. This implements the
  /// mitigation the paper sketches in Section 9: rotating the encryption at
  /// intervals bounds what a plaintext-ciphertext pair exposure reveals.
  /// Returns the number of rows re-encrypted.
  Result<uint64_t> RotateKey(mope::BitSource* entropy) MOPE_EXCLUDES(mutex_);

  const ProxyConfig& config() const { return config_; }

  /// Cumulative accounting across all queries. Returned by value under the
  /// proxy lock: a reference into guarded state would let callers observe
  /// counters mid-update while another client's query executes.
  QueryResponse totals() const MOPE_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return totals_;
  }

  /// Transient-failure retries performed so far.
  uint64_t retries_performed() const MOPE_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return retries_performed_;
  }

  /// Metrics snapshot of the server this proxy fronts, fetched through the
  /// connection (a wire round trip for remote servers, a direct registry
  /// read for embedded ones). NotSupported for connections without a stats
  /// endpoint.
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchServerStats()
      const {
    return connection_->FetchServerStats();
  }

 private:
  Proxy(const ProxyConfig& config, ope::MopeScheme mope,
        std::unique_ptr<ServerConnection> connection,
        engine::DbServer* server);

  /// Instantiates the configured query algorithm. Create-time only, before
  /// the proxy is visible to any other thread.
  Status SetupAlgorithm(const dist::Distribution* known_q);

  /// Sends one batch, retrying up to config_.max_retries times.
  Result<std::vector<std::pair<engine::RowId, engine::Row>>> SendBatch(
      const std::vector<ModularInterval>& cipher_ranges)
      MOPE_REQUIRES(mutex_);

  ProxyConfig config_;
  /// Serializes client requests (Fig. 4: many clients). Lowest rank in the
  /// tree — the outermost lock of the whole query path.
  mutable Mutex mutex_{lock_rank::kProxy};
  ope::MopeScheme mope_ MOPE_GUARDED_BY(mutex_);
  /// Const after Create; the pointee serializes itself (RemoteConnection's
  /// own lock), which is what lets FetchServerStats bypass the proxy lock.
  std::unique_ptr<ServerConnection> connection_;
  /// Maintenance access; null for custom connections. Pointer const after
  /// construction; the engine underneath is only touched under the proxy
  /// lock (RotateKey's column rewrite).
  engine::DbServer* server_ MOPE_PT_GUARDED_BY(mutex_);
  Rng rng_ MOPE_GUARDED_BY(mutex_);
  /// Null for passthrough. Pointer set once at Create; the algorithm's
  /// mutable sampling state is only exercised under the proxy lock.
  std::unique_ptr<query::QueryAlgorithm> algorithm_ MOPE_PT_GUARDED_BY(mutex_);
  size_t key_column_index_ = 0;  ///< Const after Create.
  QueryResponse totals_ MOPE_GUARDED_BY(mutex_);
  uint64_t retries_performed_ MOPE_GUARDED_BY(mutex_) = 0;

  /// Refreshes the proxy.mix.* health gauges after a batch.
  void UpdateMixHealthLocked() MOPE_REQUIRES(mutex_);

  // proxy.* counter family (cached handles; the registry owns the metrics).
  // The same names are emitted whether the connection is embedded or remote,
  // so the two deployments report byte-identical counter sets.
  obs::Counter* real_queries_ = nullptr;
  obs::Counter* fake_queries_ = nullptr;
  obs::Counter* server_requests_ = nullptr;
  obs::Counter* rows_received_ = nullptr;
  obs::Counter* rows_returned_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::ExpHistogram* batch_queries_hist_ = nullptr;

  // proxy.mix.* — client-side mix health (obs/leakage.h's counterpart on the
  // trusted side): the realized fake rate and issued-start distribution
  // against the algorithm's mixing plan, so a broken fake sampler is visible
  // at the proxy *before* the server-side leakage statistic degrades.
  // Fixed-point milli-units, same convention as the leakage.* gauges.
  obs::Gauge* mix_fakes_per_real_ = nullptr;      ///< Realized (cumulative).
  obs::Gauge* mix_expected_fakes_ = nullptr;      ///< Plan: 1/alpha - 1.
  obs::Gauge* mix_sampler_tv_ = nullptr;  ///< TV(issued starts, perceived).
  /// Empirical start distribution over everything issued (real + fake).
  /// O(domain) bins, so allocated lazily on the first query that has a
  /// mixing plan to audit against — passthrough and pre-freeze adaptive
  /// proxies (no plan, TV gauge undefined) never pay for it.
  Histogram issued_starts_ MOPE_GUARDED_BY(mutex_);
};

}  // namespace mope::proxy

#endif  // MOPE_PROXY_PROXY_H_
