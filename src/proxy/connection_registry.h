#ifndef MOPE_PROXY_CONNECTION_REGISTRY_H_
#define MOPE_PROXY_CONNECTION_REGISTRY_H_

/// \file connection_registry.h
/// Scheme-based factory for ServerConnections ("tcp://host:port").
///
/// The proxy layer is deliberately ignorant of concrete transports (mope_net
/// links *against* mope_proxy, not the other way around), so transports
/// announce themselves here at startup: net::RegisterTcpScheme() installs
/// the "tcp" factory, tests install in-memory schemes, and anything that
/// accepts a connection string — the shell's --connect flag, tools — goes
/// through MakeConnection() without naming a transport type.

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "proxy/connection.h"

namespace mope::proxy {

/// Builds a connection from the part of the address after "scheme://".
using ConnectionSchemeFactory =
    std::function<Result<std::unique_ptr<ServerConnection>>(
        const std::string& address)>;

/// Installs (or replaces) the factory for `scheme`. Thread-safe.
void RegisterConnectionScheme(const std::string& scheme,
                              ConnectionSchemeFactory factory);

/// Opens a connection from a "scheme://address" string. InvalidArgument for
/// a malformed string, NotFound for an unregistered scheme; anything else
/// comes from the factory itself.
Result<std::unique_ptr<ServerConnection>> MakeConnection(
    const std::string& connection_string);

}  // namespace mope::proxy

#endif  // MOPE_PROXY_CONNECTION_REGISTRY_H_
