#include "proxy/sql_session.h"

#include <algorithm>

#include "engine/executor.h"
#include "sql/parser.h"
#include "sql/range_extract.h"

namespace mope::proxy {

Status EncryptedSqlSession::AttachClientTable(
    const std::string& name, engine::Schema schema,
    const std::vector<engine::Row>& rows) {
  MOPE_ASSIGN_OR_RETURN(engine::Table * table,
                        client_tables_.CreateTable(name, std::move(schema)));
  for (const engine::Row& row : rows) {
    MOPE_RETURN_NOT_OK(table->Insert(row).status());
  }
  return Status::OK();
}

Result<sql::SqlResult> EncryptedSqlSession::Execute(
    const std::string& sql_text) {
  if (!tracing_enabled_) return ExecuteImpl(sql_text);
  // A fresh trace per statement: the activation makes it visible to every
  // instrumented layer below (proxy, OPE, wire) without touching signatures,
  // and RemoteConnection stamps its id into outgoing frames.
  auto trace = std::make_unique<obs::Trace>("sql.execute", trace_clock_);
  const obs::ScopedTraceActivation activate(trace.get());
  auto result = ExecuteImpl(sql_text);
  last_trace_ = std::move(trace);
  return result;
}

Result<sql::SqlResult> EncryptedSqlSession::ExecuteImpl(
    const std::string& sql_text) {
  stats_ = SessionStats{};
  auto parsed = [&]() -> Result<sql::SelectStmt> {
    const obs::ScopedSpan span("session.parse");
    return sql::Parse(sql_text);
  }();
  MOPE_ASSIGN_OR_RETURN(sql::SelectStmt stmt, std::move(parsed));

  // Locate the encrypted column of the FROM table and the fetch predicate.
  const auto enc_column = system_->EncryptedColumnOf(stmt.from_table);
  if (!enc_column.has_value()) {
    return Status::InvalidArgument("table '" + stmt.from_table +
                                   "' has no encrypted range column");
  }
  if (stmt.where == nullptr) {
    return Status::NotSupported(
        "encrypted execution requires a WHERE range condition on '" +
        *enc_column + "' (fetching the whole table would defeat the point)");
  }
  auto ranges = sql::ExtractRangesFromWhere(
      *stmt.where,
      [&enc_column](const std::string& col) { return col == *enc_column; });
  if (!ranges.has_value()) {
    return Status::NotSupported(
        "WHERE clause has no extractable range condition on '" + *enc_column +
        "'");
  }

  MOPE_ASSIGN_OR_RETURN(Proxy * proxy,
                        system_->GetProxy(stmt.from_table, *enc_column));
  const uint64_t domain = proxy->config().domain;

  // Clamp the extracted segments to the column domain and coalesce them so
  // no row is fetched twice.
  std::vector<Segment> segments;
  for (Segment seg : ranges->segments) {
    if (seg.lo >= domain) continue;
    seg.hi = std::min(seg.hi, domain - 1);
    segments.push_back(seg);
  }
  segments = engine::CoalesceSegments(std::move(segments));

  // Fetch through the proxy (fakes, batching, filtering all apply). The
  // schema comes through the proxy's connection too, so the session works
  // unchanged when the table lives in another process.
  MOPE_ASSIGN_OR_RETURN(engine::Schema server_schema, proxy->GetServerSchema());
  std::vector<engine::Row> fetched;
  for (const Segment& seg : segments) {
    const obs::ScopedSpan span("session.fetch_segment");
    MOPE_ASSIGN_OR_RETURN(
        QueryResponse resp,
        proxy->ExecuteRange(query::RangeQuery{seg.lo, seg.hi}));
    ++stats_.ranges_fetched;
    stats_.real_queries += resp.real_queries_sent;
    stats_.fake_queries += resp.fake_queries_sent;
    stats_.server_requests += resp.server_requests;
    for (engine::Row& row : resp.rows) fetched.push_back(std::move(row));
  }
  stats_.rows_fetched = fetched.size();

  // Mirror the per-statement accounting into the system's registry, under
  // session.* — the same names regardless of whether the proxy's connection
  // is embedded or remote.
  obs::MetricsRegistry* registry = system_->metrics();
  registry->GetCounter("session.queries")->Increment();
  registry->GetCounter("session.ranges_fetched")
      ->Increment(stats_.ranges_fetched);
  registry->GetCounter("session.rows_fetched")->Increment(stats_.rows_fetched);
  registry->GetCounter("session.real_queries")->Increment(stats_.real_queries);
  registry->GetCounter("session.fake_queries")->Increment(stats_.fake_queries);
  registry->GetCounter("session.server_requests")
      ->Increment(stats_.server_requests);

  // Client-side execution: a scratch catalog holding the fetched rows under
  // the original table name plus any attached client tables, running the
  // *original* statement (the fetch predicate re-applies as a residual
  // filter over plaintext).
  engine::Catalog scratch;
  MOPE_ASSIGN_OR_RETURN(
      engine::Table * local,
      scratch.CreateTable(stmt.from_table, std::move(server_schema)));
  for (engine::Row& row : fetched) {
    MOPE_RETURN_NOT_OK(local->Insert(std::move(row)).status());
  }
  if (stmt.join.has_value()) {
    MOPE_ASSIGN_OR_RETURN(const engine::Table* aux,
                          client_tables_.GetTable(stmt.join->table));
    MOPE_ASSIGN_OR_RETURN(
        engine::Table * copy,
        scratch.CreateTable(stmt.join->table, aux->schema()));
    for (engine::RowId r = 0; r < aux->row_count(); ++r) {
      MOPE_RETURN_NOT_OK(copy->Insert(aux->row(r)).status());
    }
  }
  const obs::ScopedSpan span("session.local_exec");
  return sql::ExecuteSql(&scratch, sql_text);
}

}  // namespace mope::proxy
