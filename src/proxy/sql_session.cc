#include "proxy/sql_session.h"

#include <algorithm>
#include <utility>

#include "engine/executor.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "sql/range_extract.h"

namespace mope::proxy {

Status EncryptedSqlSession::AttachClientTable(
    const std::string& name, engine::Schema schema,
    const std::vector<engine::Row>& rows) {
  MOPE_ASSIGN_OR_RETURN(engine::Table * table,
                        client_tables_.CreateTable(name, std::move(schema)));
  for (const engine::Row& row : rows) {
    MOPE_RETURN_NOT_OK(table->Insert(row).status());
  }
  return Status::OK();
}

Result<sql::SqlResult> EncryptedSqlSession::Execute(
    const std::string& sql_text) {
  // EXPLAIN ANALYZE always runs traced + profiled: the actuals and the
  // resource vector *are* the result. The prefix peek is cheap and a false
  // negative on malformed input just means the parse error surfaces on the
  // untraced path.
  const bool analyze = sql::IsExplainAnalyze(sql_text);
  if (!tracing_enabled_ && !analyze) return ExecuteImpl(sql_text);

  // A fresh trace per statement: the activation makes it visible to every
  // instrumented layer below (proxy, OPE, wire) without touching signatures,
  // and RemoteConnection stamps its id into outgoing frames.
  auto trace = std::make_unique<obs::Trace>("sql.execute", trace_clock_);
  const obs::ScopedTraceActivation activate(trace.get());
  if (analyze) {
    // The collector is what flips the wire layer into profile mode: every
    // round trip under this scope requests (and merges back) the server's
    // attributed counter deltas.
    auto profile = std::make_unique<obs::ProfileCollector>();
    Result<sql::SqlResult> result = [&] {
      const obs::ScopedProfileActivation profiling(profile.get());
      return ExecuteImpl(sql_text);
    }();
    last_profile_ = std::move(profile);
    last_trace_ = std::move(trace);
    return result;
  }
  Result<sql::SqlResult> result = ExecuteImpl(sql_text);
  last_trace_ = std::move(trace);
  return result;
}

Result<sql::SqlResult> EncryptedSqlSession::ExecuteImpl(
    const std::string& sql_text) {
  stats_ = SessionStats{};
  auto parsed = [&]() -> Result<sql::Statement> {
    const obs::ScopedSpan span("session.parse");
    return sql::ParseStatement(sql_text);
  }();
  MOPE_ASSIGN_OR_RETURN(sql::Statement statement, std::move(parsed));
  if (statement.explain) {
    return ExplainImpl(std::move(statement.select), statement.analyze);
  }
  sql::SelectStmt stmt = std::move(statement.select);

  MOPE_ASSIGN_OR_RETURN(FetchPlan fetch_plan, PlanFetch(stmt));

  // Fetch through the proxy (fakes, batching, filtering all apply). The
  // schema comes through the proxy's connection too, so the session works
  // unchanged when the table lives in another process.
  MOPE_ASSIGN_OR_RETURN(engine::Schema server_schema,
                        fetch_plan.proxy->GetServerSchema());
  MOPE_ASSIGN_OR_RETURN(std::vector<engine::Row> fetched,
                        FetchSegments(fetch_plan));

  engine::Catalog scratch;
  MOPE_RETURN_NOT_OK(BuildScratch(stmt, std::move(server_schema),
                                  std::move(fetched), &scratch));
  const obs::ScopedSpan span("session.local_exec");
  return sql::ExecuteSql(&scratch, sql_text);
}

Result<EncryptedSqlSession::FetchPlan> EncryptedSqlSession::PlanFetch(
    const sql::SelectStmt& stmt) {
  // Locate the encrypted column of the FROM table and the fetch predicate.
  const auto enc_column = system_->EncryptedColumnOf(stmt.from_table);
  if (!enc_column.has_value()) {
    return Status::InvalidArgument("table '" + stmt.from_table +
                                   "' has no encrypted range column");
  }
  if (stmt.where == nullptr) {
    return Status::NotSupported(
        "encrypted execution requires a WHERE range condition on '" +
        *enc_column + "' (fetching the whole table would defeat the point)");
  }
  auto ranges = sql::ExtractRangesFromWhere(
      *stmt.where,
      [&enc_column](const std::string& col) { return col == *enc_column; });
  if (!ranges.has_value()) {
    return Status::NotSupported(
        "WHERE clause has no extractable range condition on '" + *enc_column +
        "'");
  }

  FetchPlan plan;
  plan.enc_column = *enc_column;
  MOPE_ASSIGN_OR_RETURN(plan.proxy,
                        system_->GetProxy(stmt.from_table, *enc_column));
  plan.domain = plan.proxy->config().domain;

  // Clamp the extracted segments to the column domain and coalesce them so
  // no row is fetched twice.
  std::vector<Segment> segments;
  for (Segment seg : ranges->segments) {
    if (seg.lo >= plan.domain) continue;
    seg.hi = std::min(seg.hi, plan.domain - 1);
    segments.push_back(seg);
  }
  plan.segments = engine::CoalesceSegments(std::move(segments));
  return plan;
}

Result<std::vector<engine::Row>> EncryptedSqlSession::FetchSegments(
    const FetchPlan& plan) {
  std::vector<engine::Row> fetched;
  for (const Segment& seg : plan.segments) {
    const obs::ScopedSpan span("session.fetch_segment");
    MOPE_ASSIGN_OR_RETURN(
        QueryResponse resp,
        plan.proxy->ExecuteRange(query::RangeQuery{seg.lo, seg.hi}));
    ++stats_.ranges_fetched;
    stats_.real_queries += resp.real_queries_sent;
    stats_.fake_queries += resp.fake_queries_sent;
    stats_.server_requests += resp.server_requests;
    for (engine::Row& row : resp.rows) fetched.push_back(std::move(row));
  }
  stats_.rows_fetched = fetched.size();

  // Mirror the per-statement accounting into the system's registry, under
  // session.* — the same names regardless of whether the proxy's connection
  // is embedded or remote.
  obs::MetricsRegistry* registry = system_->metrics();
  registry->GetCounter("session.queries")->Increment();
  registry->GetCounter("session.ranges_fetched")
      ->Increment(stats_.ranges_fetched);
  registry->GetCounter("session.rows_fetched")->Increment(stats_.rows_fetched);
  registry->GetCounter("session.real_queries")->Increment(stats_.real_queries);
  registry->GetCounter("session.fake_queries")->Increment(stats_.fake_queries);
  registry->GetCounter("session.server_requests")
      ->Increment(stats_.server_requests);
  return fetched;
}

Status EncryptedSqlSession::BuildScratch(const sql::SelectStmt& stmt,
                                         engine::Schema server_schema,
                                         std::vector<engine::Row> fetched,
                                         engine::Catalog* scratch) {
  // Client-side execution: a scratch catalog holding the fetched rows under
  // the original table name plus any attached client tables, running the
  // *original* statement (the fetch predicate re-applies as a residual
  // filter over plaintext).
  MOPE_ASSIGN_OR_RETURN(
      engine::Table * local,
      scratch->CreateTable(stmt.from_table, std::move(server_schema)));
  for (engine::Row& row : fetched) {
    MOPE_RETURN_NOT_OK(local->Insert(std::move(row)).status());
  }
  if (stmt.join.has_value()) {
    MOPE_ASSIGN_OR_RETURN(const engine::Table* aux,
                          client_tables_.GetTable(stmt.join->table));
    MOPE_ASSIGN_OR_RETURN(
        engine::Table * copy,
        scratch->CreateTable(stmt.join->table, aux->schema()));
    for (engine::RowId r = 0; r < aux->row_count(); ++r) {
      MOPE_RETURN_NOT_OK(copy->Insert(aux->row(r)).status());
    }
  }
  return Status::OK();
}

Result<sql::SqlResult> EncryptedSqlSession::ExplainImpl(sql::SelectStmt stmt,
                                                        bool analyze) {
  MOPE_ASSIGN_OR_RETURN(FetchPlan fetch_plan, PlanFetch(stmt));
  MOPE_ASSIGN_OR_RETURN(engine::Schema server_schema,
                        fetch_plan.proxy->GetServerSchema());

  std::vector<std::string> lines;
  lines.push_back("Fetch: " + stmt.from_table + "." + fetch_plan.enc_column +
                  " via encrypted proxy (segments=" +
                  std::to_string(fetch_plan.segments.size()) +
                  ", domain=" + std::to_string(fetch_plan.domain) + ")");

  // Plain EXPLAIN plans over an *empty* local table by design: the proxy
  // deliberately has no server-side statistics (cardinalities of encrypted
  // data are exactly what the scheme hides), so pre-execution estimates
  // reflect only what the client knows. ANALYZE replaces them with actuals.
  std::vector<engine::Row> fetched;
  if (analyze) {
    MOPE_ASSIGN_OR_RETURN(fetched, FetchSegments(fetch_plan));
  }

  engine::Catalog scratch;
  MOPE_RETURN_NOT_OK(BuildScratch(stmt, std::move(server_schema),
                                  std::move(fetched), &scratch));
  sql::Planner planner(&scratch);
  MOPE_ASSIGN_OR_RETURN(sql::PlannedQuery plan, planner.Plan(std::move(stmt)));

  if (analyze) {
    engine::ProfileContext ctx;
    ctx.clock =
        trace_clock_ != nullptr ? trace_clock_ : obs::SystemClock();
    // The local exec runs over the in-memory scratch catalog, so there are
    // no storage counters to attribute here; the server-side pool/WAL costs
    // arrive via the wire profile (srv.storage.*) instead.
    plan.root->EnableProfiling(&ctx);
    {
      const obs::ScopedSpan span("session.local_exec");
      MOPE_RETURN_NOT_OK(engine::Collect(plan.root.get()).status());
    }
    engine::FoldOpStatsIntoRegistry(plan.root.get(), system_->metrics());
  }

  sql::ExplainOptions options;
  options.analyze = analyze;
  for (std::string& line : sql::RenderPlanLines(plan.root.get(), options)) {
    lines.push_back(std::move(line));
  }

  if (analyze) {
    // The query-level resource vector, one entry per line: the session's
    // real/fake accounting, the trace's fine-grained counters (HGD draws,
    // OPE calls), and everything the profile collector gathered (server
    // counter deltas keyed srv.*, wire bytes keyed net.*).
    lines.push_back("Resources:");
    lines.push_back("  session: ranges=" +
                    std::to_string(stats_.ranges_fetched) +
                    " rows_fetched=" + std::to_string(stats_.rows_fetched) +
                    " real_queries=" + std::to_string(stats_.real_queries) +
                    " fake_queries=" + std::to_string(stats_.fake_queries) +
                    " server_requests=" +
                    std::to_string(stats_.server_requests));
    if (const obs::Trace* trace = obs::CurrentTrace(); trace != nullptr) {
      for (const auto& [name, value] : trace->counters()) {
        lines.push_back("  trace." + name + "=" + std::to_string(value));
      }
    }
    if (const obs::ProfileCollector* profile = obs::CurrentProfileCollector();
        profile != nullptr) {
      for (const auto& [name, value] : profile->entries()) {
        lines.push_back("  " + name + "=" + std::to_string(value));
      }
    }
  }
  return sql::PlanLinesToResult(std::move(lines));
}

}  // namespace mope::proxy
