# Sanitizer instrumentation for the whole build tree.
#
# MOPE_SANITIZE selects a preset combination (matching CMakePresets.json):
#   ""           - no instrumentation (default)
#   "asan-ubsan" - AddressSanitizer + UndefinedBehaviorSanitizer
#   "tsan"       - ThreadSanitizer (mutually exclusive with ASan)
#
# All errors are fatal (-fno-sanitize-recover=all) so a sanitized ctest run
# fails loudly instead of scrolling reports past a green exit code.

set(MOPE_SANITIZE "" CACHE STRING
    "Sanitizer preset: empty, 'asan-ubsan', or 'tsan'")
set_property(CACHE MOPE_SANITIZE PROPERTY STRINGS "" "asan-ubsan" "tsan")

set(_mope_san_flags "")
if(MOPE_SANITIZE STREQUAL "")
  # Uninstrumented build.
elseif(MOPE_SANITIZE STREQUAL "asan-ubsan")
  set(_mope_san_flags
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
elseif(MOPE_SANITIZE STREQUAL "tsan")
  set(_mope_san_flags
      -fsanitize=thread
      -fno-omit-frame-pointer)
else()
  message(FATAL_ERROR
      "Unknown MOPE_SANITIZE value '${MOPE_SANITIZE}' "
      "(expected '', 'asan-ubsan', or 'tsan')")
endif()

if(_mope_san_flags)
  add_compile_options(${_mope_san_flags} -g)
  add_link_options(${_mope_san_flags})
  # Lock-rank assertions (common/thread_annotations.h) default to !NDEBUG,
  # and the sanitizer presets build RelWithDebInfo — force them on here so
  # the CI suites that exercise concurrency also exercise the lock ordering.
  add_compile_definitions(MOPE_LOCK_RANK_CHECKS=1)
  message(STATUS "MOPE: sanitizers enabled (${MOPE_SANITIZE}), "
                 "lock-rank checks forced on")
endif()
