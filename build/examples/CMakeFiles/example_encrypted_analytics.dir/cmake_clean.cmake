file(REMOVE_RECURSE
  "CMakeFiles/example_encrypted_analytics.dir/encrypted_analytics.cpp.o"
  "CMakeFiles/example_encrypted_analytics.dir/encrypted_analytics.cpp.o.d"
  "example_encrypted_analytics"
  "example_encrypted_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_encrypted_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
