# Empty dependencies file for example_encrypted_analytics.
# This may be replaced when dependencies are built.
