# Empty dependencies file for example_adaptive_proxy.
# This may be replaced when dependencies are built.
