file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_proxy.dir/adaptive_proxy.cpp.o"
  "CMakeFiles/example_adaptive_proxy.dir/adaptive_proxy.cpp.o.d"
  "example_adaptive_proxy"
  "example_adaptive_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
