file(REMOVE_RECURSE
  "CMakeFiles/example_security_lab.dir/security_lab.cpp.o"
  "CMakeFiles/example_security_lab.dir/security_lab.cpp.o.d"
  "example_security_lab"
  "example_security_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_security_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
