# Empty compiler generated dependencies file for example_security_lab.
# This may be replaced when dependencies are built.
