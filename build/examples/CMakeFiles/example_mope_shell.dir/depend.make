# Empty dependencies file for example_mope_shell.
# This may be replaced when dependencies are built.
