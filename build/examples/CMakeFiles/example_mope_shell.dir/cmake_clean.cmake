file(REMOVE_RECURSE
  "CMakeFiles/example_mope_shell.dir/mope_shell.cpp.o"
  "CMakeFiles/example_mope_shell.dir/mope_shell.cpp.o.d"
  "example_mope_shell"
  "example_mope_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mope_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
