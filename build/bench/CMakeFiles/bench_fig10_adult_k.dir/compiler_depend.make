# Empty compiler generated dependencies file for bench_fig10_adult_k.
# This may be replaced when dependencies are built.
