# Empty compiler generated dependencies file for bench_fig08_uniform_k.
# This may be replaced when dependencies are built.
