file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_gap_attack.dir/bench_fig01_gap_attack.cc.o"
  "CMakeFiles/bench_fig01_gap_attack.dir/bench_fig01_gap_attack.cc.o.d"
  "bench_fig01_gap_attack"
  "bench_fig01_gap_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_gap_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
