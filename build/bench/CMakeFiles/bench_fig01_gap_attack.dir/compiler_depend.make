# Empty compiler generated dependencies file for bench_fig01_gap_attack.
# This may be replaced when dependencies are built.
