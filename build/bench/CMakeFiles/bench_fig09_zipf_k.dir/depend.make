# Empty dependencies file for bench_fig09_zipf_k.
# This may be replaced when dependencies are built.
