# Empty compiler generated dependencies file for bench_sec51_mutable_baseline.
# This may be replaced when dependencies are built.
