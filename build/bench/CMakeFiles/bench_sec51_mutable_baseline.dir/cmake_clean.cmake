file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_mutable_baseline.dir/bench_sec51_mutable_baseline.cc.o"
  "CMakeFiles/bench_sec51_mutable_baseline.dir/bench_sec51_mutable_baseline.cc.o.d"
  "bench_sec51_mutable_baseline"
  "bench_sec51_mutable_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_mutable_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
