# Empty compiler generated dependencies file for bench_fig05_adult_cost.
# This may be replaced when dependencies are built.
