file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_wow_security.dir/bench_sec7_wow_security.cc.o"
  "CMakeFiles/bench_sec7_wow_security.dir/bench_sec7_wow_security.cc.o.d"
  "bench_sec7_wow_security"
  "bench_sec7_wow_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_wow_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
