# Empty compiler generated dependencies file for bench_sec7_wow_security.
# This may be replaced when dependencies are built.
