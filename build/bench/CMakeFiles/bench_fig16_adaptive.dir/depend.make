# Empty dependencies file for bench_fig16_adaptive.
# This may be replaced when dependencies are built.
