# Empty dependencies file for bench_fig11_covertype_k.
# This may be replaced when dependencies are built.
