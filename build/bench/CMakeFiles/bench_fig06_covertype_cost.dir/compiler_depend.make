# Empty compiler generated dependencies file for bench_fig06_covertype_cost.
# This may be replaced when dependencies are built.
