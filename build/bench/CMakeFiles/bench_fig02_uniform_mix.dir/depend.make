# Empty dependencies file for bench_fig02_uniform_mix.
# This may be replaced when dependencies are built.
