file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_uniform_mix.dir/bench_fig02_uniform_mix.cc.o"
  "CMakeFiles/bench_fig02_uniform_mix.dir/bench_fig02_uniform_mix.cc.o.d"
  "bench_fig02_uniform_mix"
  "bench_fig02_uniform_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_uniform_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
