# Empty dependencies file for bench_fig03_periodic_mix.
# This may be replaced when dependencies are built.
