file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_batching.dir/bench_fig15_batching.cc.o"
  "CMakeFiles/bench_fig15_batching.dir/bench_fig15_batching.cc.o.d"
  "bench_fig15_batching"
  "bench_fig15_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
