
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/frequency_test.cc" "tests/CMakeFiles/mope_tests.dir/attack/frequency_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/attack/frequency_test.cc.o.d"
  "/root/repo/tests/attack/gap_attack_test.cc" "tests/CMakeFiles/mope_tests.dir/attack/gap_attack_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/attack/gap_attack_test.cc.o.d"
  "/root/repo/tests/attack/known_plaintext_test.cc" "tests/CMakeFiles/mope_tests.dir/attack/known_plaintext_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/attack/known_plaintext_test.cc.o.d"
  "/root/repo/tests/attack/wow_test.cc" "tests/CMakeFiles/mope_tests.dir/attack/wow_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/attack/wow_test.cc.o.d"
  "/root/repo/tests/common/histogram_test.cc" "tests/CMakeFiles/mope_tests.dir/common/histogram_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/common/histogram_test.cc.o.d"
  "/root/repo/tests/common/interval_test.cc" "tests/CMakeFiles/mope_tests.dir/common/interval_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/common/interval_test.cc.o.d"
  "/root/repo/tests/common/math_util_test.cc" "tests/CMakeFiles/mope_tests.dir/common/math_util_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/common/math_util_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/mope_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/mope_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/crypto/aes_test.cc" "tests/CMakeFiles/mope_tests.dir/crypto/aes_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/crypto/aes_test.cc.o.d"
  "/root/repo/tests/crypto/drbg_test.cc" "tests/CMakeFiles/mope_tests.dir/crypto/drbg_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/crypto/drbg_test.cc.o.d"
  "/root/repo/tests/crypto/hgd_test.cc" "tests/CMakeFiles/mope_tests.dir/crypto/hgd_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/crypto/hgd_test.cc.o.d"
  "/root/repo/tests/crypto/prf_test.cc" "tests/CMakeFiles/mope_tests.dir/crypto/prf_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/crypto/prf_test.cc.o.d"
  "/root/repo/tests/dist/completion_test.cc" "tests/CMakeFiles/mope_tests.dir/dist/completion_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/dist/completion_test.cc.o.d"
  "/root/repo/tests/dist/distribution_test.cc" "tests/CMakeFiles/mope_tests.dir/dist/distribution_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/dist/distribution_test.cc.o.d"
  "/root/repo/tests/dist/query_buffer_test.cc" "tests/CMakeFiles/mope_tests.dir/dist/query_buffer_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/dist/query_buffer_test.cc.o.d"
  "/root/repo/tests/engine/btree_test.cc" "tests/CMakeFiles/mope_tests.dir/engine/btree_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/engine/btree_test.cc.o.d"
  "/root/repo/tests/engine/executor_test.cc" "tests/CMakeFiles/mope_tests.dir/engine/executor_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/engine/executor_test.cc.o.d"
  "/root/repo/tests/engine/server_test.cc" "tests/CMakeFiles/mope_tests.dir/engine/server_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/engine/server_test.cc.o.d"
  "/root/repo/tests/engine/snapshot_test.cc" "tests/CMakeFiles/mope_tests.dir/engine/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/engine/snapshot_test.cc.o.d"
  "/root/repo/tests/engine/table_test.cc" "tests/CMakeFiles/mope_tests.dir/engine/table_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/engine/table_test.cc.o.d"
  "/root/repo/tests/integration/csv_pipeline_test.cc" "tests/CMakeFiles/mope_tests.dir/integration/csv_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/integration/csv_pipeline_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/mope_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/ope/ideal_test.cc" "tests/CMakeFiles/mope_tests.dir/ope/ideal_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/ope/ideal_test.cc.o.d"
  "/root/repo/tests/ope/mope_test.cc" "tests/CMakeFiles/mope_tests.dir/ope/mope_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/ope/mope_test.cc.o.d"
  "/root/repo/tests/ope/mutable_ope_test.cc" "tests/CMakeFiles/mope_tests.dir/ope/mutable_ope_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/ope/mutable_ope_test.cc.o.d"
  "/root/repo/tests/ope/ope_test.cc" "tests/CMakeFiles/mope_tests.dir/ope/ope_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/ope/ope_test.cc.o.d"
  "/root/repo/tests/ope/popf_statistical_test.cc" "tests/CMakeFiles/mope_tests.dir/ope/popf_statistical_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/ope/popf_statistical_test.cc.o.d"
  "/root/repo/tests/proxy/concurrency_test.cc" "tests/CMakeFiles/mope_tests.dir/proxy/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/proxy/concurrency_test.cc.o.d"
  "/root/repo/tests/proxy/connection_test.cc" "tests/CMakeFiles/mope_tests.dir/proxy/connection_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/proxy/connection_test.cc.o.d"
  "/root/repo/tests/proxy/proxy_test.cc" "tests/CMakeFiles/mope_tests.dir/proxy/proxy_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/proxy/proxy_test.cc.o.d"
  "/root/repo/tests/proxy/rotation_test.cc" "tests/CMakeFiles/mope_tests.dir/proxy/rotation_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/proxy/rotation_test.cc.o.d"
  "/root/repo/tests/proxy/sql_session_test.cc" "tests/CMakeFiles/mope_tests.dir/proxy/sql_session_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/proxy/sql_session_test.cc.o.d"
  "/root/repo/tests/query/algorithms_test.cc" "tests/CMakeFiles/mope_tests.dir/query/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/query/algorithms_test.cc.o.d"
  "/root/repo/tests/query/cost_test.cc" "tests/CMakeFiles/mope_tests.dir/query/cost_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/query/cost_test.cc.o.d"
  "/root/repo/tests/query/decompose_test.cc" "tests/CMakeFiles/mope_tests.dir/query/decompose_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/query/decompose_test.cc.o.d"
  "/root/repo/tests/sql/binder_test.cc" "tests/CMakeFiles/mope_tests.dir/sql/binder_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/sql/binder_test.cc.o.d"
  "/root/repo/tests/sql/lexer_test.cc" "tests/CMakeFiles/mope_tests.dir/sql/lexer_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/sql/lexer_test.cc.o.d"
  "/root/repo/tests/sql/parser_test.cc" "tests/CMakeFiles/mope_tests.dir/sql/parser_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/sql/parser_test.cc.o.d"
  "/root/repo/tests/sql/planner_test.cc" "tests/CMakeFiles/mope_tests.dir/sql/planner_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/sql/planner_test.cc.o.d"
  "/root/repo/tests/workload/calendar_test.cc" "tests/CMakeFiles/mope_tests.dir/workload/calendar_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/workload/calendar_test.cc.o.d"
  "/root/repo/tests/workload/csv_test.cc" "tests/CMakeFiles/mope_tests.dir/workload/csv_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/workload/csv_test.cc.o.d"
  "/root/repo/tests/workload/datasets_test.cc" "tests/CMakeFiles/mope_tests.dir/workload/datasets_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/workload/datasets_test.cc.o.d"
  "/root/repo/tests/workload/generator_test.cc" "tests/CMakeFiles/mope_tests.dir/workload/generator_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/workload/generator_test.cc.o.d"
  "/root/repo/tests/workload/tpch_test.cc" "tests/CMakeFiles/mope_tests.dir/workload/tpch_test.cc.o" "gcc" "tests/CMakeFiles/mope_tests.dir/workload/tpch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proxy/CMakeFiles/mope_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mope_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mope_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mope_query.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mope_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mope_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/ope/CMakeFiles/mope_ope.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mope_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mope_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
