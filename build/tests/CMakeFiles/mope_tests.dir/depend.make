# Empty dependencies file for mope_tests.
# This may be replaced when dependencies are built.
