file(REMOVE_RECURSE
  "CMakeFiles/mope_ope.dir/ideal.cc.o"
  "CMakeFiles/mope_ope.dir/ideal.cc.o.d"
  "CMakeFiles/mope_ope.dir/mope.cc.o"
  "CMakeFiles/mope_ope.dir/mope.cc.o.d"
  "CMakeFiles/mope_ope.dir/mutable_ope.cc.o"
  "CMakeFiles/mope_ope.dir/mutable_ope.cc.o.d"
  "CMakeFiles/mope_ope.dir/ope.cc.o"
  "CMakeFiles/mope_ope.dir/ope.cc.o.d"
  "libmope_ope.a"
  "libmope_ope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_ope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
