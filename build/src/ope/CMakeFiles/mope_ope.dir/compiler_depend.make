# Empty compiler generated dependencies file for mope_ope.
# This may be replaced when dependencies are built.
