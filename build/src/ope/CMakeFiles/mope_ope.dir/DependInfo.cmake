
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ope/ideal.cc" "src/ope/CMakeFiles/mope_ope.dir/ideal.cc.o" "gcc" "src/ope/CMakeFiles/mope_ope.dir/ideal.cc.o.d"
  "/root/repo/src/ope/mope.cc" "src/ope/CMakeFiles/mope_ope.dir/mope.cc.o" "gcc" "src/ope/CMakeFiles/mope_ope.dir/mope.cc.o.d"
  "/root/repo/src/ope/mutable_ope.cc" "src/ope/CMakeFiles/mope_ope.dir/mutable_ope.cc.o" "gcc" "src/ope/CMakeFiles/mope_ope.dir/mutable_ope.cc.o.d"
  "/root/repo/src/ope/ope.cc" "src/ope/CMakeFiles/mope_ope.dir/ope.cc.o" "gcc" "src/ope/CMakeFiles/mope_ope.dir/ope.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mope_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
