file(REMOVE_RECURSE
  "libmope_ope.a"
)
