
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/frequency.cc" "src/attack/CMakeFiles/mope_attack.dir/frequency.cc.o" "gcc" "src/attack/CMakeFiles/mope_attack.dir/frequency.cc.o.d"
  "/root/repo/src/attack/gap_attack.cc" "src/attack/CMakeFiles/mope_attack.dir/gap_attack.cc.o" "gcc" "src/attack/CMakeFiles/mope_attack.dir/gap_attack.cc.o.d"
  "/root/repo/src/attack/known_plaintext.cc" "src/attack/CMakeFiles/mope_attack.dir/known_plaintext.cc.o" "gcc" "src/attack/CMakeFiles/mope_attack.dir/known_plaintext.cc.o.d"
  "/root/repo/src/attack/wow.cc" "src/attack/CMakeFiles/mope_attack.dir/wow.cc.o" "gcc" "src/attack/CMakeFiles/mope_attack.dir/wow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mope_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/ope/CMakeFiles/mope_ope.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mope_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
