file(REMOVE_RECURSE
  "CMakeFiles/mope_attack.dir/frequency.cc.o"
  "CMakeFiles/mope_attack.dir/frequency.cc.o.d"
  "CMakeFiles/mope_attack.dir/gap_attack.cc.o"
  "CMakeFiles/mope_attack.dir/gap_attack.cc.o.d"
  "CMakeFiles/mope_attack.dir/known_plaintext.cc.o"
  "CMakeFiles/mope_attack.dir/known_plaintext.cc.o.d"
  "CMakeFiles/mope_attack.dir/wow.cc.o"
  "CMakeFiles/mope_attack.dir/wow.cc.o.d"
  "libmope_attack.a"
  "libmope_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
