file(REMOVE_RECURSE
  "libmope_attack.a"
)
