# Empty dependencies file for mope_attack.
# This may be replaced when dependencies are built.
