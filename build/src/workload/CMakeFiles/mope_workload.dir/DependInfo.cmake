
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calendar.cc" "src/workload/CMakeFiles/mope_workload.dir/calendar.cc.o" "gcc" "src/workload/CMakeFiles/mope_workload.dir/calendar.cc.o.d"
  "/root/repo/src/workload/csv.cc" "src/workload/CMakeFiles/mope_workload.dir/csv.cc.o" "gcc" "src/workload/CMakeFiles/mope_workload.dir/csv.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/mope_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/mope_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/mope_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/mope_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/mope_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/mope_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mope_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mope_query.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mope_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
