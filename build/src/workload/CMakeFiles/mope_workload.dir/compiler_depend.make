# Empty compiler generated dependencies file for mope_workload.
# This may be replaced when dependencies are built.
