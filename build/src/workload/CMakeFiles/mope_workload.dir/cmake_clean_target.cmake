file(REMOVE_RECURSE
  "libmope_workload.a"
)
