file(REMOVE_RECURSE
  "CMakeFiles/mope_workload.dir/calendar.cc.o"
  "CMakeFiles/mope_workload.dir/calendar.cc.o.d"
  "CMakeFiles/mope_workload.dir/csv.cc.o"
  "CMakeFiles/mope_workload.dir/csv.cc.o.d"
  "CMakeFiles/mope_workload.dir/datasets.cc.o"
  "CMakeFiles/mope_workload.dir/datasets.cc.o.d"
  "CMakeFiles/mope_workload.dir/generator.cc.o"
  "CMakeFiles/mope_workload.dir/generator.cc.o.d"
  "CMakeFiles/mope_workload.dir/tpch.cc.o"
  "CMakeFiles/mope_workload.dir/tpch.cc.o.d"
  "libmope_workload.a"
  "libmope_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
