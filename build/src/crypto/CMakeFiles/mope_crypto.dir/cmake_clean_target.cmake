file(REMOVE_RECURSE
  "libmope_crypto.a"
)
