# Empty compiler generated dependencies file for mope_crypto.
# This may be replaced when dependencies are built.
