
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/mope_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/mope_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/crypto/CMakeFiles/mope_crypto.dir/drbg.cc.o" "gcc" "src/crypto/CMakeFiles/mope_crypto.dir/drbg.cc.o.d"
  "/root/repo/src/crypto/hgd.cc" "src/crypto/CMakeFiles/mope_crypto.dir/hgd.cc.o" "gcc" "src/crypto/CMakeFiles/mope_crypto.dir/hgd.cc.o.d"
  "/root/repo/src/crypto/prf.cc" "src/crypto/CMakeFiles/mope_crypto.dir/prf.cc.o" "gcc" "src/crypto/CMakeFiles/mope_crypto.dir/prf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
