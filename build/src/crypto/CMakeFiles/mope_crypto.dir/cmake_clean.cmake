file(REMOVE_RECURSE
  "CMakeFiles/mope_crypto.dir/aes.cc.o"
  "CMakeFiles/mope_crypto.dir/aes.cc.o.d"
  "CMakeFiles/mope_crypto.dir/drbg.cc.o"
  "CMakeFiles/mope_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/mope_crypto.dir/hgd.cc.o"
  "CMakeFiles/mope_crypto.dir/hgd.cc.o.d"
  "CMakeFiles/mope_crypto.dir/prf.cc.o"
  "CMakeFiles/mope_crypto.dir/prf.cc.o.d"
  "libmope_crypto.a"
  "libmope_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
