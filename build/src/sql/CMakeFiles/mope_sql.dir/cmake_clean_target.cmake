file(REMOVE_RECURSE
  "libmope_sql.a"
)
