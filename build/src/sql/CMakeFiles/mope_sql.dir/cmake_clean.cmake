file(REMOVE_RECURSE
  "CMakeFiles/mope_sql.dir/ast.cc.o"
  "CMakeFiles/mope_sql.dir/ast.cc.o.d"
  "CMakeFiles/mope_sql.dir/binder.cc.o"
  "CMakeFiles/mope_sql.dir/binder.cc.o.d"
  "CMakeFiles/mope_sql.dir/lexer.cc.o"
  "CMakeFiles/mope_sql.dir/lexer.cc.o.d"
  "CMakeFiles/mope_sql.dir/parser.cc.o"
  "CMakeFiles/mope_sql.dir/parser.cc.o.d"
  "CMakeFiles/mope_sql.dir/planner.cc.o"
  "CMakeFiles/mope_sql.dir/planner.cc.o.d"
  "CMakeFiles/mope_sql.dir/range_extract.cc.o"
  "CMakeFiles/mope_sql.dir/range_extract.cc.o.d"
  "libmope_sql.a"
  "libmope_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
