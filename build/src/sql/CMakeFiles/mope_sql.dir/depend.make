# Empty dependencies file for mope_sql.
# This may be replaced when dependencies are built.
