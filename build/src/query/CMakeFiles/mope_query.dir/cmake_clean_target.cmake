file(REMOVE_RECURSE
  "libmope_query.a"
)
