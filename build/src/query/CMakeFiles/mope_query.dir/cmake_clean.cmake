file(REMOVE_RECURSE
  "CMakeFiles/mope_query.dir/algorithms.cc.o"
  "CMakeFiles/mope_query.dir/algorithms.cc.o.d"
  "CMakeFiles/mope_query.dir/cost.cc.o"
  "CMakeFiles/mope_query.dir/cost.cc.o.d"
  "CMakeFiles/mope_query.dir/query_types.cc.o"
  "CMakeFiles/mope_query.dir/query_types.cc.o.d"
  "libmope_query.a"
  "libmope_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
