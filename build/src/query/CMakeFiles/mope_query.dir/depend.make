# Empty dependencies file for mope_query.
# This may be replaced when dependencies are built.
