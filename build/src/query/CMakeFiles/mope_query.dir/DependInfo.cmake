
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/algorithms.cc" "src/query/CMakeFiles/mope_query.dir/algorithms.cc.o" "gcc" "src/query/CMakeFiles/mope_query.dir/algorithms.cc.o.d"
  "/root/repo/src/query/cost.cc" "src/query/CMakeFiles/mope_query.dir/cost.cc.o" "gcc" "src/query/CMakeFiles/mope_query.dir/cost.cc.o.d"
  "/root/repo/src/query/query_types.cc" "src/query/CMakeFiles/mope_query.dir/query_types.cc.o" "gcc" "src/query/CMakeFiles/mope_query.dir/query_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mope_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
