file(REMOVE_RECURSE
  "libmope_common.a"
)
