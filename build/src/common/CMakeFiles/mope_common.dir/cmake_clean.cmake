file(REMOVE_RECURSE
  "CMakeFiles/mope_common.dir/histogram.cc.o"
  "CMakeFiles/mope_common.dir/histogram.cc.o.d"
  "CMakeFiles/mope_common.dir/interval.cc.o"
  "CMakeFiles/mope_common.dir/interval.cc.o.d"
  "CMakeFiles/mope_common.dir/math_util.cc.o"
  "CMakeFiles/mope_common.dir/math_util.cc.o.d"
  "CMakeFiles/mope_common.dir/random.cc.o"
  "CMakeFiles/mope_common.dir/random.cc.o.d"
  "CMakeFiles/mope_common.dir/status.cc.o"
  "CMakeFiles/mope_common.dir/status.cc.o.d"
  "libmope_common.a"
  "libmope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
