# Empty dependencies file for mope_common.
# This may be replaced when dependencies are built.
