
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/proxy.cc" "src/proxy/CMakeFiles/mope_proxy.dir/proxy.cc.o" "gcc" "src/proxy/CMakeFiles/mope_proxy.dir/proxy.cc.o.d"
  "/root/repo/src/proxy/sql_session.cc" "src/proxy/CMakeFiles/mope_proxy.dir/sql_session.cc.o" "gcc" "src/proxy/CMakeFiles/mope_proxy.dir/sql_session.cc.o.d"
  "/root/repo/src/proxy/system.cc" "src/proxy/CMakeFiles/mope_proxy.dir/system.cc.o" "gcc" "src/proxy/CMakeFiles/mope_proxy.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mope_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mope_query.dir/DependInfo.cmake"
  "/root/repo/build/src/ope/CMakeFiles/mope_ope.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mope_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mope_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mope_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
