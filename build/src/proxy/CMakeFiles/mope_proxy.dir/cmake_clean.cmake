file(REMOVE_RECURSE
  "CMakeFiles/mope_proxy.dir/proxy.cc.o"
  "CMakeFiles/mope_proxy.dir/proxy.cc.o.d"
  "CMakeFiles/mope_proxy.dir/sql_session.cc.o"
  "CMakeFiles/mope_proxy.dir/sql_session.cc.o.d"
  "CMakeFiles/mope_proxy.dir/system.cc.o"
  "CMakeFiles/mope_proxy.dir/system.cc.o.d"
  "libmope_proxy.a"
  "libmope_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
