# Empty compiler generated dependencies file for mope_proxy.
# This may be replaced when dependencies are built.
