file(REMOVE_RECURSE
  "libmope_proxy.a"
)
