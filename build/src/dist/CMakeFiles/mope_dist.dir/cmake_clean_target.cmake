file(REMOVE_RECURSE
  "libmope_dist.a"
)
