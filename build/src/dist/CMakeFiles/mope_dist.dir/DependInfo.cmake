
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/completion.cc" "src/dist/CMakeFiles/mope_dist.dir/completion.cc.o" "gcc" "src/dist/CMakeFiles/mope_dist.dir/completion.cc.o.d"
  "/root/repo/src/dist/distribution.cc" "src/dist/CMakeFiles/mope_dist.dir/distribution.cc.o" "gcc" "src/dist/CMakeFiles/mope_dist.dir/distribution.cc.o.d"
  "/root/repo/src/dist/query_buffer.cc" "src/dist/CMakeFiles/mope_dist.dir/query_buffer.cc.o" "gcc" "src/dist/CMakeFiles/mope_dist.dir/query_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
