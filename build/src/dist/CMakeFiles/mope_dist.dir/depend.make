# Empty dependencies file for mope_dist.
# This may be replaced when dependencies are built.
