file(REMOVE_RECURSE
  "CMakeFiles/mope_dist.dir/completion.cc.o"
  "CMakeFiles/mope_dist.dir/completion.cc.o.d"
  "CMakeFiles/mope_dist.dir/distribution.cc.o"
  "CMakeFiles/mope_dist.dir/distribution.cc.o.d"
  "CMakeFiles/mope_dist.dir/query_buffer.cc.o"
  "CMakeFiles/mope_dist.dir/query_buffer.cc.o.d"
  "libmope_dist.a"
  "libmope_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
