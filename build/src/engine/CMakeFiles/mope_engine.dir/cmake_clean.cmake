file(REMOVE_RECURSE
  "CMakeFiles/mope_engine.dir/btree.cc.o"
  "CMakeFiles/mope_engine.dir/btree.cc.o.d"
  "CMakeFiles/mope_engine.dir/executor.cc.o"
  "CMakeFiles/mope_engine.dir/executor.cc.o.d"
  "CMakeFiles/mope_engine.dir/server.cc.o"
  "CMakeFiles/mope_engine.dir/server.cc.o.d"
  "CMakeFiles/mope_engine.dir/snapshot.cc.o"
  "CMakeFiles/mope_engine.dir/snapshot.cc.o.d"
  "CMakeFiles/mope_engine.dir/table.cc.o"
  "CMakeFiles/mope_engine.dir/table.cc.o.d"
  "libmope_engine.a"
  "libmope_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
