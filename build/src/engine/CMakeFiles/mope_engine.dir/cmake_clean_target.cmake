file(REMOVE_RECURSE
  "libmope_engine.a"
)
