
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/btree.cc" "src/engine/CMakeFiles/mope_engine.dir/btree.cc.o" "gcc" "src/engine/CMakeFiles/mope_engine.dir/btree.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/mope_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/mope_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/server.cc" "src/engine/CMakeFiles/mope_engine.dir/server.cc.o" "gcc" "src/engine/CMakeFiles/mope_engine.dir/server.cc.o.d"
  "/root/repo/src/engine/snapshot.cc" "src/engine/CMakeFiles/mope_engine.dir/snapshot.cc.o" "gcc" "src/engine/CMakeFiles/mope_engine.dir/snapshot.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/mope_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/mope_engine.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
