# Empty compiler generated dependencies file for mope_engine.
# This may be replaced when dependencies are built.
