#!/usr/bin/env bash
# Live two-process smoke test for the client/server split + stats endpoint.
#
# Boots a real mope_serverd (TPC-H lineitem, l_shipdate MOPE-encrypted),
# points a mope_shell proxy at it over loopback TCP, runs one encrypted
# query, then pulls the server's metrics registry over the wire with
# \serverstats and asserts the frame counters actually moved. Finally the
# daemon is shut down and its --metrics Prometheus dump is checked too.
#
# Usage: tools/smoke_remote.sh [BUILD_DIR]   (default: build)

set -eu

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/tools/mope_serverd"
MOPE_SHELL="$BUILD_DIR/examples/example_mope_shell"
for bin in "$SERVERD" "$MOPE_SHELL"; do
  if [ ! -x "$bin" ]; then
    echo "smoke_remote: missing binary $bin (build first)" >&2
    exit 1
  fi
done

server_log="$(mktemp)"
cleanup() {
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  rm -f "$server_log"
}

# Port 0 = ephemeral: the daemon prints the port it actually bound, so
# parallel CI jobs never collide.
"$SERVERD" --tpch --scale 0.002 --port 0 --metrics 2>"$server_log" &
server_pid=$!
trap cleanup EXIT

port=""
for _ in $(seq 1 300); do
  port="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$server_log" |
          head -n 1)"
  [ -n "$port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "smoke_remote: server exited during startup" >&2
    cat "$server_log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "smoke_remote: server never started listening" >&2
  cat "$server_log" >&2
  exit 1
fi
echo "smoke_remote: daemon up on port $port"

# One encrypted query over the wire. The shell re-derives the key from the
# shared seed; the daemon only ever sees ciphertext ranges.
query_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" \
    -c 'SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN 100 AND 400')"
echo "$query_out"
echo "$query_out" | grep -q '^(1 rows)$' || {
  echo "smoke_remote: remote query did not return a result row" >&2
  exit 1
}
echo "$query_out" | grep -q '\[traffic: .* real + .* fake queries' || {
  echo "smoke_remote: traffic line missing from query output" >&2
  exit 1
}

# The live stats endpoint: fetch the server's registry over the wire and
# check the daemon accounted for the frames the query just cost it.
stats_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" -c '\serverstats')"
echo "$stats_out" | grep -E \
    'net.server.frames_served|engine.batches_received|engine.bytes_sent' \
    || true
frames="$(echo "$stats_out" |
          awk '$1 == "net.server.frames_served" {print $2}')"
batches="$(echo "$stats_out" |
           awk '$1 == "engine.batches_received" {print $2}')"
if [ -z "$frames" ] || [ "$frames" -eq 0 ]; then
  echo "smoke_remote: net.server.frames_served is zero or missing" >&2
  echo "$stats_out" >&2
  exit 1
fi
if [ -z "$batches" ] || [ "$batches" -eq 0 ]; then
  echo "smoke_remote: engine.batches_received is zero or missing" >&2
  echo "$stats_out" >&2
  exit 1
fi
echo "smoke_remote: stats endpoint live ($frames frames, $batches batches)"

# Clean shutdown; --metrics dumps the registry as Prometheus text.
kill -TERM "$server_pid"
wait "$server_pid"
trap 'rm -f "$server_log"' EXIT
grep -q '^net_server_frames_served [1-9]' "$server_log" || {
  echo "smoke_remote: --metrics dump missing nonzero frame counter" >&2
  cat "$server_log" >&2
  exit 1
}
echo "smoke_remote: OK"
