#!/usr/bin/env bash
# Live two-process smoke test for the client/server split + observability.
#
# Boots a real mope_serverd (TPC-H lineitem, l_shipdate MOPE-encrypted) with
# the full telemetry surface on: disk-backed storage, HTTP exposition,
# leakage audit, and slow-query tracing. A mope_shell proxy runs one
# encrypted query over loopback TCP, then the script asserts:
#
#   - the \serverstats wire endpoint reports the frames the query cost,
#   - GET /metrics serves Prometheus text with storage.wal fsync quantiles
#     and leakage.* gauges, /healthz reports the attached storage, /statusz
#     is JSON,
#   - the query (over a deliberately tiny --slow-query-ms) produced one
#     structured slow_query log line whose trace id matches the exported
#     Chrome trace, and that trace contains WAL + buffer-pool spans,
#   - a live EXPLAIN ANALYZE over TCP prints the per-operator plan with
#     actuals plus the server-attributed resource vector, and the profile's
#     srv.engine.batches_received reconciles *exactly* with the
#     engine_batches_received delta between two /metrics scrapes bracketing
#     the statement,
#   - the daemon's sampled query log (--query-log-sample) carries the same
#     profile, joinable by the EXPLAIN ANALYZE trace id,
#   - the in-process time-series sampler (--sample-every-ms) accumulates
#     history: GET /vars returns >= 3 samples of leakage.gap.margin with
#     monotonically increasing timestamps,
#   - a low-threshold alert rule fires: GET /alertz reports it firing and
#     the structured log carries the matching event=alert line,
#   - shutdown writes the --metrics-out file atomically and the --metrics
#     stderr dump still works.
#
# Usage: tools/smoke_remote.sh [BUILD_DIR]   (default: build)

set -eu

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/tools/mope_serverd"
MOPE_SHELL="$BUILD_DIR/examples/example_mope_shell"
for bin in "$SERVERD" "$MOPE_SHELL"; do
  if [ ! -x "$bin" ]; then
    echo "smoke_remote: missing binary $bin (build first)" >&2
    exit 1
  fi
done
CURL="curl -sf --max-time 10"

server_log="$(mktemp)"
data_dir="$(mktemp -d)"
trace_file="$(mktemp -u)"    # written atomically by the daemon
metrics_file="$(mktemp -u)"  # written atomically at shutdown
cleanup() {
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  rm -rf "$server_log" "$data_dir" "$trace_file" "$trace_file.query" \
      "$metrics_file"
}

# Port 0 = ephemeral: the daemon logs the ports it actually bound
# (event=listening / event=http_listening), so parallel CI jobs never
# collide. --slow-query-ms 0.001 makes every request "slow" so the query
# below deterministically exercises the trace-export path, and
# --checkpoint-every 1 puts real WAL + buffer-pool work inside it.
# --sample-every-ms 200 keeps history accumulating fast enough to assert on;
# the alert rule's threshold is deliberately trivial (any served frame) so
# the firing edge is deterministic once the first query lands.
"$SERVERD" --tpch --scale 0.002 --port 0 --metrics \
    --data-dir "$data_dir" --http-port 0 --audit \
    --slow-query-ms 0.001 --slow-query-trace "$trace_file" \
    --checkpoint-every 1 --metrics-out "$metrics_file" \
    --query-log-sample 1 --sample-every-ms 200 \
    --alert-rule 'frames_served_nonzero: net.server.frames_served >= 1' \
    2>"$server_log" &
server_pid=$!
trap cleanup EXIT

# wait_for_port EVENT: poll the structured log for `event=EVENT ... port=N`
# and print N.
wait_for_port() {
  local found=""
  for _ in $(seq 1 300); do
    found="$(sed -n "s/.*event=$1 .*port=\([0-9][0-9]*\).*/\1/p" \
             "$server_log" | head -n 1)"
    [ -n "$found" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "smoke_remote: server exited during startup" >&2
      cat "$server_log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$found" ]; then
    echo "smoke_remote: never saw event=$1 in the log" >&2
    cat "$server_log" >&2
    exit 1
  fi
  echo "$found"
}

port="$(wait_for_port listening)"
http_port="$(wait_for_port http_listening)"
echo "smoke_remote: daemon up on port $port (http on $http_port)"

# One encrypted query over the wire. The shell re-derives the key from the
# shared seed; the daemon only ever sees ciphertext ranges.
query_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" \
    -c 'SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN 100 AND 400')"
echo "$query_out"
echo "$query_out" | grep -q '^(1 rows)$' || {
  echo "smoke_remote: remote query did not return a result row" >&2
  exit 1
}
echo "$query_out" | grep -q '\[traffic: .* real + .* fake queries' || {
  echo "smoke_remote: traffic line missing from query output" >&2
  exit 1
}

# Snapshot the slow-query export now: every frame is "slow" at this
# threshold, so later traffic (\serverstats below) would overwrite it with
# a trace that never touched storage.
if [ ! -f "$trace_file" ]; then
  echo "smoke_remote: slow-query Chrome trace was never exported" >&2
  cat "$server_log" >&2
  exit 1
fi
trace_snapshot="$trace_file.query"
cp "$trace_file" "$trace_snapshot"

# The live stats endpoint: fetch the server's registry over the wire and
# check the daemon accounted for the frames the query just cost it.
stats_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" -c '\serverstats')"
frames="$(echo "$stats_out" |
          awk '$1 == "net.server.frames_served" {print $2}')"
batches="$(echo "$stats_out" |
           awk '$1 == "engine.batches_received" {print $2}')"
if [ -z "$frames" ] || [ "$frames" -eq 0 ]; then
  echo "smoke_remote: net.server.frames_served is zero or missing" >&2
  echo "$stats_out" >&2
  exit 1
fi
if [ -z "$batches" ] || [ "$batches" -eq 0 ]; then
  echo "smoke_remote: engine.batches_received is zero or missing" >&2
  echo "$stats_out" >&2
  exit 1
fi
echo "smoke_remote: stats endpoint live ($frames frames, $batches batches)"

# --- HTTP exposition over a real scrape. -----------------------------------
metrics_scrape="$($CURL "http://127.0.0.1:$http_port/metrics")"
echo "$metrics_scrape" | grep -q '^storage_wal_fsync_ns_p50 ' || {
  echo "smoke_remote: /metrics missing storage_wal_fsync_ns quantiles" >&2
  echo "$metrics_scrape" >&2
  exit 1
}
echo "$metrics_scrape" | grep -q '^leakage_' || {
  echo "smoke_remote: /metrics missing leakage.* gauges" >&2
  exit 1
}
echo "$metrics_scrape" | grep -q '^net_server_frames_served [1-9]' || {
  echo "smoke_remote: /metrics frame counter zero or missing" >&2
  exit 1
}
healthz="$($CURL "http://127.0.0.1:$http_port/healthz")"
echo "$healthz" | grep -q '^ok$' || {
  echo "smoke_remote: /healthz did not report ok" >&2
  echo "$healthz" >&2
  exit 1
}
echo "$healthz" | grep -q '^storage=attached$' || {
  echo "smoke_remote: /healthz did not report attached storage" >&2
  echo "$healthz" >&2
  exit 1
}
$CURL "http://127.0.0.1:$http_port/statusz" | grep -q '"leakage"' || {
  echo "smoke_remote: /statusz missing leakage verdict" >&2
  exit 1
}
$CURL "http://127.0.0.1:$http_port/statusz" | grep -q '"queries"' || {
  echo "smoke_remote: /statusz missing queries summary" >&2
  exit 1
}
echo "smoke_remote: /metrics + /healthz + /statusz live"

# --- Time-series history: /vars accumulates leakage.gap.margin. ------------
# At 200ms per sample three samples take ~600ms; poll rather than sleep so
# the happy path stays fast. Timestamps must be strictly increasing — the
# ring preserves sample order.
vars_json=""
points=0
for _ in $(seq 1 100); do
  vars_json="$($CURL \
      "http://127.0.0.1:$http_port/vars?metric=leakage.gap.margin&window=16" \
      || true)"
  points="$(echo "$vars_json" | grep -o '\[[0-9][0-9]*,-\{0,1\}[0-9][0-9]*\]' \
            | wc -l)"
  [ "$points" -ge 3 ] && break
  sleep 0.2
done
if [ "$points" -lt 3 ]; then
  echo "smoke_remote: /vars never accumulated 3 leakage.gap.margin samples" >&2
  echo "$vars_json" >&2
  exit 1
fi
echo "$vars_json" | grep -q '"name":"leakage.gap.margin"' || {
  echo "smoke_remote: /vars response names the wrong series" >&2
  echo "$vars_json" >&2
  exit 1
}
echo "$vars_json" | grep -o '\[[0-9][0-9]*,-\{0,1\}[0-9][0-9]*\]' |
    sed 's/\[\([0-9]*\),.*/\1/' | sort -cn || {
  echo "smoke_remote: /vars timestamps are not monotonically increasing" >&2
  echo "$vars_json" >&2
  exit 1
}
echo "smoke_remote: /vars history live ($points samples of leakage.gap.margin)"

# --- Alert rule fires and lands in both /alertz and the log. ---------------
# The rule breaches as soon as one frame is served; the engine evaluates on
# the next sampling tick, so poll briefly for the firing edge.
alertz_json=""
for _ in $(seq 1 100); do
  alertz_json="$($CURL "http://127.0.0.1:$http_port/alertz" || true)"
  echo "$alertz_json" | grep -q '"firing":[1-9]' && break
  sleep 0.2
done
echo "$alertz_json" | grep -q '"firing":[1-9]' || {
  echo "smoke_remote: /alertz never reported a firing rule" >&2
  echo "$alertz_json" >&2
  exit 1
}
echo "$alertz_json" |
    grep -q '"name":"frames_served_nonzero","rule":"frames_served_nonzero: net.server.frames_served >= 1","firing":true' || {
  echo "smoke_remote: /alertz does not show frames_served_nonzero firing" >&2
  echo "$alertz_json" >&2
  exit 1
}
grep -q 'event=alert rule=frames_served_nonzero state=firing' "$server_log" || {
  echo "smoke_remote: no event=alert log line for frames_served_nonzero" >&2
  grep "event=alert" "$server_log" >&2 || true
  exit 1
}
echo "smoke_remote: alert frames_served_nonzero firing (/alertz <-> log)"

# --- Live EXPLAIN ANALYZE <-> /metrics reconciliation. ---------------------
# Bracket one EXPLAIN ANALYZE with two /metrics scrapes: the profile's
# server-attributed batch count must equal the registry counter's delta —
# same numbers, two independent exposition paths. Nothing else talks to the
# daemon in between, so the comparison is exact.
batches_before="$($CURL "http://127.0.0.1:$http_port/metrics" |
                  awk '$1 == "engine_batches_received" {print $2}')"
explain_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" \
    -c 'EXPLAIN ANALYZE SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN 100 AND 400')"
echo "$explain_out" | grep -q 'actual rows=' || {
  echo "smoke_remote: EXPLAIN ANALYZE printed no per-operator actuals" >&2
  echo "$explain_out" >&2
  exit 1
}
echo "$explain_out" | grep -q '^  net\.frames=' || {
  echo "smoke_remote: EXPLAIN ANALYZE resource vector missing wire bytes" >&2
  echo "$explain_out" >&2
  exit 1
}
profile_batches="$(echo "$explain_out" |
    sed -n 's/^ *srv\.engine\.batches_received=\([0-9][0-9]*\)$/\1/p')"
if [ -z "$profile_batches" ] || [ "$profile_batches" -eq 0 ]; then
  echo "smoke_remote: profile carries no srv.engine.batches_received" >&2
  echo "$explain_out" >&2
  exit 1
fi
batches_after="$($CURL "http://127.0.0.1:$http_port/metrics" |
                 awk '$1 == "engine_batches_received" {print $2}')"
delta="$((batches_after - batches_before))"
if [ "$delta" -ne "$profile_batches" ]; then
  echo "smoke_remote: profile batches ($profile_batches) != /metrics delta" \
       "($batches_after - $batches_before = $delta)" >&2
  exit 1
fi
echo "smoke_remote: EXPLAIN ANALYZE profile reconciles with /metrics" \
     "($profile_batches batches)"

# The sampled query log carries the same profile, joinable by trace id.
explain_trace="$(echo "$explain_out" |
    sed -n 's/^ *profile\.trace_id=\([0-9][0-9]*\)$/\1/p')"
if [ -z "$explain_trace" ]; then
  echo "smoke_remote: EXPLAIN ANALYZE reported no profile.trace_id" >&2
  echo "$explain_out" >&2
  exit 1
fi
grep -q "event=query .*trace_id=$explain_trace .*srv\.engine\.batches_received=" \
    "$server_log" || {
  echo "smoke_remote: no event=query log line with trace_id=$explain_trace" >&2
  grep "event=query" "$server_log" | head -n 3 >&2 || true
  exit 1
}
echo "smoke_remote: sampled query log joins trace $explain_trace"

# --- Slow-query log line <-> Chrome trace correlation. ---------------------
trace_id="$(sed -n 's/.*"trace_id":"\([0-9][0-9]*\)".*/\1/p' \
            "$trace_snapshot")"
if [ -z "$trace_id" ]; then
  echo "smoke_remote: exported trace carries no trace id" >&2
  cat "$trace_snapshot" >&2
  exit 1
fi
grep -q "event=slow_query .*trace=$trace_id\$" "$server_log" || {
  echo "smoke_remote: no slow_query log line with trace=$trace_id" >&2
  grep "event=slow_query" "$server_log" >&2 || true
  exit 1
}
for span in storage.wal.sync storage.pool.flush server.checkpoint; do
  grep -q "\"name\":\"$span\"" "$trace_snapshot" || {
    echo "smoke_remote: exported trace missing span $span" >&2
    cat "$trace_snapshot" >&2
    exit 1
  }
done
echo "smoke_remote: slow query trace $trace_id correlated (log <-> export)"

# Clean shutdown; --metrics dumps the registry as Prometheus text on stderr
# and --metrics-out writes the same text to a file atomically.
kill -TERM "$server_pid"
wait "$server_pid"
trap 'rm -rf "$server_log" "$data_dir" "$trace_file" "$metrics_file"' EXIT
grep -q '^net_server_frames_served [1-9]' "$server_log" || {
  echo "smoke_remote: --metrics dump missing nonzero frame counter" >&2
  cat "$server_log" >&2
  exit 1
}
if [ ! -f "$metrics_file" ]; then
  echo "smoke_remote: --metrics-out file was not written" >&2
  exit 1
fi
grep -q '^storage_wal_fsync_ns_p50 ' "$metrics_file" || {
  echo "smoke_remote: --metrics-out missing fsync quantiles" >&2
  cat "$metrics_file" >&2
  exit 1
}
echo "smoke_remote: OK"
