#!/usr/bin/env python3
"""Self-test for tools/bench_compare.py (wired into ctest as
`lint.bench_compare_selftest`).

Exercises the comparison logic on synthetic BENCH_*.json pairs: identical
sets pass, a past-threshold bandwidth increase fails, a shrinking
lower-worse metric fails, identity-mismatched and missing rows are reported
without failing, and string fields never participate in deltas.
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def run_compare(base_rows, cand_rows, threshold=0.25, bench="t"):
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "base").mkdir()
        (root / "cand").mkdir()
        (root / "base" / f"BENCH_{bench}.json").write_text(
            json.dumps({"bench": bench, "rows": base_rows}))
        (root / "cand" / f"BENCH_{bench}.json").write_text(
            json.dumps({"bench": bench, "rows": cand_rows}))
        return bench_compare.main([
            "--baseline", str(root / "base"),
            "--candidate", str(root / "cand"),
            "--threshold", str(threshold),
        ])


class BenchCompareTest(unittest.TestCase):
    def test_identical_sets_pass(self) -> None:
        rows = [{"metric": "bandwidth", "period": 8, "value": 10.0}]
        self.assertEqual(run_compare(rows, rows), 0)

    def test_regression_past_threshold_fails(self) -> None:
        base = [{"metric": "bandwidth", "period": 8, "value": 10.0}]
        cand = [{"metric": "bandwidth", "period": 8, "value": 14.0}]
        self.assertEqual(run_compare(base, cand, threshold=0.25), 1)

    def test_improvement_passes(self) -> None:
        base = [{"metric": "bandwidth", "period": 8, "value": 10.0}]
        cand = [{"metric": "bandwidth", "period": 8, "value": 6.0}]
        self.assertEqual(run_compare(base, cand, threshold=0.25), 0)

    def test_within_threshold_passes(self) -> None:
        base = [{"metric": "requests", "period": 8, "value": 10.0}]
        cand = [{"metric": "requests", "period": 8, "value": 12.0}]
        self.assertEqual(run_compare(base, cand, threshold=0.25), 0)

    def test_lower_worse_metric_shrinking_fails(self) -> None:
        base = [{"case": "raw", "margin": 100.0}]
        cand = [{"case": "raw", "margin": 40.0}]
        self.assertEqual(run_compare(base, cand, threshold=0.25), 1)

    def test_lower_worse_metric_growing_passes(self) -> None:
        base = [{"case": "raw", "margin": 100.0}]
        cand = [{"case": "raw", "margin": 160.0}]
        self.assertEqual(run_compare(base, cand, threshold=0.25), 0)

    def test_missing_row_is_not_a_failure(self) -> None:
        base = [{"metric": "bandwidth", "period": 8, "value": 10.0},
                {"metric": "bandwidth", "period": 16, "value": 5.0}]
        cand = [{"metric": "bandwidth", "period": 8, "value": 10.0}]
        self.assertEqual(run_compare(base, cand), 0)

    def test_missing_candidate_report_is_not_a_failure(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "base").mkdir()
            (root / "cand").mkdir()
            (root / "base" / "BENCH_x.json").write_text(
                json.dumps({"bench": "x",
                            "rows": [{"metric": "v", "value": 1.0}]}))
            self.assertEqual(bench_compare.main([
                "--baseline", str(root / "base"),
                "--candidate", str(root / "cand"),
            ]), 0)

    def test_empty_baseline_passes(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "base").mkdir()
            (root / "cand").mkdir()
            self.assertEqual(bench_compare.main([
                "--baseline", str(root / "base"),
                "--candidate", str(root / "cand"),
            ]), 0)

    def test_string_fields_are_identity_not_metrics(self) -> None:
        # Changing a string field changes the row identity (reported as
        # missing), never a delta — and never a failure.
        base = [{"metric": "bandwidth", "dataset": "adult", "value": 10.0}]
        cand = [{"metric": "bandwidth", "dataset": "census", "value": 99.0}]
        self.assertEqual(run_compare(base, cand), 0)

    def test_zero_baseline_to_nonzero_fails(self) -> None:
        base = [{"metric": "chi2", "case": "w", "chi2": 0.0}]
        cand = [{"metric": "chi2", "case": "w", "chi2": 5.0}]
        self.assertEqual(run_compare(base, cand), 1)


if __name__ == "__main__":
    unittest.main()
