#!/usr/bin/env bash
# Crash-recovery smoke test for the disk-backed storage engine.
#
# Two scenarios, both over a real mope_serverd + mope_shell loopback pair,
# with the data directory only ever holding ciphertexts:
#
#   1. Checkpointed kill: load TPC-H into a fresh --data-dir, record the
#      answer to an encrypted range query, kill -9 the daemon, restart on
#      the same directory and require the exact same answer over the wire.
#
#   2. Mid-load kill (WAL replay): start a bigger load on a second fresh
#      directory and kill -9 while the WAL is still growing — before the
#      bootstrap checkpoint. The restart must report crash recovery, serve
#      the replayed prefix, and a further restart must serve the identical
#      count (recovery is idempotent).
#
# Scenario 1 additionally runs with --blackbox: the crash flight recorder
# persists after every dispatch, so the box a kill -9 leaves behind must
# decode via --dump-blackbox and its last trace id must name the final
# query the server finished before dying.
#
# On failure, if SMOKE_ARTIFACT_DIR is set the black box and server log are
# copied there for CI to upload.
#
# Usage: tools/smoke_recovery.sh [BUILD_DIR]   (default: build)

set -eu

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/tools/mope_serverd"
MOPE_SHELL="$BUILD_DIR/examples/example_mope_shell"
for bin in "$SERVERD" "$MOPE_SHELL"; do
  if [ ! -x "$bin" ]; then
    echo "smoke_recovery: missing binary $bin (build first)" >&2
    exit 1
  fi
done

dir1="$(mktemp -d)"
dir2="$(mktemp -d)"
server_log="$(mktemp)"
blackbox="$dir1/blackbox.bin"
server_pid=""
cleanup() {
  rc=$?
  # Preserve the crash evidence for CI's failure artifact before the temp
  # dirs vanish.
  if [ "$rc" -ne 0 ] && [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACT_DIR" 2>/dev/null || true
    cp -f "$blackbox" "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
    cp -f "$blackbox.fatal" "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
    cp -f "$server_log" "$SMOKE_ARTIFACT_DIR/smoke_recovery_server.log" \
        2>/dev/null || true
  fi
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
  rm -rf "$dir1" "$dir2" "$server_log"
}
trap cleanup EXIT

QUERY='SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN 100 AND 400'

# start_daemon SCALE DATA_DIR [EXTRA_FLAGS...]: boot serverd, wait for it to
# listen, and set $port / $server_pid.
start_daemon() {
  scale="$1"
  data_dir="$2"
  shift 2
  : >"$server_log"
  "$SERVERD" --tpch --scale "$scale" --port 0 --data-dir "$data_dir" "$@" \
      2>"$server_log" &
  server_pid=$!
  port=""
  for _ in $(seq 1 600); do
    port="$(sed -n 's/.*event=listening .*port=\([0-9][0-9]*\).*/\1/p' \
            "$server_log" | head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "smoke_recovery: server exited during startup" >&2
      cat "$server_log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "smoke_recovery: server never started listening" >&2
    cat "$server_log" >&2
    exit 1
  fi
}

# count_query: run $QUERY against $port and print the bare count.
count_query() {
  "$MOPE_SHELL" --connect "127.0.0.1:$port" -c "$QUERY" |
      sed -n 's/^ *\([0-9][0-9]*\) *$/\1/p' | head -n 1
}

hard_kill() {
  kill -9 "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

# --- Scenario 1: kill after checkpoint, answers must be identical. ---------
start_daemon 0.002 "$dir1" --blackbox "$blackbox"
echo "smoke_recovery: daemon up on port $port (data dir $dir1)"
grep -q "event=checkpointed" "$server_log" || {
  echo "smoke_recovery: fresh data dir was not checkpointed after load" >&2
  cat "$server_log" >&2
  exit 1
}
expected="$(count_query)"
if [ -z "$expected" ] || [ "$expected" -eq 0 ]; then
  echo "smoke_recovery: baseline query returned no count" >&2
  exit 1
fi
echo "smoke_recovery: baseline count = $expected"

# The final statement before the kill: its trace id must be the last one the
# flight recorder persisted (the recorder writes after every dispatch, so
# even SIGKILL cannot lose the completed query).
explain_out="$("$MOPE_SHELL" --connect "127.0.0.1:$port" \
    -c "EXPLAIN ANALYZE $QUERY")"
final_trace="$(echo "$explain_out" |
    sed -n 's/^ *profile\.trace_id=\([0-9][0-9]*\)$/\1/p')"
if [ -z "$final_trace" ]; then
  echo "smoke_recovery: EXPLAIN ANALYZE reported no profile.trace_id" >&2
  echo "$explain_out" >&2
  exit 1
fi
hard_kill
echo "smoke_recovery: daemon killed with SIGKILL"

for f in pages.db wal.log storage.meta; do
  [ -f "$dir1/$f" ] || {
    echo "smoke_recovery: $f missing from data dir after kill" >&2
    exit 1
  }
done

# --- Black box: the kill-9 corpse must name the final query. ---------------
[ -f "$blackbox" ] || {
  echo "smoke_recovery: --blackbox file missing after SIGKILL" >&2
  exit 1
}
dump="$("$SERVERD" --dump-blackbox "$blackbox")"
echo "$dump" | grep -q "server.dispatch.done" || {
  echo "smoke_recovery: black box has no dispatch.done events" >&2
  echo "$dump" >&2
  exit 1
}
box_trace="$(echo "$dump" |
    sed -n 's/^blackbox\.last_trace_id=\([0-9][0-9]*\)$/\1/p')"
if [ "$box_trace" != "$final_trace" ]; then
  echo "smoke_recovery: black box last trace id ($box_trace) does not" \
       "match the final query ($final_trace)" >&2
  echo "$dump" | tail -n 20 >&2
  exit 1
fi
echo "smoke_recovery: black box last trace id matches final query" \
     "($final_trace)"

start_daemon 0.002 "$dir1"
grep -q "event=recovered .*tables=1" "$server_log" || {
  echo "smoke_recovery: restart did not recover the table" >&2
  cat "$server_log" >&2
  exit 1
}
actual="$(count_query)"
if [ "$actual" != "$expected" ]; then
  echo "smoke_recovery: count mismatch after restart:" \
       "expected $expected got ${actual:-none}" >&2
  exit 1
fi
echo "smoke_recovery: post-restart count matches ($actual)"
hard_kill

# --- Scenario 2: kill mid-load, WAL replay must yield a stable prefix. -----
: >"$server_log"
"$SERVERD" --tpch --scale 0.02 --port 0 --data-dir "$dir2" 2>"$server_log" &
server_pid=$!
killed_midload=""
for _ in $(seq 1 2000); do
  if grep -q "event=checkpointed" "$server_log"; then
    break  # load finished before we pulled the trigger
  fi
  wal_size="$(stat -c %s "$dir2/wal.log" 2>/dev/null || echo 0)"
  if [ "$wal_size" -gt 200000 ]; then
    kill -9 "$server_pid"
    killed_midload=1
    break
  fi
  sleep 0.01
done
wait "$server_pid" 2>/dev/null || true
server_pid=""
if [ -z "$killed_midload" ]; then
  echo "smoke_recovery: load finished before mid-load kill; raise --scale" >&2
  exit 1
fi
echo "smoke_recovery: daemon killed mid-load (wal.log at $wal_size bytes)"

start_daemon 0.02 "$dir2"
grep -q "crash_recovery=true" "$server_log" || {
  echo "smoke_recovery: restart did not report WAL replay" >&2
  cat "$server_log" >&2
  exit 1
}
replayed="$(count_query)"
if [ -z "$replayed" ]; then
  echo "smoke_recovery: query after WAL replay returned no count" >&2
  exit 1
fi
echo "smoke_recovery: WAL replay served prefix count = $replayed"
hard_kill

# Recovery must be idempotent: a second restart serves the same answer.
start_daemon 0.02 "$dir2"
again="$(count_query)"
if [ "$again" != "$replayed" ]; then
  echo "smoke_recovery: recovered count unstable across restarts:" \
       "$replayed then ${again:-none}" >&2
  exit 1
fi
echo "smoke_recovery: recovery idempotent across restarts ($again)"
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "smoke_recovery: OK"
