#!/usr/bin/env python3
"""Self-test for tools/check_invariants.py.

Builds a throwaway source tree seeded with one violation per rule, runs the
linter against it, and asserts every seeded violation is caught — plus that a
clean file, an `invariant-ok` escape, a string literal, and an exempt path
produce no findings. Wired into ctest as `lint.invariants_selftest`.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import check_invariants  # noqa: E402


def run_on_tree(files: dict[str, str]) -> list[str]:
    """Writes {relpath: contents} into a temp root and lints it."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, contents in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents, encoding="utf-8")
        violations = []
        for rel in check_invariants.collect_sources(root):
            violations.extend(check_invariants.lint_file(root, rel))
        return violations


def rule_ids(violations: list[str]) -> set[str]:
    ids = set()
    for v in violations:
        start = v.find("[")
        end = v.find("]", start)
        if start != -1 and end != -1:
            ids.add(v[start + 1 : end])
    return ids


class CatchesSeededViolations(unittest.TestCase):
    def test_ad_hoc_randomness(self) -> None:
        v = run_on_tree(
            {"src/dist/bad.cc": "#include <random>\nstd::mt19937 gen(42);\n"}
        )
        self.assertIn("ad-hoc-randomness", rule_ids(v))

    def test_rand_in_tests_tree(self) -> None:
        v = run_on_tree({"tests/bad_test.cc": "int x = rand();\n"})
        self.assertIn("ad-hoc-randomness", rule_ids(v))

    def test_wall_clock(self) -> None:
        v = run_on_tree(
            {"src/workload/bad.cc": "#include <ctime>\nlong t = time(nullptr);\n"}
        )
        self.assertIn("wall-clock", rule_ids(v))

    def test_chrono_clock(self) -> None:
        v = run_on_tree(
            {
                "src/engine/bad.cc":
                    "auto t = std::chrono::steady_clock::now();\n"
            }
        )
        # A std::chrono clock in src/ breaks both determinism (R2) and clock
        # injectability (R7).
        self.assertIn("wall-clock", rule_ids(v))
        self.assertIn("clock-injection", rule_ids(v))

    def test_chrono_clock_in_bench(self) -> None:
        # bench/ is exempt from R2 (it may measure wall time) but not from
        # R7: the measurement must flow through an injectable obs::Clock.
        v = run_on_tree(
            {"bench/timing.cc":
                 "auto t = std::chrono::steady_clock::now();\n"}
        )
        self.assertNotIn("wall-clock", rule_ids(v))
        self.assertIn("clock-injection", rule_ids(v))

    def test_chrono_clock_in_tests(self) -> None:
        v = run_on_tree(
            {"tests/bad_test.cc":
                 "auto t = std::chrono::system_clock::now();\n"}
        )
        self.assertIn("clock-injection", rule_ids(v))

    def test_ignored_result(self) -> None:
        v = run_on_tree({"src/engine/bad.cc": "  table->CreateIndex(col);\n"})
        self.assertIn("ignored-result", rule_ids(v))

    def test_ignored_result_plain_call(self) -> None:
        v = run_on_tree({"src/ope/bad.cc": "  scheme.Encrypt(m);\n"})
        self.assertIn("ignored-result", rule_ids(v))

    def test_void_cast_in_crypto(self) -> None:
        v = run_on_tree({"src/crypto/bad.cc": "  (void)DoEncrypt(m);\n"})
        self.assertIn("void-cast-crypto", rule_ids(v))

    def test_ignore_status_macro_in_ope(self) -> None:
        v = run_on_tree(
            {"src/ope/bad.cc": '  MOPE_IGNORE_STATUS(st, "meh");\n'}
        )
        self.assertIn("void-cast-crypto", rule_ids(v))

    def test_assert_in_crypto(self) -> None:
        v = run_on_tree(
            {"src/crypto/bad.cc": "#include <cassert>\nvoid f(){assert(1);}\n"}
        )
        self.assertIn("assert-crypto", rule_ids(v))

    def test_raw_socket_outside_net(self) -> None:
        v = run_on_tree(
            {"src/engine/bad.cc": "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"}
        )
        self.assertIn("raw-socket", rule_ids(v))

    def test_raw_recv_in_tests_tree(self) -> None:
        v = run_on_tree(
            {"tests/bad_test.cc": "ssize_t n = recv(fd, buf, len, 0);\n"}
        )
        self.assertIn("raw-socket", rule_ids(v))

    def test_qualified_connect_outside_net(self) -> None:
        v = run_on_tree(
            {"examples/bad.cpp": "int rc = ::connect(fd, addr, len);\n"}
        )
        self.assertIn("raw-socket", rule_ids(v))

    def test_leakage_auditor_includes_ope(self) -> None:
        v = run_on_tree(
            {"src/obs/leakage.cc": '#include "ope/mope.h"\n'}
        )
        self.assertIn("auditor-ciphertext-only", rule_ids(v))

    def test_leakage_auditor_includes_proxy_header(self) -> None:
        v = run_on_tree(
            {"src/obs/leakage.h": '#include "proxy/proxy.h"\n'}
        )
        self.assertIn("auditor-ciphertext-only", rule_ids(v))

    def test_leakage_auditor_includes_sql_angle(self) -> None:
        v = run_on_tree(
            {"src/obs/leakage.cc": "#include <sql/parser.h>\n"}
        )
        self.assertIn("auditor-ciphertext-only", rule_ids(v))

    def test_leakage_auditor_includes_src_relative(self) -> None:
        v = run_on_tree(
            {"src/obs/leakage.cc": '#include "../ope/ope.h"\n'}
        )
        self.assertIn("auditor-ciphertext-only", rule_ids(v))

    def test_raw_mutex_member(self) -> None:
        v = run_on_tree(
            {"src/net/bad.h": "#include <mutex>\n"
                              "class T { std::mutex mu_; };\n"}
        )
        self.assertIn("raw-mutex", rule_ids(v))

    def test_raw_lock_guard_in_tests_tree(self) -> None:
        v = run_on_tree(
            {"tests/bad_test.cc":
                 "const std::lock_guard<std::mutex> lock(mu);\n"}
        )
        self.assertIn("raw-mutex", rule_ids(v))

    def test_raw_shared_mutex_and_condvar(self) -> None:
        v = run_on_tree(
            {"src/engine/bad.h": "std::shared_mutex rw_;\n",
             "src/obs/bad.cc": "std::condition_variable cv_;\n"}
        )
        self.assertIn("raw-mutex", rule_ids(v))

    def test_raw_fstream_outside_storage(self) -> None:
        v = run_on_tree(
            {"src/engine/bad.cc": "#include <fstream>\n"
                                  "std::ofstream out(path);\n"}
        )
        self.assertIn("raw-file-io", rule_ids(v))

    def test_raw_fopen_outside_storage(self) -> None:
        v = run_on_tree(
            {"src/workload/bad.cc": 'FILE* f = fopen("x.csv", "rb");\n'}
        )
        self.assertIn("raw-file-io", rule_ids(v))

    def test_raw_open_syscall_outside_storage(self) -> None:
        v = run_on_tree(
            {"src/obs/bad.cc": "int fd = open(path, O_RDWR);\n"}
        )
        self.assertIn("raw-file-io", rule_ids(v))

    def test_raw_fprintf_outside_logger(self) -> None:
        v = run_on_tree(
            {"src/engine/bad.cc":
                 "#include <cstdio>\n"
                 'void F() { std::fprintf(stderr, "recovered\\n"); }\n'}
        )
        self.assertIn("raw-output", rule_ids(v))

    def test_raw_printf_in_tools(self) -> None:
        v = run_on_tree(
            {"tools/bad_daemon.cc": 'void F() { printf("listening\\n"); }\n'}
        )
        self.assertIn("raw-output", rule_ids(v))

    def test_raw_cerr_stream(self) -> None:
        v = run_on_tree(
            {"src/net/bad.cc":
                 "#include <iostream>\n"
                 'void F() { std::cerr << "oops" << std::endl; }\n'}
        )
        self.assertIn("raw-output", rule_ids(v))

    def test_unannotated_wrapper_mutex(self) -> None:
        # A capability nothing is guarded by: the declaring file must carry
        # at least one MOPE_GUARDED_BY / MOPE_PT_GUARDED_BY.
        v = run_on_tree(
            {"src/net/bad.h":
                 '#include "common/thread_annotations.h"\n'
                 "class T {\n"
                 "  mope::Mutex mu_;\n"
                 "  int guarded_value_ = 0;\n"
                 "};\n"}
        )
        self.assertIn("mutex-unannotated", rule_ids(v))


    def test_fatal_handler_logging_caught(self) -> None:
        v = run_on_tree(
            {"tools/bad_daemon.cc":
                 "void Boom(int signo) {\n"
                 '  MOPE_LOG(kError, "server", "crash").Arg("signo", signo);\n'
                 "}\n"
                 "void Setup() { std::signal(SIGSEGV, Boom); }\n"}
        )
        self.assertIn("fatal-handler-unsafe", rule_ids(v))

    def test_fatal_handler_heap_and_stdio_caught(self) -> None:
        v = run_on_tree(
            {"examples/bad.cpp":
                 "void OnAbort(int signo) {\n"
                 "  std::string msg = std::to_string(signo);\n"
                 "  char* p = static_cast<char*>(malloc(64));\n"
                 "}\n"
                 "void Setup() { std::signal(SIGABRT, OnAbort); }\n"}
        )
        self.assertEqual(
            sum(1 for x in v if "fatal-handler-unsafe" in x), 2)

    def test_fatal_handler_via_sigaction_caught(self) -> None:
        v = run_on_tree(
            {"examples/bad2.cpp":
                 "void OnBus(int signo) {\n"
                 "  std::cerr << signo;\n"
                 "}\n"
                 "void Setup(struct sigaction* sa) {\n"
                 "  sa->sa_handler = OnBus;\n"
                 "  sigaction(SIGBUS, sa, nullptr);\n"
                 "}\n"}
        )
        self.assertIn("fatal-handler-unsafe", rule_ids(v))


class NoFalsePositives(unittest.TestCase):
    def test_clean_file(self) -> None:
        v = run_on_tree(
            {
                "src/ope/good.cc":
                    "#include \"common/status.h\"\n"
                    "mope::Status F() { return mope::Status::OK(); }\n"
            }
        )
        self.assertEqual(v, [])

    def test_escape_comment(self) -> None:
        v = run_on_tree(
            {
                "src/workload/good.cc":
                    "long t = time(nullptr);  "
                    "// invariant-ok: wall time feeds a log line only\n"
            }
        )
        self.assertEqual(v, [])

    def test_string_literal_not_matched(self) -> None:
        v = run_on_tree(
            {
                "src/sql/good.cc":
                    'const char* kMsg = "call time() elsewhere";\n'
            }
        )
        self.assertEqual(v, [])

    def test_logger_sink_exempt_from_raw_output(self) -> None:
        # src/obs/log.* is the one sanctioned stderr site: the default sink
        # itself must be able to write raw bytes.
        v = run_on_tree(
            {"src/obs/log.cc":
                 "#include <cstdio>\n"
                 "void Sink(const char* s) { std::fputs(s, stderr); }\n"}
        )
        self.assertEqual(v, [])

    def test_snprintf_is_not_raw_output(self) -> None:
        # Formatting into a buffer is not output; only the stdio writers are.
        v = run_on_tree(
            {"src/net/good.cc":
                 "#include <cstdio>\n"
                 "void F(char* b) { std::snprintf(b, 8, \"%d\", 1); }\n"}
        )
        self.assertEqual(v, [])

    def test_raw_output_escape_in_tools(self) -> None:
        v = run_on_tree(
            {"tools/good_daemon.cc":
                 "void Usage() {\n"
                 "  std::fprintf(  // invariant-ok: R11 usage/help text\n"
                 '      stderr, "usage: ...\\n");\n'
                 "}\n"}
        )
        self.assertEqual(v, [])

    def test_random_module_exempt(self) -> None:
        v = run_on_tree(
            {"src/common/random.cc": "// std::mt19937 alternative notes\n"}
        )
        self.assertEqual(v, [])

    def test_obs_clock_shim_exempt(self) -> None:
        # src/obs/clock.* is the one sanctioned steady_clock site (both R2
        # and R7 exclude it) — everything else injects an obs::Clock.
        v = run_on_tree(
            {"src/obs/clock.cc":
                 "auto t = std::chrono::steady_clock::now();\n",
             "src/obs/clock.h":
                 "// wraps std::chrono::steady_clock behind obs::Clock\n"}
        )
        self.assertEqual(v, [])

    def test_clock_injection_escape(self) -> None:
        v = run_on_tree(
            {"tests/deadline_test.cc":
                 "auto t = std::chrono::steady_clock::now();  "
                 "// invariant-ok: real deadline needed for the timeout test\n"}
        )
        self.assertEqual(v, [])

    def test_xtime_aes_helper_not_wall_clock(self) -> None:
        v = run_on_tree(
            {"src/crypto/good.cc": "uint8_t b = Xtime(a);\n"}
        )
        self.assertEqual(v, [])

    def test_assigned_result_not_flagged(self) -> None:
        v = run_on_tree(
            {"src/engine/good.cc": "  auto st = table->CreateIndex(col);\n"
                                   "  if (!st.ok()) return st;\n"}
        )
        self.assertEqual(v, [])

    def test_continuation_line_of_macro_not_flagged(self) -> None:
        v = run_on_tree(
            {
                "src/ope/good.cc":
                    "  MOPE_ASSIGN_OR_RETURN(uint64_t c,\n"
                    "                        scheme.Encrypt(m));\n"
            }
        )
        self.assertEqual(v, [])

    def test_socket_layer_exempt_from_raw_socket(self) -> None:
        v = run_on_tree(
            {"src/net/socket.cc":
                 "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
                 "int rc = ::connect(fd, addr, len);\n"}
        )
        self.assertEqual(v, [])

    def test_visitor_accept_not_raw_socket(self) -> None:
        # An unqualified accept()/bind() is an ordinary method or std::bind;
        # only the ::-qualified syscall spelling is banned.
        v = run_on_tree(
            {"src/sql/good.cc":
                 "  return accept(leaf->column);\n"
                 "  auto f = std::bind(&T::Run, this);\n"}
        )
        self.assertEqual(v, [])

    def test_leakage_auditor_clean_includes_allowed(self) -> None:
        # common/ and obs/ are exactly what the untrusted server also has.
        v = run_on_tree(
            {"src/obs/leakage.cc":
                 '#include "common/histogram.h"\n'
                 '#include "obs/registry.h"\n'}
        )
        self.assertEqual(v, [])

    def test_leakage_rule_scoped_to_auditor_files(self) -> None:
        # Other obs/ files (and the proxy itself) include proxy/ legally;
        # R8 binds only src/obs/leakage.*.
        v = run_on_tree(
            {"src/obs/registry.cc": '#include "proxy/proxy.h"\n'}
        )
        self.assertNotIn("auditor-ciphertext-only", rule_ids(v))

    def test_wrapper_mutex_with_annotation_clean(self) -> None:
        v = run_on_tree(
            {"src/net/good.h":
                 '#include "common/thread_annotations.h"\n'
                 "class T {\n"
                 "  mope::Mutex mu_;\n"
                 "  int value_ MOPE_GUARDED_BY(mu_) = 0;\n"
                 "};\n"}
        )
        self.assertEqual(v, [])

    def test_mutex_lock_local_is_not_a_decl(self) -> None:
        # MutexLock / WriterMutexLock locals are uses, not capability
        # declarations; they carry no annotation obligation.
        v = run_on_tree(
            {"src/net/good.cc":
                 "void F() { const MutexLock lock(&mu_); }\n"
                 "void G() { WriterMutexLock lock(&rw_); }\n"}
        )
        self.assertEqual(v, [])

    def test_raw_mutex_exempt_in_common(self) -> None:
        # src/common/ hosts the wrappers themselves.
        v = run_on_tree(
            {"src/common/thread_annotations.h": "std::mutex mu_;\n"}
        )
        self.assertEqual(v, [])

    def test_unannotated_check_scoped_to_src(self) -> None:
        # Tests may declare wrapper mutexes ad hoc without the annotation
        # obligation (their state is usually function-local anyway).
        v = run_on_tree(
            {"tests/good_test.cc": "mope::Mutex mu;\n"}
        )
        self.assertEqual(v, [])

    def test_raw_mutex_escape_comment(self) -> None:
        v = run_on_tree(
            {"src/net/good.h":
                 "std::mutex mu_;  "
                 "// invariant-ok: interop with an external API\n"}
        )
        self.assertEqual(v, [])

    def test_storage_layer_exempt_from_raw_file_io(self) -> None:
        # src/storage/ *is* the audited layer — the Env implementations make
        # the actual syscalls.
        v = run_on_tree(
            {"src/storage/env.cc":
                 "int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);\n"
                 'FILE* f = fopen(path.c_str(), "rb");\n'}
        )
        self.assertNotIn("raw-file-io", rule_ids(v))

    def test_named_open_methods_not_raw_file_io(self) -> None:
        # Wal::Open / pool->Open / "reopen" are ordinary identifiers; only
        # the bare open()/creat() syscall spelling is banned.
        v = run_on_tree(
            {"src/engine/good.cc":
                 "  auto wal = Wal::Open(env, path, 1);\n"
                 "  auto st = disk->Open();\n"
                 "  Reopen();\n"}
        )
        self.assertNotIn("raw-file-io", rule_ids(v))

    def test_operator_public_hook_override_caught(self) -> None:
        v = run_on_tree(
            {"src/engine/bad_op.h":
                 "class RogueOp final : public Operator {\n"
                 " public:\n"
                 "  Status Open() override;\n"
                 "  Result<bool> Next(Row* out) override;\n"
                 "};\n"}
        )
        self.assertIn("operator-hook-override", rule_ids(v))

    def test_operator_impl_hooks_clean(self) -> None:
        # The sanctioned shape: protected OpenImpl/NextImpl overrides.
        v = run_on_tree(
            {"src/engine/good_op.h":
                 "class GoodOp final : public engine::Operator {\n"
                 " protected:\n"
                 "  Status OpenImpl() override;\n"
                 "  Result<bool> NextImpl(Row* out) override;\n"
                 "};\n"}
        )
        self.assertNotIn("operator-hook-override", rule_ids(v))

    def test_open_override_outside_operator_file_clean(self) -> None:
        # Open()/Next() overrides are fine in files with no Operator
        # subclass — Transport::Open, iterators, etc. are different APIs.
        v = run_on_tree(
            {"src/storage/iter.h":
                 "class HeapIter final : public Iter {\n"
                 " public:\n"
                 "  Status Open() override;\n"
                 "  bool Next(Row* out) override;\n"
                 "};\n"}
        )
        self.assertNotIn("operator-hook-override", rule_ids(v))

    def test_operator_hook_escape_comment(self) -> None:
        v = run_on_tree(
            {"src/engine/escaped_op.h":
                 "class LegacyOp final : public Operator {\n"
                 "  Status Open() override;"
                 "  // invariant-ok: R12 shim measured separately\n"
                 "};\n"}
        )
        self.assertNotIn("operator-hook-override", rule_ids(v))

    def test_sanctioned_fatal_handler_clean(self) -> None:
        # The flight-recorder dump plus default-disposition re-raise is the
        # approved crash path; nothing in it may trip R13.
        v = run_on_tree(
            {"tools/good_daemon.cc":
                 "void HandleFatalSignal(int signo) {\n"
                 "  if (auto* r = mope::obs::FlightRecorder::Installed()) {\n"
                 "    r->FatalSignalDump(signo);\n"
                 "  }\n"
                 "  std::signal(signo, SIG_DFL);\n"
                 "  std::raise(signo);\n"
                 "}\n"
                 "void Setup() { std::signal(SIGSEGV, HandleFatalSignal); }\n"}
        )
        self.assertNotIn("fatal-handler-unsafe", rule_ids(v))

    def test_unsafe_code_outside_handler_not_r13(self) -> None:
        # R13 binds only the handler body; ordinary functions in the same
        # file may allocate freely.
        v = run_on_tree(
            {"examples/good.cpp":
                 "void Quiet(int signo) { std::raise(signo); }\n"
                 "void Setup() { std::signal(SIGILL, Quiet); }\n"
                 "void Elsewhere() { std::string s(64, 'x'); }\n"}
        )
        self.assertNotIn("fatal-handler-unsafe", rule_ids(v))

    def test_nonfatal_signal_handler_exempt_from_r13(self) -> None:
        # SIGINT/SIGTERM handlers are ordinary shutdown paths, not R13's
        # concern (the process is healthy; the logger and heap still work).
        v = run_on_tree(
            {"examples/good2.cpp":
                 "void OnInt(int signo) {\n"
                 "  std::string why = std::to_string(signo);\n"
                 "}\n"
                 "void Setup() { std::signal(SIGINT, OnInt); }\n"}
        )
        self.assertNotIn("fatal-handler-unsafe", rule_ids(v))

    def test_fatal_handler_escape_comment(self) -> None:
        v = run_on_tree(
            {"examples/escaped.cpp":
                 "void Boom(int signo) {\n"
                 "  std::fputs(\"dying\\n\", stderr);  "
                 "// invariant-ok: R13 single write(2)-like call, measured\n"
                 "}\n"
                 "void Setup() { std::signal(SIGFPE, Boom); }\n"}
        )
        self.assertNotIn("fatal-handler-unsafe", rule_ids(v))

    def test_real_repo_is_clean(self) -> None:
        root = Path(__file__).resolve().parent.parent
        violations = []
        for rel in check_invariants.collect_sources(root):
            violations.extend(check_invariants.lint_file(root, rel))
        self.assertEqual(
            violations, [], "the repo itself must satisfy its invariants"
        )


if __name__ == "__main__":
    unittest.main()
