#!/usr/bin/env python3
"""Compare two sets of BENCH_<name>.json reports and flag regressions.

Each bench emits BENCH_<name>.json ({"bench": name, "rows": [{k: v}, ...]})
via bench::JsonReport. This tool pairs up a baseline set and a candidate set
(directories, or explicit file lists), matches rows by their identity keys
(every field except the measured ones), prints per-metric deltas, and exits
non-zero when any *regression-direction* relative delta exceeds the
threshold.

Which fields are measurements, and which direction is bad:

  * numeric fields named in --higher-worse (default: value, bandwidth,
    requests, ms, chi2) regress when they grow;
  * numeric fields named in --lower-worse (default: margin, confidence)
    regress when they shrink;
  * every other field (strings and remaining numerics alike) is identity —
    it names the data point.

Typical use (CI compares a fresh run against the committed perf trajectory):

  python3 tools/bench_compare.py --baseline bench/baselines --candidate . \
      --threshold 0.25

Exit status: 0 within threshold (or nothing to compare), 1 regression(s),
2 usage error. Missing counterpart files or rows are reported but are not
failures — benches come and go; only a measured regression fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_HIGHER_WORSE = ("value", "bandwidth", "requests", "ms", "chi2")
DEFAULT_LOWER_WORSE = ("margin", "confidence")


def load_reports(spec: str) -> dict[str, list[dict]]:
    """Loads {bench name: rows} from a directory of BENCH_*.json or a single
    file path."""
    path = Path(spec)
    files = sorted(path.glob("BENCH_*.json")) if path.is_dir() else [path]
    reports: dict[str, list[dict]] = {}
    for file in files:
        try:
            doc = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_compare: skipping {file}: {err}", file=sys.stderr)
            continue
        name = doc.get("bench", file.stem)
        rows = doc.get("rows", [])
        if isinstance(rows, list):
            reports[name] = [r for r in rows if isinstance(r, dict)]
    return reports


def row_identity(row: dict, measured: set[str]) -> tuple:
    """The hashable identity of a row: every non-measured field."""
    return tuple(sorted(
        (k, v) for k, v in row.items() if k not in measured
    ))


def compare(baseline: dict[str, list[dict]], candidate: dict[str, list[dict]],
            higher_worse: set[str], lower_worse: set[str],
            threshold: float) -> int:
    measured = higher_worse | lower_worse
    regressions = 0
    compared = 0
    for bench in sorted(baseline):
        if bench not in candidate:
            print(f"  [missing] {bench}: no candidate report")
            continue
        base_rows = {row_identity(r, measured): r for r in baseline[bench]}
        cand_rows = {row_identity(r, measured): r for r in candidate[bench]}
        for identity in sorted(base_rows, key=str):
            if identity not in cand_rows:
                print(f"  [missing] {bench}: row {dict(identity)} gone")
                continue
            base, cand = base_rows[identity], cand_rows[identity]
            for key in sorted(measured & base.keys() & cand.keys()):
                b, c = base[key], cand[key]
                if not isinstance(b, (int, float)) or isinstance(b, bool):
                    continue
                if not isinstance(c, (int, float)) or isinstance(c, bool):
                    continue
                compared += 1
                delta = c - b
                rel = delta / abs(b) if b != 0 else (0.0 if c == 0 else
                                                     float("inf"))
                bad = (key in higher_worse and rel > threshold) or \
                      (key in lower_worse and rel < -threshold)
                label = dict(identity)
                marker = "REGRESSION" if bad else "ok"
                print(f"  [{marker}] {bench} {label} {key}: "
                      f"{b:g} -> {c:g} ({rel:+.1%})")
                regressions += int(bad)
    print(f"bench_compare: {compared} metric(s) compared, "
          f"{regressions} regression(s) past {threshold:.0%}")
    return 1 if regressions else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="directory of BENCH_*.json (or one file)")
    parser.add_argument("--candidate", required=True,
                        help="directory of BENCH_*.json (or one file)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (default 0.25)")
    parser.add_argument("--higher-worse", nargs="*",
                        default=list(DEFAULT_HIGHER_WORSE),
                        help="numeric fields that regress by growing")
    parser.add_argument("--lower-worse", nargs="*",
                        default=list(DEFAULT_LOWER_WORSE),
                        help="numeric fields that regress by shrinking")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        print("bench_compare: threshold must be >= 0", file=sys.stderr)
        return 2

    baseline = load_reports(args.baseline)
    candidate = load_reports(args.candidate)
    if not baseline:
        print(f"bench_compare: no baseline reports under {args.baseline} "
              "(nothing to compare; passing)")
        return 0
    return compare(baseline, candidate, set(args.higher_worse),
                   set(args.lower_worse), args.threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
