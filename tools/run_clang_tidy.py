#!/usr/bin/env python3
"""clang-tidy driver for the MOPE tree.

Runs clang-tidy (config: .clang-tidy at the repo root) over every .cc file
under src/ using the compile_commands.json of an existing build directory.
Exits 77 (the ctest skip code) when clang-tidy or the compilation database is
unavailable, so local gcc-only environments skip the check instead of
failing; CI installs clang-tidy and runs it for real.

Usage:  python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
"""

from __future__ import annotations

import argparse
import collections
import multiprocessing
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

SKIP = 77

# clang-tidy diagnostic lines end in "[check-name]" (possibly a comma-joined
# list); collected into the per-check histogram printed at the end so CI logs
# show at a glance which check groups (e.g. concurrency-*) fired.
CHECK_TAG_RE = re.compile(
    r"(?:warning|error):.*\[([A-Za-z0-9_.,-]+)\]\s*$", re.MULTILINE)


def count_checks(output: str, histogram: collections.Counter) -> None:
    for tags in CHECK_TAG_RE.findall(output):
        for tag in tags.split(","):
            histogram[tag] += 1


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=root / "build")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping")
        return SKIP
    compdb = args.build_dir / "compile_commands.json"
    if not compdb.is_file():
        print(f"run_clang_tidy: no {compdb}; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first; skipping")
        return SKIP

    sources = sorted((root / "src").rglob("*.cc"))
    if not sources:
        print("run_clang_tidy: no sources found", file=sys.stderr)
        return 2
    print(f"run_clang_tidy: {tidy} over {len(sources)} files "
          f"({args.jobs} jobs)")

    def run_one(src: Path) -> tuple[Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", str(src)],
            capture_output=True, text=True, check=False)
        return src, proc.returncode, proc.stdout + proc.stderr

    failed = 0
    findings = collections.Counter()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for src, code, output in pool.map(run_one, sources):
            rel = src.relative_to(root)
            count_checks(output, findings)
            if code != 0:
                failed += 1
                print(f"FAIL {rel}\n{output}")
            else:
                print(f"  ok {rel}")

    if findings:
        print("run_clang_tidy: findings by check:")
        for check, n in findings.most_common():
            print(f"  {n:5d}  {check}")
    if failed:
        print(f"run_clang_tidy: {failed}/{len(sources)} files with findings")
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
