/// mope_serverd — the untrusted database server as a standalone TCP daemon.
///
/// Runs engine::DbServer behind the wire protocol (src/net/), turning the
/// paper's Figure 4 into two real processes: this daemon holds only
/// ciphertext, the trusted proxy (e.g. `mope_shell --connect`) holds the
/// keys and talks to it over TCP. The daemon never sees a key: it serves
/// either a snapshot file (pure ciphertext, written by `\snapshot` in the
/// shell) or a freshly generated TPC-H table encrypted in-process and then
/// treated as opaque.
///
/// Usage:
///   mope_serverd --snapshot PATH [--host H] [--port N] [--workers N]
///   mope_serverd --tpch [--scale F] [--seed N] [--host H] [--port N]
///   mope_serverd (--snapshot PATH | --tpch) --data-dir DIR [...]
///
/// --data-dir attaches the disk-backed storage engine (src/storage/): every
/// mutation is write-ahead logged and applied to heap/index pages under DIR.
/// A DIR that already holds data is recovered on startup — crash recovery
/// replays the WAL — and served as-is (the --snapshot/--tpch source is then
/// only a bootstrap for an empty DIR). The pages hold the same MOPE
/// ciphertexts the in-memory catalog does; kill -9 never costs more than a
/// WAL replay plus an index rebuild, and never a re-encryption.
///
/// --metrics dumps the server's full metrics registry (Prometheus text
/// format) to stderr at shutdown, in addition to the one-line summary. A
/// live daemon also answers StatsRequest frames (shell: `\serverstats`), so
/// the registry is inspectable over the wire without stopping anything.
///
/// With --tpch, a proxy process built with the *same seed* (default 0x5811,
/// matching mope_shell) re-derives the identical MOPE key from its own rng
/// and can query the data without any key exchange.
///
/// SIGINT/SIGTERM shut down gracefully: in-flight requests complete,
/// replies flush, then the daemon prints its traffic counters and exits.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "engine/snapshot.h"
#include "net/server.h"
#include "obs/leakage.h"
#include "ope/ope.h"
#include "proxy/system.h"
#include "workload/tpch.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// Strict port parse mirroring RegisterTcpScheme: digits only, in
/// [0, 65535]. atoi would silently wrap 70000 to a different port and turn
/// garbage into 0 (ephemeral).
bool ParsePort(const char* raw, uint16_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (raw[0] == '\0' || *end != '\0' || raw[0] == '-' || errno != 0 ||
      value > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(value);
  return true;
}

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--snapshot PATH | --tpch) [options]\n"
      "  --snapshot PATH   serve an encrypted catalog snapshot\n"
      "  --tpch            generate + encrypt a TPC-H lineitem table\n"
      "  --scale F         TPC-H scale factor (default 0.002)\n"
      "  --seed N          key/proxy seed for --tpch (default 0x5811)\n"
      "  --host H          bind address (default 127.0.0.1)\n"
      "  --port N          TCP port; 0 picks an ephemeral one (default 5811)\n"
      "  --workers N       worker threads (default 4)\n"
      "  --data-dir DIR    disk-backed storage: WAL + pages live in DIR; an\n"
      "                    existing DIR is recovered (WAL replay) and served,\n"
      "                    a fresh one is seeded from --snapshot/--tpch\n"
      "  --metrics         dump the metrics registry at shutdown\n"
      "  --audit           live leakage auditor over the observed ciphertext\n"
      "                    range stream; leakage.* gauges join the stats\n"
      "                    endpoint (shell: \\leakage)\n"
      "  --audit-domain M  plaintext domain the audited column was declared\n"
      "                    with (default: the TPC-H date domain); needed so\n"
      "                    --snapshot mode knows the public parameter M\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mope;  // NOLINT

  std::string snapshot_path;
  std::string data_dir;
  bool tpch = false;
  bool dump_metrics = false;
  bool audit = false;
  uint64_t audit_domain = workload::kTpchDateDomain;
  double scale = 0.002;
  uint64_t seed = 0x5811;
  net::TcpServerOptions options;
  options.port = 5811;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--tpch") {
      tpch = true;
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      const char* raw = next();
      if (!ParsePort(raw, &options.port)) {
        std::fprintf(stderr, "--port must be an integer in [0, 65535], got '%s'\n",
                     raw);
        return 2;
      }
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(next());
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--audit-domain") {
      audit_domain = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (snapshot_path.empty() == !tpch) {
    std::fprintf(stderr, "pick exactly one of --snapshot or --tpch\n");
    PrintUsage(argv[0]);
    return 2;
  }

  // The daemon's engine. In --tpch mode a throwaway MopeSystem does the
  // data-owner work (key draw + encryption) in-process; its embedded server
  // is then served as-is — the daemon code below never touches the key.
  engine::DbServer standalone;
  std::unique_ptr<proxy::MopeSystem> system;
  engine::DbServer* server = &standalone;
  if (tpch) {
    system = std::make_unique<proxy::MopeSystem>(seed);
    server = system->server();
  }

  // Storage attaches before any data load: the catalog is still empty, so
  // recovery can repopulate it, and a subsequent import flows through the
  // durability hooks (WAL-first) instead of bypassing them.
  bool recovered_data = false;
  if (!data_dir.empty()) {
    const Status attached = server->OpenStorage(data_dir);
    if (!attached.ok()) {
      std::fprintf(stderr, "cannot open --data-dir %s: %s\n",
                   data_dir.c_str(), attached.ToString().c_str());
      return 1;
    }
    const size_t tables = server->catalog()->TableNames().size();
    recovered_data = tables > 0;
    if (recovered_data) {
      std::fprintf(
          stderr, "recovered %zu table(s) from %s%s\n", tables,
          data_dir.c_str(),
          server->durable_catalog()->recovered_from_crash()
              ? " (crash recovery: WAL replayed, indexes rebuilt)"
              : "");
    }
  }

  if (recovered_data) {
    // The durable state wins; --snapshot/--tpch only seed an empty dir.
  } else if (!snapshot_path.empty()) {
    auto loaded = engine::LoadCatalog(snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (server->has_storage()) {
      // Replay through the hooked catalog so every row is WAL-logged.
      const Status imported =
          engine::ImportCatalog(*loaded, server->catalog());
      if (!imported.ok()) {
        std::fprintf(stderr, "cannot import snapshot: %s\n",
                     imported.ToString().c_str());
        return 1;
      }
    } else {
      *standalone.catalog() = std::move(loaded).value();
    }
    std::fprintf(stderr, "serving snapshot %s\n", snapshot_path.c_str());
  } else {
    workload::TpchConfig config;
    config.scale_factor = scale;
    const workload::TpchData data = workload::GenerateTpch(config);
    proxy::EncryptedColumnSpec spec;
    spec.column = "l_shipdate";
    spec.domain = workload::kTpchDateDomain;
    spec.k = 30;
    spec.mode = proxy::QueryMode::kAdaptiveUniform;
    spec.batch_size = 64;
    const Status status = system->LoadTable("lineitem", data.lineitem_schema,
                                            data.lineitem, spec);
    if (!status.ok()) {
      std::fprintf(stderr, "tpch load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "serving %zu encrypted lineitem rows (seed 0x%llx)\n",
                 data.lineitem.size(),
                 static_cast<unsigned long long>(seed));
  }

  if (server->has_storage() && !recovered_data) {
    // Make the freshly imported data cheap to reopen: flush pages, persist
    // index roots, truncate the WAL.
    const Status cp = server->CheckpointStorage();
    if (!cp.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", cp.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "data dir %s checkpointed\n", data_dir.c_str());
  }

  if (audit) {
    // The daemon is the untrusted party, so it configures the auditor from
    // public parameters only: the declared plaintext domain M and the
    // ciphertext range derived from it. No key, no plaintexts.
    obs::LeakageAuditConfig audit_config;
    audit_config.domain = audit_domain;
    audit_config.space = ope::SuggestRange(audit_domain);
    const Status enabled = server->EnableLeakageAudit(audit_config);
    if (!enabled.ok()) {
      std::fprintf(stderr, "cannot enable leakage audit: %s\n",
                   enabled.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "leakage audit on (domain %llu, ciphertext space %llu)\n",
                 static_cast<unsigned long long>(audit_domain),
                 static_cast<unsigned long long>(audit_config.space));
  }

  auto daemon = net::TcpServer::Start(server, options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "cannot start: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "mope_serverd listening on %s:%u\n",
               options.host.c_str(), (*daemon)->port());
  std::fflush(stderr);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down...\n");
  (*daemon)->Stop();
  if (server->has_storage()) {
    // Clean-shutdown checkpoint: the next start reopens the paged indexes
    // from their checkpointed roots instead of rebuilding them.
    const Status cp = server->CheckpointStorage();
    if (!cp.ok()) {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                   cp.ToString().c_str());
    }
  }

  const engine::ServerStats stats = server->stats();
  std::fprintf(stderr,
               "served %llu connections (%llu shed at accept), %llu frames; "
               "%llu bytes in, %llu bytes out\n",
               static_cast<unsigned long long>((*daemon)->connections_accepted()),
               static_cast<unsigned long long>((*daemon)->connections_rejected()),
               static_cast<unsigned long long>((*daemon)->frames_served()),
               static_cast<unsigned long long>(stats.bytes_received),
               static_cast<unsigned long long>(stats.bytes_sent));
  if (dump_metrics) {
    std::fprintf(stderr, "%s", server->metrics()->RenderText().c_str());
  }
  return 0;
}
