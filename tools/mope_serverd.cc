/// mope_serverd — the untrusted database server as a standalone TCP daemon.
///
/// Runs engine::DbServer behind the wire protocol (src/net/), turning the
/// paper's Figure 4 into two real processes: this daemon holds only
/// ciphertext, the trusted proxy (e.g. `mope_shell --connect`) holds the
/// keys and talks to it over TCP. The daemon never sees a key: it serves
/// either a snapshot file (pure ciphertext, written by `\snapshot` in the
/// shell) or a freshly generated TPC-H table encrypted in-process and then
/// treated as opaque.
///
/// Usage:
///   mope_serverd --snapshot PATH [--host H] [--port N] [--workers N]
///   mope_serverd --tpch [--scale F] [--seed N] [--host H] [--port N]
///   mope_serverd (--snapshot PATH | --tpch) --data-dir DIR [...]
///
/// --data-dir attaches the disk-backed storage engine (src/storage/): every
/// mutation is write-ahead logged and applied to heap/index pages under DIR.
/// A DIR that already holds data is recovered on startup — crash recovery
/// replays the WAL — and served as-is (the --snapshot/--tpch source is then
/// only a bootstrap for an empty DIR). The pages hold the same MOPE
/// ciphertexts the in-memory catalog does; kill -9 never costs more than a
/// WAL replay plus an index rebuild, and never a re-encryption.
///
/// Observability:
///   - Every operational message is a structured log line (src/obs/log.h)
///     on stderr: `ts_ns=... level=... subsystem=... event=... k=v`.
///     --log-json switches to JSON lines; --log-level sets the floor.
///   - --http-port starts the HTTP exposition endpoint (GET /metrics in
///     Prometheus text format, /healthz, /statusz) on a second port.
///   - --metrics dumps the registry to stderr at shutdown; --metrics-out
///     atomically writes the same Prometheus text to a file instead.
///   - --slow-query-ms logs a per-span breakdown for any request that
///     exceeds the threshold, and --slow-query-trace additionally exports
///     the request's Chrome trace (chrome://tracing) with the same trace
///     id, WAL and buffer-pool spans included.
///   - --checkpoint-every N checkpoints the storage engine every N
///     data-bearing requests, putting storage.wal.* / storage.pool.* work
///     (and spans) on the serving path.
///   - --query-log-sample N profiles every Nth data-bearing request exactly
///     as a client's EXPLAIN ANALYZE would and logs it as a structured
///     `event=query` line with the full attributed resource profile.
///   - --sample-every-ms N keeps in-process metric history (ring buffers,
///     fixed memory budget) served as JSON on GET /vars; --alert-rule /
///     --default-alerts evaluate declarative rules over those samples and
///     expose firing state on GET /alertz plus edge-triggered `event=alert`
///     log lines.
///   - --blackbox FILE runs a crash flight recorder: the last trace/log
///     events persist on request boundaries (survives kill -9) and fatal
///     signals append an async-signal-safe dump to FILE.fatal;
///     --dump-blackbox FILE pretty-prints either postmortem.
///
/// With --tpch, a proxy process built with the *same seed* (default 0x5811,
/// matching mope_shell) re-derives the identical MOPE key from its own rng
/// and can query the data without any key exchange.
///
/// SIGINT/SIGTERM shut down gracefully: in-flight requests complete,
/// replies flush, then the daemon logs its traffic counters and exits.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include <vector>

#include "engine/snapshot.h"
#include "net/http_exposition.h"
#include "net/server.h"
#include "obs/alerts.h"
#include "obs/flight_recorder.h"
#include "obs/leakage.h"
#include "obs/log.h"
#include "obs/timeseries.h"
#include "ope/ope.h"
#include "proxy/system.h"
#include "storage/env.h"
#include "workload/tpch.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// Fatal-signal handler: dump the flight recorder's rings, then re-raise
/// with the default disposition so the process still dies with the right
/// status. Linter rule R13 restricts this body to the async-signal-safe
/// flight-recorder dump API (no logging, no allocation).
void HandleFatalSignal(int signo) {
  if (mope::obs::FlightRecorder* recorder =
          mope::obs::FlightRecorder::Installed()) {
    recorder->FatalSignalDump(signo);
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

/// Strict port parse mirroring RegisterTcpScheme: digits only, in
/// [0, 65535]. atoi would silently wrap 70000 to a different port and turn
/// garbage into 0 (ephemeral).
bool ParsePort(const char* raw, uint16_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (raw[0] == '\0' || *end != '\0' || raw[0] == '-' || errno != 0 ||
      value > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(value);
  return true;
}

void PrintUsage(const char* argv0) {
  // Usage text goes to the raw stream, not the structured log: it is the
  // program's interactive answer to --help, not an operational event.
  std::fprintf(  // invariant-ok: R11 usage/help text
      stderr,
      "usage: %s (--snapshot PATH | --tpch) [options]\n"
      "  --snapshot PATH     serve an encrypted catalog snapshot\n"
      "  --tpch              generate + encrypt a TPC-H lineitem table\n"
      "  --scale F           TPC-H scale factor (default 0.002)\n"
      "  --seed N            key/proxy seed for --tpch (default 0x5811)\n"
      "  --host H            bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 picks an ephemeral one (default "
      "5811)\n"
      "  --workers N         worker threads (default 4)\n"
      "  --data-dir DIR      disk-backed storage: WAL + pages live in DIR; "
      "an\n"
      "                      existing DIR is recovered (WAL replay) and "
      "served,\n"
      "                      a fresh one is seeded from --snapshot/--tpch\n"
      "  --http-port N       HTTP exposition endpoint (GET /metrics "
      "Prometheus\n"
      "                      text, /healthz, /statusz); 0 = ephemeral\n"
      "  --slow-query-ms N   log a span breakdown for requests slower than "
      "N ms\n"
      "  --slow-query-trace FILE  also export the offending request's "
      "Chrome\n"
      "                      trace (atomic write; same trace id as the log "
      "line)\n"
      "  --checkpoint-every N  checkpoint storage every N data requests\n"
      "  --query-log-sample N  profile every Nth data-bearing request and "
      "log\n"
      "                      it as a structured event=query line carrying "
      "the\n"
      "                      full attributed resource profile (0 = off)\n"
      "  --metrics           dump the metrics registry at shutdown\n"
      "  --metrics-out FILE  atomically write the Prometheus text dump to "
      "FILE\n"
      "                      at shutdown\n"
      "  --log-json          JSON-lines log format instead of key=value\n"
      "  --log-level LEVEL   debug|info|warn|error (default info)\n"
      "  --audit             live leakage auditor over the observed "
      "ciphertext\n"
      "                      range stream; leakage.* gauges join the stats\n"
      "                      endpoint (shell: \\leakage)\n"
      "  --audit-domain M    plaintext domain the audited column was "
      "declared\n"
      "                      with (default: the TPC-H date domain); needed "
      "so\n"
      "                      --snapshot mode knows the public parameter M\n"
      "  --sample-every-ms N time-series sampler: snapshot the registry "
      "every\n"
      "                      N ms into in-process ring buffers (GET /vars)\n"
      "  --alert-rule RULE   add one alert rule (repeatable), e.g.\n"
      "                      'p99_slow: server.dispatch_ns.p99 > 1000000 "
      "for 3';\n"
      "                      implies --sample-every-ms 1000 unless set\n"
      "  --default-alerts    add the built-in rule set (gap convergence,\n"
      "                      chi-square criticality, dispatch p99, pool "
      "miss\n"
      "                      rate, WAL fsync stalls); implies sampling too\n"
      "  --blackbox FILE     crash flight recorder: persist the last trace/"
      "log\n"
      "                      events to FILE on request boundaries and dump "
      "to\n"
      "                      FILE.fatal from fatal-signal handlers\n"
      "  --dump-blackbox FILE  read a black box (+ .fatal sibling) written "
      "by\n"
      "                      --blackbox, print it sorted, and exit\n",
      argv0);
}

/// Flag-parse diagnostics also predate the configured logger; they stay on
/// the raw stream next to the usage text they accompany.
void FlagError(const char* fmt, const char* detail) {
  std::fprintf(stderr, fmt, detail);  // invariant-ok: R11 usage/help text
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mope;  // NOLINT

  std::string snapshot_path;
  std::string data_dir;
  std::string metrics_out;
  bool tpch = false;
  bool dump_metrics = false;
  bool audit = false;
  bool http_enabled = false;
  uint16_t http_port = 0;
  uint64_t audit_domain = workload::kTpchDateDomain;
  double slow_query_ms = 0;  // fractional ms OK: 0.001 = 1us threshold
  std::string slow_query_trace;
  uint64_t checkpoint_every = 0;
  uint64_t query_log_sample = 0;
  uint64_t sample_every_ms = 0;
  std::vector<std::string> alert_rules;
  bool default_alerts = false;
  std::string blackbox_path;
  std::string dump_blackbox_path;
  double scale = 0.002;
  uint64_t seed = 0x5811;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool log_json = false;
  net::TcpServerOptions options;
  options.port = 5811;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        FlagError("%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--tpch") {
      tpch = true;
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      const char* raw = next();
      if (!ParsePort(raw, &options.port)) {
        FlagError("--port must be an integer in [0, 65535], got '%s'\n", raw);
        return 2;
      }
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(next());
    } else if (arg == "--http-port") {
      const char* raw = next();
      if (!ParsePort(raw, &http_port)) {
        FlagError("--http-port must be an integer in [0, 65535], got '%s'\n",
                  raw);
        return 2;
      }
      http_enabled = true;
    } else if (arg == "--slow-query-ms") {
      slow_query_ms = std::atof(next());
    } else if (arg == "--slow-query-trace") {
      slow_query_trace = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--query-log-sample") {
      query_log_sample = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--log-json") {
      log_json = true;
    } else if (arg == "--log-level") {
      const char* raw = next();
      if (!obs::ParseLogLevel(raw, &log_level)) {
        FlagError("--log-level must be debug|info|warn|error, got '%s'\n",
                  raw);
        return 2;
      }
    } else if (arg == "--sample-every-ms") {
      sample_every_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--alert-rule") {
      alert_rules.emplace_back(next());
    } else if (arg == "--default-alerts") {
      default_alerts = true;
    } else if (arg == "--blackbox") {
      blackbox_path = next();
    } else if (arg == "--dump-blackbox") {
      dump_blackbox_path = next();
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--audit-domain") {
      audit_domain = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      FlagError("unknown flag %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  // Reader mode: print a previously written black box and exit. This is a
  // postmortem tool, not a daemon run, so none of the serving flags apply.
  if (!dump_blackbox_path.empty()) {
    const Result<std::string> dump = obs::FlightRecorder::FormatDump(
        storage::Env::Posix(), dump_blackbox_path);
    if (!dump.ok()) {
      FlagError("--dump-blackbox failed: %s\n",
                dump.status().ToString().c_str());
      return 1;
    }
    // The requested data dump, not an operational event; exempt like the
    // usage text.
    std::fprintf(stdout, "%s",  // invariant-ok: R11 --dump-blackbox output
                 dump.value().c_str());
    return 0;
  }
  if (snapshot_path.empty() == !tpch) {
    FlagError("pick exactly one of --snapshot or --tpch\n", "");
    PrintUsage(argv[0]);
    return 2;
  }
  // Alert rules need samples to evaluate against; turn the sampler on at a
  // 1s default cadence rather than silently doing nothing.
  if ((default_alerts || !alert_rules.empty()) && sample_every_ms == 0) {
    sample_every_ms = 1000;
  }

  // Configure the process logger before the first loggable event. From here
  // on every message in the process — including the library layers — flows
  // through the single ranked sink, so startup lines and worker-thread
  // connection events never interleave mid-line.
  obs::Logger* logger = obs::Logger::Default();
  logger->SetMinLevel(log_level);
  logger->SetFormat(log_json ? obs::LogFormat::kJson : obs::LogFormat::kText);

  // The daemon's engine. In --tpch mode a throwaway MopeSystem does the
  // data-owner work (key draw + encryption) in-process; its embedded server
  // is then served as-is — the daemon code below never touches the key.
  engine::DbServer standalone;
  std::unique_ptr<proxy::MopeSystem> system;
  engine::DbServer* server = &standalone;
  if (tpch) {
    system = std::make_unique<proxy::MopeSystem>(seed);
    server = system->server();
  }
  logger->SetDropCounterRegistry(server->metrics());

  // Storage attaches before any data load: the catalog is still empty, so
  // recovery can repopulate it, and a subsequent import flows through the
  // durability hooks (WAL-first) instead of bypassing them.
  bool recovered_data = false;
  if (!data_dir.empty()) {
    const Status attached = server->OpenStorage(data_dir);
    if (!attached.ok()) {
      MOPE_LOG(kError, "main", "storage_open_failed")
          .Arg("data_dir", data_dir)
          .Arg("status", attached.ToString());
      return 1;
    }
    const size_t tables = server->catalog()->TableNames().size();
    recovered_data = tables > 0;
    if (recovered_data) {
      MOPE_LOG(kInfo, "main", "recovered")
          .Arg("tables", tables)
          .Arg("data_dir", data_dir)
          .Arg("crash_recovery",
               server->durable_catalog()->recovered_from_crash());
    }
  }

  if (recovered_data) {
    // The durable state wins; --snapshot/--tpch only seed an empty dir.
  } else if (!snapshot_path.empty()) {
    auto loaded = engine::LoadCatalog(snapshot_path);
    if (!loaded.ok()) {
      MOPE_LOG(kError, "main", "snapshot_load_failed")
          .Arg("path", snapshot_path)
          .Arg("status", loaded.status().ToString());
      return 1;
    }
    if (server->has_storage()) {
      // Replay through the hooked catalog so every row is WAL-logged.
      const Status imported =
          engine::ImportCatalog(*loaded, server->catalog());
      if (!imported.ok()) {
        MOPE_LOG(kError, "main", "snapshot_import_failed")
            .Arg("path", snapshot_path)
            .Arg("status", imported.ToString());
        return 1;
      }
    } else {
      *standalone.catalog() = std::move(loaded).value();
    }
    MOPE_LOG(kInfo, "main", "serving_snapshot").Arg("path", snapshot_path);
  } else {
    workload::TpchConfig config;
    config.scale_factor = scale;
    const workload::TpchData data = workload::GenerateTpch(config);
    proxy::EncryptedColumnSpec spec;
    spec.column = "l_shipdate";
    spec.domain = workload::kTpchDateDomain;
    spec.k = 30;
    spec.mode = proxy::QueryMode::kAdaptiveUniform;
    spec.batch_size = 64;
    const Status status = system->LoadTable("lineitem", data.lineitem_schema,
                                            data.lineitem, spec);
    if (!status.ok()) {
      MOPE_LOG(kError, "main", "tpch_load_failed")
          .Arg("status", status.ToString());
      return 1;
    }
    MOPE_LOG(kInfo, "main", "serving_tpch")
        .Arg("rows", data.lineitem.size())
        .Arg("seed", seed);
  }

  if (server->has_storage() && !recovered_data) {
    // Make the freshly imported data cheap to reopen: flush pages, persist
    // index roots, truncate the WAL.
    const Status cp = server->CheckpointStorage();
    if (!cp.ok()) {
      MOPE_LOG(kError, "main", "checkpoint_failed")
          .Arg("data_dir", data_dir)
          .Arg("status", cp.ToString());
      return 1;
    }
    MOPE_LOG(kInfo, "main", "checkpointed").Arg("data_dir", data_dir);
  }

  if (audit) {
    // The daemon is the untrusted party, so it configures the auditor from
    // public parameters only: the declared plaintext domain M and the
    // ciphertext range derived from it. No key, no plaintexts.
    obs::LeakageAuditConfig audit_config;
    audit_config.domain = audit_domain;
    audit_config.space = ope::SuggestRange(audit_domain);
    const Status enabled = server->EnableLeakageAudit(audit_config);
    if (!enabled.ok()) {
      MOPE_LOG(kError, "main", "audit_enable_failed")
          .Arg("status", enabled.ToString());
      return 1;
    }
    MOPE_LOG(kInfo, "main", "audit_on")
        .Arg("domain", audit_domain)
        .Arg("space", audit_config.space);
  }

  // Crash flight recorder first: once installed, the trace/log hooks and
  // the dispatcher's request-boundary persistence start feeding it, so the
  // earliest serving events are already in the rings.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!blackbox_path.empty()) {
    obs::FlightRecorder::Options recorder_options;
    recorder_options.path = blackbox_path;
    recorder = std::make_unique<obs::FlightRecorder>(
        storage::Env::Posix(), recorder_options, nullptr, server->metrics());
    const Status prepared = recorder->PrepareFatalDump();
    if (!prepared.ok()) {
      MOPE_LOG(kError, "main", "blackbox_prepare_failed")
          .Arg("path", blackbox_path)
          .Arg("status", prepared.ToString());
      return 1;
    }
    obs::FlightRecorder::Install(recorder.get());
    std::signal(SIGSEGV, HandleFatalSignal);
    std::signal(SIGABRT, HandleFatalSignal);
    std::signal(SIGBUS, HandleFatalSignal);
    std::signal(SIGILL, HandleFatalSignal);
    std::signal(SIGFPE, HandleFatalSignal);
    MOPE_LOG(kInfo, "main", "blackbox_on").Arg("path", blackbox_path);
  }

  // Alert engine + time-series sampler. The sampler pushes each snapshot
  // into the engine, so the engine must outlive the sampler; both hang off
  // the server's registry.
  std::unique_ptr<obs::AlertEngine> alert_engine;
  if (default_alerts || !alert_rules.empty()) {
    alert_engine = std::make_unique<obs::AlertEngine>(server->metrics());
    if (default_alerts) alert_engine->AddDefaultRules();
    for (const std::string& spec : alert_rules) {
      const Status added = alert_engine->AddRuleSpec(spec);
      if (!added.ok()) {
        FlagError("--alert-rule rejected: %s\n", added.ToString().c_str());
        return 2;
      }
    }
    MOPE_LOG(kInfo, "main", "alerts_on")
        .Arg("rules", static_cast<uint64_t>(alert_engine->rule_count()));
  }
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  if (sample_every_ms > 0) {
    obs::TimeSeriesOptions sampler_options;
    sampler_options.sample_period_ns = sample_every_ms * 1'000'000;
    sampler = std::make_unique<obs::TimeSeriesSampler>(server->metrics(),
                                                       sampler_options);
    sampler->SetAlertEngine(alert_engine.get());
    sampler->Start();
    MOPE_LOG(kInfo, "main", "sampler_on")
        .Arg("period_ms", sample_every_ms)
        .Arg("window", static_cast<uint64_t>(sampler->max_window()));
  }

  // Slow-query instrumentation and periodic checkpointing ride the
  // dispatcher options; the trace export (if any) goes through the Env seam
  // so the write is atomic.
  options.dispatcher.slow_query_threshold_ns =
      static_cast<uint64_t>(slow_query_ms * 1e6);
  options.dispatcher.slow_query_trace_path = slow_query_trace;
  options.dispatcher.trace_env = storage::Env::Posix();
  options.dispatcher.checkpoint_every = checkpoint_every;
  options.dispatcher.query_log_sample = query_log_sample;

  auto daemon = net::TcpServer::Start(server, options);
  if (!daemon.ok()) {
    MOPE_LOG(kError, "main", "start_failed")
        .Arg("status", daemon.status().ToString());
    return 1;
  }
  MOPE_LOG(kInfo, "main", "listening")
      .Arg("host", options.host)
      .Arg("port", static_cast<uint64_t>((*daemon)->port()));

  std::unique_ptr<net::HttpExposition> http;
  if (http_enabled) {
    net::HttpExpositionOptions http_options;
    http_options.host = options.host;
    http_options.port = http_port;
    http = std::make_unique<net::HttpExposition>(server, http_options);
    http->AttachTimeSeries(sampler.get());
    http->AttachAlerts(alert_engine.get());
    const Status started = http->Start();
    if (!started.ok()) {
      MOPE_LOG(kError, "main", "http_start_failed")
          .Arg("status", started.ToString());
      return 1;
    }
    MOPE_LOG(kInfo, "main", "http_listening")
        .Arg("host", http_options.host)
        .Arg("port", static_cast<uint64_t>(http->port()));
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  MOPE_LOG(kInfo, "main", "shutting_down");
  if (http != nullptr) http->Stop();
  if (sampler != nullptr) sampler->Stop();
  (*daemon)->Stop();
  if (recorder != nullptr) {
    // Final persist, then uninstall before teardown so no late logging
    // thread records into a dying recorder.
    const Status persisted = recorder->Persist();
    if (!persisted.ok()) {
      MOPE_LOG(kWarn, "main", "blackbox_persist_failed")
          .Arg("status", persisted.ToString());
    }
    obs::FlightRecorder::Install(nullptr);
  }
  if (server->has_storage()) {
    // Clean-shutdown checkpoint: the next start reopens the paged indexes
    // from their checkpointed roots instead of rebuilding them.
    const Status cp = server->CheckpointStorage();
    if (!cp.ok()) {
      MOPE_LOG(kError, "main", "shutdown_checkpoint_failed")
          .Arg("status", cp.ToString());
    }
  }

  const engine::ServerStats stats = server->stats();
  MOPE_LOG(kInfo, "main", "stats")
      .Arg("connections", (*daemon)->connections_accepted())
      .Arg("shed", (*daemon)->connections_rejected())
      .Arg("frames", (*daemon)->frames_served())
      .Arg("bytes_in", stats.bytes_received)
      .Arg("bytes_out", stats.bytes_sent);
  if (!metrics_out.empty()) {
    const Status written = storage::Env::Posix()->WriteFileAtomic(
        metrics_out, server->metrics()->RenderText());
    if (!written.ok()) {
      MOPE_LOG(kError, "main", "metrics_out_failed")
          .Arg("path", metrics_out)
          .Arg("status", written.ToString());
      return 1;
    }
    MOPE_LOG(kInfo, "main", "metrics_written").Arg("path", metrics_out);
  }
  if (dump_metrics) {
    // A data dump on request, not an operational event; exempt like the
    // usage text.
    std::fprintf(stderr, "%s",  // invariant-ok: R11 --metrics dump
                 server->metrics()->RenderText().c_str());
  }
  return 0;
}
